//! Kernel-service power/energy characterization — the paper's §3.3
//! analysis (Table 4, Table 5, Figure 8) for one benchmark or all of them.
//!
//! ```sh
//! cargo run --release --example kernel_services [benchmark|all]
//! ```

use softwatt::experiments::{DiskSetup, ExperimentSuite};
use softwatt::{Benchmark, CpuModel, SystemConfig};
use softwatt_os::KernelService;

fn main() -> Result<(), String> {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let suite = ExperimentSuite::new(SystemConfig {
        time_scale: 4000.0,
        ..SystemConfig::default()
    })?;

    if arg != "all" {
        let benchmark =
            Benchmark::from_name(&arg).ok_or_else(|| format!("unknown benchmark {arg}"))?;
        let bundle = suite.run(benchmark, CpuModel::Mxs, DiskSetup::Conventional);
        let aggs = bundle.run.services.aggregates();
        let total_cycles: u64 = KernelService::ALL
            .iter()
            .filter_map(|s| aggs.get(&s.id()))
            .map(|a| a.cycles)
            .sum();
        println!("{benchmark}: kernel services by cycle share\n");
        let mut rows: Vec<_> = KernelService::ALL
            .iter()
            .filter_map(|&s| aggs.get(&s.id()).map(|a| (s, a)))
            .filter(|(_, a)| a.invocations > 0)
            .collect();
        rows.sort_by_key(|(_, a)| std::cmp::Reverse(a.cycles));
        for (svc, agg) in rows {
            let power = bundle.model.window_power_w(&agg.events, agg.cycles.max(1));
            println!(
                "  {:<12} n={:<7} {:>6.2}% of kernel cycles  avg {:>5.2} W  mean/invocation {:.3e} J",
                svc.name(),
                agg.invocations,
                100.0 * agg.cycles as f64 / total_cycles.max(1) as f64,
                power.total(),
                agg.mean_energy_j().unwrap_or(0.0),
            );
        }
        return Ok(());
    }

    println!("Figure 8: average power of the four key services (all benchmarks pooled)\n");
    for row in suite.fig8_service_power() {
        println!("  {row}");
        for (group, w) in row.power_w.iter() {
            if w > 0.005 {
                println!("      {:<12} {w:6.3} W", group.label());
            }
        }
    }

    println!("\nTable 5: per-invocation energy variation (pooled)\n");
    for row in suite.table5_service_variation() {
        let kind = if row.service.is_internal() {
            "internal"
        } else {
            "external (I/O)"
        };
        println!("  {row}   [{kind}]");
    }
    println!("\npaper shape: internal services are nearly constant per invocation;");
    println!("externally-invoked I/O calls vary with transfer size and cache state,");
    println!("enabling count-based kernel-energy estimation within ~10% (§3.3).");
    Ok(())
}
