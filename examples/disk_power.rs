//! The Section 4 disk power-management study (Figure 9): run every
//! benchmark under the four disk configurations and print the
//! energy/performance trade-offs.
//!
//! ```sh
//! cargo run --release --example disk_power [time_scale]
//! ```

use softwatt::experiments::{DiskSetup, ExperimentSuite};
use softwatt::SystemConfig;

fn main() -> Result<(), String> {
    let time_scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000.0);
    let suite = ExperimentSuite::new(SystemConfig {
        time_scale,
        ..SystemConfig::default()
    })?;

    println!("disk energy (J, paper time) and idle cycles per configuration\n");
    for row in suite.fig9_disk_study() {
        print!("{row}");
        let base = row.cell(DiskSetup::Conventional);
        let idle_only = row.cell(DiskSetup::IdleOnly);
        let t2 = row.cell(DiskSetup::Standby2s);
        let t4 = row.cell(DiskSetup::Standby4s);
        println!(
            "  IDLE mode saves {:.0}%; 2s spin-down is {} vs IDLE-only; 4s is {}.",
            100.0 * (1.0 - idle_only.disk_energy_j / base.disk_energy_j),
            if t2.disk_energy_j > idle_only.disk_energy_j * 1.05 {
                "WORSE (thrashing)"
            } else {
                "comparable"
            },
            if t4.disk_energy_j > t2.disk_energy_j * 1.05 {
                "worse than 2s (late spin-down idles longer)"
            } else if t4.idle_cycles < t2.idle_cycles {
                "better (a spin-down pair eliminated)"
            } else {
                "comparable to IDLE-only"
            },
        );
        println!();
    }
    println!("paper's rule (§4): spin down only when the gap between disk");
    println!("accesses is much larger than the spin-down + spin-up time.");
    Ok(())
}
