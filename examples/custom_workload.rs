//! Build a workload of your own: define a `BenchmarkSpec` from scratch,
//! run it on the full system, and compare two machine configurations on
//! the *identical* instruction stream via trace record/replay.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use softwatt::budget::system_budget;
use softwatt::{CpuModel, Mode, PowerModel, Simulator, SystemConfig};
use softwatt_isa::{Recording, TraceReader};
use softwatt_os::OsConfig;
use softwatt_workloads::{BenchmarkSpec, IoBurst, PhaseSpec, SyscallRates, Workload};

/// A transaction-processing-flavoured synthetic application: short
/// pointer-chasing transactions over a working set past the TLB reach,
/// frequent small reads against a warm file set, and a nightly-batch I/O
/// burst.
fn my_spec() -> BenchmarkSpec {
    let steady = PhaseSpec {
        name: "transactions".to_string(),
        frac: 0.9,
        load: 0.31,
        store: 0.09,
        branch: 0.18,
        fp: 0.0,
        mul: 0.005,
        dep_prob: 0.38,
        branch_stability: 0.95,
        hot_bytes: 16 * 1024,
        span_bytes: 512 * 1024,
        hot_frac: 0.975,
        loop_len: 48,
        n_loops: 8,
        stay_per_loop: 1024,
        syscalls: SyscallRates {
            read: 0.02,
            write: 0.004,
            io_bytes_mean: 1024,
            ..SyscallRates::default()
        },
        fresh_per_kinstr: 0.03,
    };
    let startup = PhaseSpec {
        name: "warmup".to_string(),
        frac: 0.1,
        syscalls: SyscallRates::default(),
        ..steady.clone()
    };
    BenchmarkSpec {
        name: "txnbench".to_string(),
        duration_s: 5.0,
        assumed_ipc: 1.2,
        class_files: 12,
        class_file_bytes: 2048,
        startup_compute_frac: 0.06,
        cacheflush_per_kinstr: 0.001,
        phases: vec![startup, steady],
        io_bursts: vec![IoBurst {
            at_s: 3.5,
            files: 3,
            bytes_per_file: 8192,
        }],
    }
}

fn main() -> Result<(), String> {
    let mut config = SystemConfig {
        time_scale: 8000.0,
        ..SystemConfig::default()
    };
    let clocking = config.clocking();

    // Instantiate the custom workload and record its user stream while
    // running it on the 4-wide machine.
    let workload = Workload::new(my_spec(), clocking, 99);
    let warm = workload.warm_files();
    let premap = workload.premap_regions();
    let os = OsConfig {
        cacheflush_per_kinstr: workload.spec().cacheflush_per_kinstr,
        ..OsConfig::default()
    };

    let trace_path = std::env::temp_dir().join("softwatt_txnbench.trace");
    let sim = Simulator::new(config.clone())?;
    let out = File::create(&trace_path).map_err(|e| e.to_string())?;
    let recording = Recording::new(workload, BufWriter::new(out)).map_err(|e| e.to_string())?;
    let wide = sim.run_source(Box::new(recording), &warm, &premap, os);
    println!(
        "txnbench on 4-wide MXS: {} cycles, IPC {:.2}, idle {:.1}%",
        wide.cycles,
        wide.ipc(),
        100.0 * wide.mode_cycles(Mode::Idle) as f64 / wide.cycles as f64
    );
    let model = PowerModel::new(&config.power_params());
    println!("{}\n", system_budget(&model, &wide));

    // Replay the *identical* stream on the single-issue machine.
    config.cpu = CpuModel::MxsSingleIssue;
    let narrow_sim = Simulator::new(config.clone())?;
    let input = File::open(&trace_path).map_err(|e| e.to_string())?;
    let reader = TraceReader::new(BufReader::new(input)).map_err(|e| e.to_string())?;
    let narrow = narrow_sim.run_source(Box::new(reader), &warm, &premap, os);
    println!(
        "same trace on single-issue: {} cycles, IPC {:.2} ({:.2}x slower)",
        narrow.cycles,
        narrow.ipc(),
        narrow.cycles as f64 / wide.cycles as f64
    );
    let narrow_model = PowerModel::new(&config.power_params());
    println!("{}", system_budget(&narrow_model, &narrow));
    Ok(())
}
