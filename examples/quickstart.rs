//! Quickstart: run one benchmark on the full system and print its power
//! story — the complete SoftWatt pipeline in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart [benchmark] [time_scale]
//! ```

use softwatt::budget::system_budget;
use softwatt::{Benchmark, Mode, PowerModel, Simulator, SystemConfig};

fn main() -> Result<(), String> {
    let benchmark = std::env::args()
        .nth(1)
        .and_then(|s| Benchmark::from_name(&s))
        .unwrap_or(Benchmark::Jess);
    let time_scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000.0);

    let config = SystemConfig {
        time_scale,
        ..SystemConfig::default()
    };
    let sim = Simulator::new(config.clone())?;
    println!("running {benchmark} on the 4-wide MXS model (time scale {time_scale}x)...");
    let run = sim.run_benchmark(benchmark);

    println!(
        "\n{} finished: {} cycles ({:.2} paper-seconds), {} instructions, IPC {:.2}",
        benchmark,
        run.cycles,
        run.duration_s,
        run.committed,
        run.ipc()
    );
    println!(
        "disk: {} requests, {:.2} J",
        run.disk.requests, run.disk.energy_j
    );

    println!("\ncycles by software mode:");
    for mode in Mode::ALL {
        let cycles = run.mode_cycles(mode);
        println!(
            "  {:<8} {:>10} cycles ({:.1}%)",
            mode.label(),
            cycles,
            100.0 * cycles as f64 / run.cycles as f64
        );
    }

    let model = PowerModel::new(&config.power_params());
    let budget = system_budget(&model, &run);
    println!("\nsystem power budget (the paper's Figure 5 view):");
    println!("{budget}");
    Ok(())
}
