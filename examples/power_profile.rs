//! Emit a time-resolved execution/power profile as CSV — the data behind
//! the paper's Figures 3 and 4 (plot with any CSV tool).
//!
//! ```sh
//! cargo run --release --example power_profile [benchmark] > profile.csv
//! ```
//!
//! Columns: window end time (paper-seconds); percent of the window in
//! user/kernel/sync/idle mode; stacked memory-subsystem power per mode;
//! stacked processor (datapath) power per mode.

use softwatt::experiments::{DiskSetup, ExperimentSuite};
use softwatt::{Benchmark, CpuModel, SystemConfig};

fn main() -> Result<(), String> {
    let benchmark = std::env::args()
        .nth(1)
        .and_then(|s| Benchmark::from_name(&s))
        .unwrap_or(Benchmark::Jess);

    let suite = ExperimentSuite::new(SystemConfig {
        time_scale: 4000.0,
        ..SystemConfig::default()
    })?;
    let bundle = suite.run(benchmark, CpuModel::Mxs, DiskSetup::Conventional);
    let profile = bundle.model.profile(&bundle.run.log);

    println!(
        "t_s,user_pct,kernel_pct,sync_pct,idle_pct,\
         mem_w_user,mem_w_kernel,mem_w_sync,mem_w_idle,\
         proc_w_user,proc_w_kernel,proc_w_sync,proc_w_idle"
    );
    for p in &profile.points {
        let share = |i: usize| 100.0 * p.mode_cycles[i] as f64 / p.cycles.max(1) as f64;
        let mem = |i: usize| {
            p.mode_power_w[i].memory_subsystem() * p.mode_cycles[i] as f64 / p.cycles.max(1) as f64
        };
        let proc = |i: usize| {
            p.mode_power_w[i].get(softwatt::UnitGroup::Datapath) * p.mode_cycles[i] as f64
                / p.cycles.max(1) as f64
        };
        println!(
            "{:.4},{:.2},{:.2},{:.2},{:.2},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            p.t_end_s,
            share(0),
            share(1),
            share(2),
            share(3),
            mem(0),
            mem(1),
            mem(2),
            mem(3),
            proc(0),
            proc(1),
            proc(2),
            proc(3),
        );
    }
    eprintln!(
        "{} profile: {} windows, run average {:.2} W",
        benchmark,
        profile.points.len(),
        profile.average_power_w()
    );
    Ok(())
}
