//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment is offline, so the workspace carries the slice of
//! proptest it uses: the [`Strategy`] trait with `prop_map`, range / tuple /
//! `Just` / `any` / `prop_oneof!` / `prop::collection::vec` strategies, and
//! the `proptest!` test macro. Cases are drawn from a per-test deterministic
//! RNG (seeded from the test name), so failures reproduce exactly; there is
//! no shrinking — a failing case panics with its number.

pub mod strategy;
pub mod test_runner;

/// `prop::collection` etc., mirroring proptest's `prop` facade module.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number of elements to generate: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of `size` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::Config as ProptestConfig;

/// Everything a proptest-based test file imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a proptest body (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the `#![proptest_config(...)]` header and any number of
/// `fn name(arg in strategy, ...) { body }` items, like upstream proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut __proptest_rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            for __proptest_case in 0..config.cases {
                let _ = __proptest_case;
                $(let $arg =
                    $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}
