//! Test configuration and the deterministic per-test RNG.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// How many cases each property runs (mirrors `ProptestConfig`).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Deterministic generator used to draw test cases.
///
/// Seeded from the test's name so every test gets an independent but fully
/// reproducible stream — a failing case number identifies the exact inputs.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name gives a stable, well-spread seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if lo + 1 >= hi {
            return lo;
        }
        self.0.gen_range(lo..hi)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.0.gen::<f64>() * (hi - lo)
    }

    /// Full-range `u64`.
    pub fn next_u64(&mut self) -> u64 {
        RngCore::next_u64(&mut self.0)
    }

    /// Fair boolean.
    pub fn bool(&mut self) -> bool {
        self.0.gen::<bool>()
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        if lo + 1 >= hi {
            return lo;
        }
        self.0.gen_range(lo..hi)
    }
}
