//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type (subset of
/// `proptest::strategy::Strategy`; sampling only, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`]'s strategy.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.arms.len());
        self.arms[idx].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Range strategies.
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = rng.u64_in(0, span as u64) as i128;
                (self.start as i128 + off) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let off = rng.u64_in(0, span as u64) as i128;
                (*self.start() as i128 + off) as $ty
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64);

// u64 spans can exceed i128's comfortable conversion through the macro's
// i128 arithmetic only at the extreme edge; handle it directly.
impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.u64_in(self.start, self.end)
    }
}

impl Strategy for std::ops::RangeInclusive<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        if *self.start() == 0 && *self.end() == u64::MAX {
            return rng.next_u64();
        }
        rng.u64_in(*self.start(), *self.end() + 1)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.f64_in(self.start, self.end)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(*self.start(), *self.end())
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies.
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// `any::<T>()`.
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// Full-range strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
