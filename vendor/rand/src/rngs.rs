//! Concrete generators: [`SmallRng`], the workspace's only RNG.

use crate::{RngCore, SeedableRng};

/// Xoshiro256++ — the algorithm behind `rand` 0.8's 64-bit `SmallRng`.
///
/// Small state, excellent statistical quality, and fully deterministic from
/// the seed; cheap enough for the simulator's per-instruction draws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from 32 seed bytes (little-endian state words).
    pub fn from_seed(seed: [u8; 32]) -> SmallRng {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // All-zero state would be a fixed point; displace it.
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                1,
            ];
        }
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(mut state: u64) -> SmallRng {
        // rand_core 0.6's expansion: a PCG32 sequence fills the seed buffer
        // four bytes at a time.
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        SmallRng::from_seed(seed)
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_xoshiro_sequence() {
        // Reference vector for xoshiro256++ with state [1, 2, 3, 4]
        // (from the algorithm's published test outputs).
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_differs_per_seed() {
        assert_ne!(
            SmallRng::seed_from_u64(0).next_u64(),
            SmallRng::seed_from_u64(1).next_u64()
        );
    }
}
