//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment is offline, so the workspace carries the small
//! slice of `rand` it actually uses: [`rngs::SmallRng`] (xoshiro256++ with
//! the rand_core 0.6 `seed_from_u64` expansion), the [`Rng`]/[`SeedableRng`]
//! traits, uniform integer ranges (Lemire widening-multiply rejection, as in
//! rand 0.8), and the 53-bit `Standard` f64. The algorithms match upstream
//! so seeded streams keep the statistical behavior the simulator's tests
//! and workload models were tuned against — and every draw is fully
//! deterministic, which the parallel experiment farm relies on.

pub mod rngs;

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with the PCG32
    /// sequence rand_core 0.6 uses, so short seeds still fill all state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sample a value of `Self` from the "standard" distribution: full-range
/// integers, 53-bit-mantissa uniform `[0, 1)` floats, fair booleans.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8's `Standard` for f64: 53 high bits, scaled to [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        (rng.next_u32() as i32) < 0
    }
}

macro_rules! standard_int {
    ($($ty:ty => $method:ident),* $(,)?) => {$(
        impl StandardSample for $ty {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $ty {
                rng.$method() as $ty
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

/// Types that can be drawn uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

// Widening multiply helpers (rand 0.8's `wmul`).
#[inline]
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let m = u64::from(a) * u64::from(b);
    ((m >> 32) as u32, m as u32)
}
#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let m = u128::from(a) * u128::from(b);
    ((m >> 64) as u64, m as u64)
}

macro_rules! uniform_int {
    ($($ty:ty, $uty:ty, $large:ty, $wmul:ident, $next:ident);* $(;)?) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                assert!(low < high, "gen_range: low must be < high");
                let range = high.wrapping_sub(low) as $uty as $large;
                // Lemire rejection: accept v*range whose low word falls in
                // the unbiased zone.
                let ints_to_reject = (<$large>::MAX - range + 1) % range;
                let zone = <$large>::MAX - ints_to_reject;
                loop {
                    let v = rng.$next() as $large;
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                assert!(low <= high, "gen_range: low must be <= high");
                let span = high.wrapping_sub(low) as $uty as $large;
                if span == <$large>::MAX {
                    return (rng.$next() as $large) as $ty;
                }
                let range = span + 1;
                let ints_to_reject = (<$large>::MAX - range + 1) % range;
                let zone = <$large>::MAX - ints_to_reject;
                loop {
                    let v = rng.$next() as $large;
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )*};
}
uniform_int! {
    u8, u8, u32, wmul32, next_u32;
    u16, u16, u32, wmul32, next_u32;
    u32, u32, u32, wmul32, next_u32;
    i8, u8, u32, wmul32, next_u32;
    i16, u16, u32, wmul32, next_u32;
    i32, u32, u32, wmul32, next_u32;
    u64, u64, u64, wmul64, next_u64;
    i64, u64, u64, wmul64, next_u64;
    usize, usize, u64, wmul64, next_u64;
    isize, usize, u64, wmul64, next_u64;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: low must be < high");
        low + f64::sample_standard(rng) * (high - low)
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        Self::sample_half_open(rng, low, high)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        T: SampleUniform,
        Ra: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v: u32 = r.gen_range(2..=6);
            assert!((2..=6).contains(&v));
            seen[(v - 2) as usize] = true;
            let w: u64 = r.gen_range(0..3);
            assert!(w < 3);
            let b: u8 = r.gen_range(1..17);
            assert!((1..17).contains(&b));
        }
        assert!(
            seen.iter().all(|&s| s),
            "inclusive range must cover all values"
        );
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
