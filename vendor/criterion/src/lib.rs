//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment is offline, so the workspace carries the slice of
//! criterion its benches use: [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`Throughput`], and the `criterion_group!` / `criterion_main!` macros.
//! Measurement is a plain warm-up + timed-samples loop reporting the mean
//! wall-clock time per iteration (no statistics engine, no HTML reports).

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.as_ref(), self.sample_size, None, f);
        self
    }

    /// Called by `criterion_main!` after all groups ran (report hook; no-op).
    pub fn final_summary(&mut self) {}
}

/// Units of work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let id = format!("{}/{}", self.name, id.as_ref());
        run_benchmark(&id, samples, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timing loop.
pub struct Bencher {
    samples: usize,
    /// Mean duration of one iteration, filled in by [`Bencher::iter`].
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, discarding one warm-up sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            total += start.elapsed();
        }
        self.iters = self.samples as u64;
        self.mean = total / self.samples as u32;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        mean: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = b.mean.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {id:<56} {:>12.3} ms/iter{rate}", per_iter * 1e3);
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_mean() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("spin", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.throughput(Throughput::Elements(1000));
        group.bench_function("spin2", |b| b.iter(|| (0..1000u64).product::<u64>()));
        group.finish();
    }
}
