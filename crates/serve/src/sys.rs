//! Raw epoll and eventfd bindings.
//!
//! The reactor needs exactly four kernel facilities: create an epoll
//! instance, (de)register file descriptors, wait for readiness, and a
//! cross-thread wakeup fd. `std` already links libc, so declaring the
//! symbols directly keeps the workspace's zero-registry-deps rule — the
//! same pattern the binaries use for `signal(2)`. Linux-only, like
//! epoll itself; everything above this module speaks in safe wrappers.

use std::io;
use std::os::unix::io::RawFd;

/// Readiness: data to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: socket writable.
pub const EPOLLOUT: u32 = 0x004;
/// Peer closed its write half (reported even without `EPOLLIN` interest).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Error condition (always reported, never needs registering).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never needs registering).
pub const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// `struct epoll_event` with the kernel's layout: packed on x86-64
/// (where the kernel ABI really is unaligned), natural alignment
/// elsewhere. The `u64` data field carries the connection token.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event mask.
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

extern "C" {
    fn nice(incr: i32) -> i32;
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// Lowers the calling thread's CPU priority by `incr` steps (Linux
/// applies `nice` per thread, not per process). Best-effort and
/// one-way: the cold lane's simulation workers call this so a saturated
/// core still schedules the reactor promptly.
pub fn lower_thread_priority(incr: i32) {
    if incr > 0 {
        unsafe { nice(incr) };
    }
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates the instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_create1` failure.
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the interest `events`, tagged `token`.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` failure.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes `fd`'s interest set.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`. Best-effort: deregistering an already-closed fd
    /// is not an error worth surfacing.
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) for readiness, filling
    /// `events` from the front. Returns how many entries are valid.
    /// `EINTR` is reported as zero events, not an error: the caller's
    /// loop re-evaluates deadlines and shutdown flags either way.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> usize {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            return 0;
        }
        n as usize
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A wakeup channel into an epoll loop: any thread (or signal handler —
/// `write(2)` is async-signal-safe) rings it, and the reactor sees the
/// eventfd become readable.
#[derive(Debug)]
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Creates the eventfd (non-blocking, cloexec).
    ///
    /// # Errors
    ///
    /// Propagates the `eventfd` failure.
    pub fn new() -> io::Result<WakeFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd { fd })
    }

    /// The fd to register with the epoll instance.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Rings the wakeup. Lock-free and async-signal-safe; an already-rung
    /// eventfd just accumulates, so this never blocks or fails loudly.
    pub fn ring(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Drains the pending wakeups so a level-triggered epoll stops
    /// reporting the fd until the next ring.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wakefd_rings_through_epoll() {
        let epoll = Epoll::new().expect("epoll");
        let wake = WakeFd::new().expect("eventfd");
        epoll.add(wake.fd(), EPOLLIN, 7).expect("register");

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll.wait(&mut events, 0), 0, "nothing rung yet");

        wake.ring();
        wake.ring();
        let n = epoll.wait(&mut events, 1000);
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 7);

        // Draining clears the level-triggered readiness.
        wake.drain();
        assert_eq!(epoll.wait(&mut events, 0), 0);
    }

    #[test]
    fn socket_readiness_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let epoll = Epoll::new().expect("epoll");
        epoll
            .add(listener.as_raw_fd(), EPOLLIN, 1)
            .expect("register listener");

        let mut client = TcpStream::connect(addr).expect("connect");
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let n = epoll.wait(&mut events, 1000);
        assert_eq!(n, 1, "pending accept is EPOLLIN on the listener");
        let data = events[0].data;
        assert_eq!(data, 1);

        let (mut accepted, _) = listener.accept().expect("accept");
        epoll
            .add(accepted.as_raw_fd(), EPOLLIN, 2)
            .expect("register conn");
        client.write_all(b"ping").expect("write");
        let n = epoll.wait(&mut events, 1000);
        assert!(n >= 1);
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
        epoll.delete(accepted.as_raw_fd());
    }
}
