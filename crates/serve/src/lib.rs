//! # softwatt-serve — the power-estimation query service
//!
//! Wraps a shared, memoizing [`ExperimentSuite`] in a small HTTP/1.1 API
//! so repeated queries against one machine configuration pay for each
//! simulation exactly once, no matter how many clients ask:
//!
//! - `POST /v1/run` — one `{benchmark, cpu?, disk?}` query → a
//!   `softwatt-run-v1` bundle (cycles, IPC, power budget, disk energy);
//! - `POST /v1/batch` — many queries, deduplicated and prewarmed in
//!   parallel, with `runs_executed` / `replays_derived` accounting;
//! - `GET /v1/figures/{name}` — rendered paper figures/tables
//!   (`softwatt::json::FIGURES` lists the names);
//! - `GET /healthz`, `GET /metrics` (the `softwatt-obs-v1` export), and
//!   `POST /admin/shutdown`.
//!
//! Production-shaped on purpose, with no dependencies beyond `std` and
//! the workspace crates. The core is an epoll reactor (`reactor`): one
//! thread owns every socket, parses requests incrementally, and answers
//! warm memo hits inline in microseconds. Everything else is classified
//! by cost *before* it queues — trace replays onto the replay worker
//! pool, full simulations onto the cold lane's own bounded pool — so a
//! multi-second cold grid saturates its queue (`503` + `Retry-After`)
//! without warm traffic ever waiting behind it. Concurrent `/v1/run`
//! misses for the same key dedup into one in-flight job. Graceful
//! shutdown drains in-flight work before `run` returns. See `DESIGN.md`
//! §11 for the reactor architecture.

pub mod client;
pub mod conn;
pub mod http;
pub mod json;
pub mod pool;
mod reactor;
pub mod routes;
pub mod sys;

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use softwatt::ExperimentSuite;

use pool::{Pool, COLD_LANE, FABRIC_LANE, REPLAY_LANE};
use reactor::{Completions, Reactor};
use routes::Ctx;
use sys::WakeFd;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Replay-lane worker threads (trace replays run here).
    pub workers: usize,
    /// Replay-lane queue capacity; beyond it, requests get `503`.
    pub queue_depth: usize,
    /// Cold-lane worker threads (full simulations run here).
    pub cold_workers: usize,
    /// Cold-lane queue capacity; beyond it, requests get `503`.
    pub cold_queue_depth: usize,
    /// Maximum concurrent connections; beyond it, accepts get `503`.
    pub max_connections: usize,
    /// Request-body cap (larger bodies get `413`).
    pub max_body_bytes: usize,
    /// Budget for a started request head/body to finish arriving;
    /// expiry is the slow-loris guard (`408`, close).
    pub read_timeout: Duration,
    /// Budget for a pending response write to make progress.
    pub write_timeout: Duration,
    /// Budget for a keep-alive connection with no request in progress;
    /// expiry closes it silently.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: thread::available_parallelism().map_or(2, |n| n.get()),
            queue_depth: 64,
            cold_workers: 1,
            cold_queue_depth: 8,
            max_connections: 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Clonable trigger that asks the server to drain and stop. Flipping it
/// is async-signal-safe — an atomic store plus an eventfd `write(2)` to
/// wake the reactor — which is exactly what the binary's SIGTERM handler
/// needs.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    wake: Arc<WakeFd>,
}

impl ShutdownHandle {
    /// Requests shutdown (idempotent).
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        self.wake.ring();
    }

    /// Whether shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// The HTTP server. [`Server::run`] owns the calling thread (it becomes
/// the reactor) until shutdown completes.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    ctx: Arc<Ctx>,
    replay: Arc<Pool>,
    cold: Arc<Pool>,
    fabric: Arc<Pool>,
    wake: Arc<WakeFd>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over a
    /// shared suite.
    ///
    /// # Errors
    ///
    /// Returns the bind/configure failure as a string.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        suite: Arc<ExperimentSuite>,
        config: ServeConfig,
    ) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind failed: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking failed: {e}"))?;
        let replay = Arc::new(Pool::new(&REPLAY_LANE, config.workers, config.queue_depth));
        let cold = Arc::new(Pool::new(
            &COLD_LANE,
            config.cold_workers,
            config.cold_queue_depth,
        ));
        // One dedicated worker for peer trace transfers: enough to keep
        // the fabric live (transfers are local-only and single-flighted
        // through the suite memo), and isolated so a cold lane full of
        // jobs blocked on *remote* peers can never starve the transfers
        // those peers are waiting for.
        let fabric = Arc::new(Pool::new(&FABRIC_LANE, 1, 32));
        let wake = Arc::new(WakeFd::new().map_err(|e| format!("eventfd failed: {e}"))?);
        let ctx = Arc::new(Ctx::new(suite, Arc::new(AtomicBool::new(false))));
        Ok(Server {
            listener,
            config,
            ctx,
            replay,
            cold,
            fabric,
            wake,
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the OS lookup failure as a string.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("local_addr failed: {e}"))
    }

    /// The replay-lane pool. Embedders (and tests) can co-schedule their
    /// own jobs on it; anything submitted competes with replay traffic
    /// for the same bounded queue.
    pub fn pool(&self) -> Arc<Pool> {
        Arc::clone(&self.replay)
    }

    /// The cold-lane pool (full simulations).
    pub fn cold_pool(&self) -> Arc<Pool> {
        Arc::clone(&self.cold)
    }

    /// A handle that stops the server from another thread or a signal
    /// handler.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.ctx.shutdown),
            wake: Arc::clone(&self.wake),
        }
    }

    /// Runs the reactor on the calling thread until shutdown is
    /// triggered, then drains: the listener closes, idle connections
    /// drop, in-flight compute finishes and its responses flush, and the
    /// worker pools join.
    pub fn run(self) {
        let completions = Arc::new(Completions::new(Arc::clone(&self.wake)));
        let reactor = Reactor::new(
            self.listener,
            Arc::clone(&self.ctx),
            &self.config,
            self.replay,
            self.cold,
            self.fabric,
            completions,
        )
        .expect("epoll setup");
        reactor.run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= 1);
        assert_eq!(c.cold_workers, 1, "one cold worker by default");
        assert!(c.cold_queue_depth >= 1);
        assert!(c.max_connections >= 1);
        assert_eq!(c.max_body_bytes, 1024 * 1024);
        assert!(c.idle_timeout > c.read_timeout, "idle outlives partials");
    }

    #[test]
    fn shutdown_handle_round_trips() {
        let suite = Arc::new(
            ExperimentSuite::new(softwatt::SystemConfig {
                time_scale: 500_000.0,
                ..softwatt::SystemConfig::default()
            })
            .unwrap(),
        );
        let server = Server::bind("127.0.0.1:0", suite, ServeConfig::default()).unwrap();
        assert!(server.local_addr().unwrap().port() > 0);
        let handle = server.shutdown_handle();
        assert!(!handle.is_triggered());
        handle.trigger();
        assert!(handle.is_triggered());
        // run() must return promptly with the flag already set.
        server.run();
    }
}
