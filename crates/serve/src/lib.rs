//! # softwatt-serve — the power-estimation query service
//!
//! Wraps a shared, memoizing [`ExperimentSuite`] in a small HTTP/1.1 API
//! so repeated queries against one machine configuration pay for each
//! simulation exactly once, no matter how many clients ask:
//!
//! - `POST /v1/run` — one `{benchmark, cpu?, disk?}` query → a
//!   `softwatt-run-v1` bundle (cycles, IPC, power budget, disk energy);
//! - `POST /v1/batch` — many queries, deduplicated and prewarmed in
//!   parallel, with `runs_executed` / `replays_derived` accounting;
//! - `GET /v1/figures/{name}` — rendered paper figures/tables
//!   (`softwatt::json::FIGURES` lists the names);
//! - `GET /healthz`, `GET /metrics` (the `softwatt-obs-v1` export), and
//!   `POST /admin/shutdown`.
//!
//! Production-shaped on purpose, with no dependencies beyond `std` and
//! the workspace crates: a fixed worker pool over a bounded queue
//! (overload → immediate `503` + `Retry-After`, never an unbounded
//! backlog), per-connection read/write timeouts and body-size limits,
//! keep-alive, and graceful shutdown that drains in-flight work. See
//! `DESIGN.md` §server for the threading model.

pub mod client;
pub mod http;
pub mod json;
pub mod pool;
pub mod routes;

use std::collections::HashMap;
use std::io::{BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use softwatt::ExperimentSuite;

use http::{Limits, ReadError, Response};
use pool::Pool;
use routes::{Ctx, Route};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Compute-pool threads (simulations run here).
    pub workers: usize,
    /// Bounded compute-queue capacity; beyond it, requests get `503`.
    pub queue_depth: usize,
    /// Maximum concurrent connections; beyond it, accepts get `503`.
    pub max_connections: usize,
    /// Request-body cap (larger bodies get `413`).
    pub max_body_bytes: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: thread::available_parallelism().map_or(2, |n| n.get()),
            queue_depth: 64,
            max_connections: 256,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Clonable trigger that asks the server to drain and stop. Flipping it is
/// async-signal-safe (a single atomic store), which is exactly what the
/// binary's SIGTERM handler needs.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown (idempotent).
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Live-connection registry: stream clones (for waking blocked readers at
/// shutdown) plus a count the drain phase waits on.
#[derive(Default)]
struct ConnState {
    streams: HashMap<u64, TcpStream>,
}

struct Connections {
    state: Mutex<ConnState>,
    all_closed: Condvar,
}

impl Connections {
    fn register(&self, id: u64, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            self.state
                .lock()
                .expect("conn lock")
                .streams
                .insert(id, clone);
        }
        softwatt_obs::count("serve.connections.accepted", 1);
    }

    fn deregister(&self, id: u64) {
        let mut state = self.state.lock().expect("conn lock");
        state.streams.remove(&id);
        if state.streams.is_empty() {
            self.all_closed.notify_all();
        }
    }

    /// Wakes every blocked reader: idle keep-alive connections sit in a
    /// socket read, and shutting down the read half makes that return EOF.
    fn shutdown_reads(&self) {
        let state = self.state.lock().expect("conn lock");
        for stream in state.streams.values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }

    fn wait_all_closed(&self) {
        let mut state = self.state.lock().expect("conn lock");
        while !state.streams.is_empty() {
            state = self.all_closed.wait(state).expect("conn lock");
        }
    }

    fn len(&self) -> usize {
        self.state.lock().expect("conn lock").streams.len()
    }
}

/// The HTTP server. [`Server::run`] owns the calling thread until
/// shutdown completes.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    ctx: Arc<Ctx>,
    connections: Arc<Connections>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over a
    /// shared suite.
    ///
    /// # Errors
    ///
    /// Returns the bind/configure failure as a string.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        suite: Arc<ExperimentSuite>,
        config: ServeConfig,
    ) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind failed: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking failed: {e}"))?;
        let pool = Arc::new(Pool::new(config.workers, config.queue_depth));
        let ctx = Arc::new(Ctx {
            suite,
            pool,
            shutdown: Arc::new(AtomicBool::new(false)),
        });
        Ok(Server {
            listener,
            config,
            ctx,
            connections: Arc::new(Connections {
                state: Mutex::new(ConnState::default()),
                all_closed: Condvar::new(),
            }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the OS lookup failure as a string.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("local_addr failed: {e}"))
    }

    /// The compute pool. Embedders (and tests) can co-schedule their own
    /// jobs on it; anything submitted competes with HTTP requests for the
    /// same bounded queue.
    pub fn pool(&self) -> Arc<Pool> {
        Arc::clone(&self.ctx.pool)
    }

    /// A handle that stops the server from another thread or a signal
    /// handler.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.ctx.shutdown),
        }
    }

    /// Accepts connections until shutdown is triggered, then drains:
    /// stops accepting, wakes idle readers, finishes queued + in-flight
    /// compute, waits for every connection to write its last response.
    pub fn run(self) {
        let next_id = AtomicU64::new(0);
        while !self.ctx.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    if self.connections.len() >= self.config.max_connections {
                        // Over the connection cap: one-shot 503 and close.
                        softwatt_obs::count("serve.connections.refused", 1);
                        let mut stream = stream;
                        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                        let _ = http::write_response(
                            &mut stream,
                            &Response::overloaded(routes::RETRY_AFTER_S),
                            true,
                        );
                        continue;
                    }
                    self.connections.register(id, &stream);
                    let ctx = Arc::clone(&self.ctx);
                    let connections = Arc::clone(&self.connections);
                    let config = self.config.clone();
                    let spawned = thread::Builder::new()
                        .name(format!("serve-conn-{id}"))
                        .spawn(move || {
                            serve_connection(&ctx, &config, stream);
                            connections.deregister(id);
                        });
                    if spawned.is_err() {
                        self.connections.deregister(id);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // Nonblocking accept doubles as the shutdown poll.
                    thread::sleep(Duration::from_millis(10));
                }
                Err(_) => thread::sleep(Duration::from_millis(10)),
            }
        }
        drop(self.listener);
        softwatt_obs::count("serve.shutdown.triggered", 1);
        self.connections.shutdown_reads();
        self.ctx.pool.shutdown();
        self.connections.wait_all_closed();
    }
}

/// Serves one connection: read → dispatch → write, keep-alive until the
/// peer closes, errors, asks to close, or shutdown begins.
fn serve_connection(ctx: &Ctx, config: &ServeConfig, stream: TcpStream) {
    if stream.set_read_timeout(Some(config.read_timeout)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let limits = Limits {
        max_body_bytes: config.max_body_bytes,
        ..Limits::default()
    };

    loop {
        let req = match http::read_request(&mut reader, &limits) {
            Ok(req) => req,
            Err(ReadError::Closed) => return,
            Err(ReadError::Timeout) => {
                let resp = Response::error(408, "timeout", "request not received in time");
                let _ = http::write_response(&mut writer, &resp, true);
                return;
            }
            Err(ReadError::BodyTooLarge) => {
                let resp = Response::error(413, "body_too_large", "request body exceeds limit");
                let _ = http::write_response(&mut writer, &resp, true);
                return;
            }
            Err(ReadError::Malformed(msg)) => {
                let resp = Response::error(400, "malformed_request", msg);
                let _ = http::write_response(&mut writer, &resp, true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };

        let route = Route::of(&req.target);
        let start = Instant::now();
        let resp = routes::dispatch(ctx, route, &req);
        softwatt_obs::observe(route.latency(), start.elapsed().as_micros() as u64);
        softwatt_obs::count(route.counter(), 1);
        softwatt_obs::count(status_counter(resp.status), 1);

        // Draining? Tell the peer this is the last response on the wire.
        let close = req.wants_close() || ctx.shutdown.load(Ordering::SeqCst);
        if http::write_response(&mut writer, &resp, close).is_err() || close {
            return;
        }
    }
}

/// Static counter name for a status class (static names keep the obs
/// registry allocation-free).
fn status_counter(status: u16) -> &'static str {
    match status {
        200..=299 => "serve.responses.2xx",
        400..=499 => "serve.responses.4xx",
        503 => "serve.responses.503",
        _ => "serve.responses.5xx",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= 1);
        assert!(c.max_connections >= 1);
        assert_eq!(c.max_body_bytes, 1024 * 1024);
    }

    #[test]
    fn status_counters_are_static() {
        assert_eq!(status_counter(200), "serve.responses.2xx");
        assert_eq!(status_counter(404), "serve.responses.4xx");
        assert_eq!(status_counter(503), "serve.responses.503");
        assert_eq!(status_counter(500), "serve.responses.5xx");
    }

    #[test]
    fn shutdown_handle_round_trips() {
        let suite = Arc::new(
            ExperimentSuite::new(softwatt::SystemConfig {
                time_scale: 500_000.0,
                ..softwatt::SystemConfig::default()
            })
            .unwrap(),
        );
        let server = Server::bind("127.0.0.1:0", suite, ServeConfig::default()).unwrap();
        assert!(server.local_addr().unwrap().port() > 0);
        let handle = server.shutdown_handle();
        assert!(!handle.is_triggered());
        handle.trigger();
        assert!(handle.is_triggered());
        // run() must return promptly with the flag already set.
        server.run();
    }
}
