//! Per-connection state machine for the reactor.
//!
//! Each accepted socket becomes one [`Conn`]: a nonblocking stream plus
//! a read buffer the incremental parser works off, a write buffer the
//! responses drain from, and the flags that sequence them. The state is
//! explicit so the reactor can multiplex thousands of these over one
//! thread:
//!
//! - bytes arrive in any segmentation; [`Conn::next_request`] yields
//!   complete requests off the front of the buffer (pipelined requests
//!   simply queue up behind one another in it);
//! - while a compute response is pending (`busy`), parsing pauses — the
//!   reactor drops read interest, so HTTP/1.1 response ordering holds
//!   without any reordering machinery;
//! - responses serialize into the write buffer and drain on writability;
//!   `close_after_flush` sequences `Connection: close` teardown behind
//!   the last byte actually leaving.
//!
//! Deadlines are data, not blocked threads: [`Conn::deadline`] derives
//! the next timeout from the state (idle keep-alive, partial request
//! head, stalled write), and the reactor reaps whatever expires — this
//! is what makes a byte-at-a-time slow-loris sender cost one buffer, not
//! a worker thread.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::http::{self, Limits, ParseError, Request, Response};
use crate::routes::{Lane, Route};

/// Per-event read cap: one connection can pull at most this many bytes
/// per readiness event, so a firehose peer cannot starve its neighbors
/// on the shared reactor thread.
const READ_CAP_PER_EVENT: usize = 64 * 1024;

/// What one readiness-driven read pass produced.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Bytes were appended (or the socket simply had none left).
    Progress,
    /// Clean EOF: the peer finished sending.
    PeerClosed,
    /// Transport error; the connection is dead.
    Broken,
}

/// One live connection owned by the reactor.
pub struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// A compute job's response is pending; parsing is paused.
    pub busy: bool,
    /// Close once the write buffer fully drains.
    pub close_after_flush: bool,
    /// The peer sent EOF; deliver what is owed, accept nothing new.
    pub peer_closed: bool,
    /// When the pending compute job was admitted (lane latency anchor).
    pub pending_since: Option<Instant>,
    /// Route of the pending compute job (metrics label).
    pub pending_route: Option<Route>,
    /// Lane of the pending compute job.
    pub pending_lane: Option<Lane>,
    /// Whether the pending request asked to close after its response.
    pub pending_close: bool,
    /// Last moment bytes moved in either direction (deadline anchor).
    pub last_progress: Instant,
    /// When the current partial request started arriving. The read
    /// deadline anchors *here*, not at `last_progress` — a slow-loris
    /// sender dribbling one byte per interval keeps making "progress"
    /// but can never push the head's total budget forward.
    pub partial_since: Option<Instant>,
}

impl Conn {
    /// The raw fd, for epoll registration.
    pub fn fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd as _;
        self.stream.as_raw_fd()
    }

    /// Wraps an accepted stream (already set nonblocking by the caller).
    pub fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            busy: false,
            close_after_flush: false,
            peer_closed: false,
            pending_since: None,
            pending_route: None,
            pending_lane: None,
            pending_close: false,
            last_progress: now,
            partial_since: None,
        }
    }

    /// Pulls whatever the socket has ready (up to the per-event cap)
    /// into the read buffer.
    pub fn try_read(&mut self, scratch: &mut [u8], now: Instant) -> ReadOutcome {
        let mut total = 0;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.peer_closed = true;
                    return ReadOutcome::PeerClosed;
                }
                Ok(n) => {
                    if self.read_buf.is_empty() {
                        self.partial_since = Some(now);
                    }
                    self.read_buf.extend_from_slice(&scratch[..n]);
                    self.last_progress = now;
                    total += n;
                    if total >= READ_CAP_PER_EVENT {
                        return ReadOutcome::Progress;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Progress,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Broken,
            }
        }
    }

    /// Parses the next complete request off the front of the read
    /// buffer, consuming its bytes.
    ///
    /// # Errors
    ///
    /// Propagates the parser's verdict; the stream cannot recover after
    /// one.
    pub fn next_request(&mut self, limits: &Limits) -> Result<Option<Request>, ParseError> {
        if self.read_buf.is_empty() {
            return Ok(None);
        }
        match http::parse_request(&self.read_buf, limits)? {
            None => Ok(None),
            Some((req, consumed)) => {
                self.read_buf.drain(..consumed);
                // A pipelined follow-up already buffered counts as a new
                // partial head starting now.
                self.partial_since = if self.read_buf.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                Ok(Some(req))
            }
        }
    }

    /// Serializes `resp` into the write buffer (and records the close
    /// decision it was written with).
    pub fn push_response(&mut self, resp: &Response, close: bool) {
        http::write_response(&mut self.write_buf, resp, close).expect("write to Vec");
        if close {
            self.close_after_flush = true;
        }
    }

    /// Flushes as much of the write buffer as the socket accepts now.
    /// Returns `Ok(true)` when the buffer is empty afterwards.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (the connection is dead).
    pub fn try_write(&mut self, now: Instant) -> io::Result<bool> {
        let mut written = 0;
        while written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[written..]) {
                Ok(0) => break,
                Ok(n) => {
                    written += n;
                    self.last_progress = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.write_buf.drain(..written);
        Ok(self.write_buf.is_empty())
    }

    /// Whether the write buffer still holds bytes to send.
    pub fn has_pending_write(&self) -> bool {
        !self.write_buf.is_empty()
    }

    /// Whether the read buffer holds a partial (not yet complete)
    /// request head or body.
    pub fn has_partial_request(&self) -> bool {
        !self.read_buf.is_empty()
    }

    /// The epoll interest mask this state wants: read while parsing is
    /// allowed, write while bytes are owed.
    pub fn interest(&self) -> u32 {
        let mut events = 0;
        if !self.busy && !self.close_after_flush && !self.peer_closed {
            events |= crate::sys::EPOLLIN;
        }
        if self.has_pending_write() {
            events |= crate::sys::EPOLLOUT;
        }
        events
    }

    /// When this connection must be reaped, given the configured
    /// timeouts, and how (see [`Expiry`]). Busy connections have no
    /// deadline of their own: they are waiting on a bounded compute
    /// queue, which drains by construction.
    pub fn deadline(&self, timeouts: &Timeouts) -> Option<(Instant, Expiry)> {
        if self.has_pending_write() {
            return Some((self.last_progress + timeouts.write, Expiry::WriteStalled));
        }
        if self.busy {
            return None;
        }
        if self.has_partial_request() {
            let anchor = self.partial_since.unwrap_or(self.last_progress);
            return Some((anchor + timeouts.read, Expiry::PartialRequest));
        }
        Some((self.last_progress + timeouts.idle, Expiry::Idle))
    }
}

/// The reactor's deadline configuration.
#[derive(Debug, Clone, Copy)]
pub struct Timeouts {
    /// Budget for a started request to arrive completely.
    pub read: Duration,
    /// Budget for a pending write to make progress.
    pub write: Duration,
    /// Budget for a connection with no request in progress.
    pub idle: Duration,
}

/// Why a deadline fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expiry {
    /// Idle keep-alive connection: close silently.
    Idle,
    /// Partial request that stopped arriving (slow-loris): `408`, close.
    PartialRequest,
    /// The peer stopped draining its responses: close.
    WriteStalled,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        (client, Conn::new(server, Instant::now()))
    }

    #[test]
    fn parses_requests_across_arbitrary_boundaries() {
        let (mut client, mut conn) = pair();
        let raw = b"POST /v1/run HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut scratch = [0u8; 4096];
        let limits = Limits::default();
        // Dribble one byte at a time; only the final byte completes it.
        for (i, b) in raw.iter().enumerate() {
            client.write_all(&[*b]).expect("dribble");
            client.flush().expect("flush");
            // Wait for the byte to land server-side.
            loop {
                conn.try_read(&mut scratch, Instant::now());
                if conn.read_buf.len() == i + 1 {
                    break;
                }
            }
            let parsed = conn.next_request(&limits).expect("valid prefix");
            if i + 1 < raw.len() {
                assert!(parsed.is_none(), "byte {i} must not complete the request");
            } else {
                let req = parsed.expect("complete");
                assert_eq!(req.target, "/v1/run");
                assert_eq!(req.body, b"ok");
            }
        }
        assert!(!conn.has_partial_request(), "buffer fully consumed");
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n")
            .expect("write both");
        let mut scratch = [0u8; 4096];
        let limits = Limits::default();
        while conn.read_buf.len() < 49 {
            conn.try_read(&mut scratch, Instant::now());
        }
        let first = conn.next_request(&limits).unwrap().expect("first");
        assert_eq!(first.target, "/healthz");
        let second = conn.next_request(&limits).unwrap().expect("second");
        assert_eq!(second.target, "/metrics");
        assert!(conn.next_request(&limits).unwrap().is_none());
    }

    #[test]
    fn deadlines_follow_state() {
        let (_client, mut conn) = pair();
        let timeouts = Timeouts {
            read: Duration::from_secs(5),
            write: Duration::from_secs(7),
            idle: Duration::from_secs(60),
        };
        let (_, why) = conn.deadline(&timeouts).expect("idle deadline");
        assert_eq!(why, Expiry::Idle);

        conn.read_buf.extend_from_slice(b"GET /par");
        let (_, why) = conn.deadline(&timeouts).expect("read deadline");
        assert_eq!(why, Expiry::PartialRequest);

        conn.busy = true;
        assert!(
            conn.deadline(&timeouts).is_none(),
            "busy conns wait on the queue"
        );

        conn.push_response(&Response::json(200, "{}"), false);
        let (_, why) = conn.deadline(&timeouts).expect("write deadline");
        assert_eq!(why, Expiry::WriteStalled);
    }

    #[test]
    fn partial_deadline_anchors_at_head_start_not_last_byte() {
        let (mut client, mut conn) = pair();
        let timeouts = Timeouts {
            read: Duration::from_millis(200),
            write: Duration::from_secs(5),
            idle: Duration::from_secs(60),
        };
        let mut scratch = [0u8; 64];
        client.write_all(b"G").expect("first byte");
        while conn.read_buf.is_empty() {
            conn.try_read(&mut scratch, Instant::now());
        }
        let (first, why) = conn.deadline(&timeouts).expect("partial deadline");
        assert_eq!(why, Expiry::PartialRequest);

        // A dribbled second byte is "progress" but must not extend the
        // head's total budget — that is the slow-loris guard.
        std::thread::sleep(Duration::from_millis(30));
        client.write_all(b"E").expect("second byte");
        while conn.read_buf.len() < 2 {
            conn.try_read(&mut scratch, Instant::now());
        }
        let (second, _) = conn.deadline(&timeouts).expect("still partial");
        assert_eq!(first, second, "deadline slid forward on a dribbled byte");
    }

    #[test]
    fn interest_tracks_state() {
        let (_client, mut conn) = pair();
        assert_eq!(conn.interest(), crate::sys::EPOLLIN);
        conn.busy = true;
        assert_eq!(conn.interest(), 0);
        conn.push_response(&Response::json(200, "{}"), false);
        assert_eq!(conn.interest(), crate::sys::EPOLLOUT);
        conn.busy = false;
        assert_eq!(conn.interest(), crate::sys::EPOLLIN | crate::sys::EPOLLOUT);
    }

    #[test]
    fn write_drains_into_the_socket() {
        let (mut client, mut conn) = pair();
        conn.push_response(&Response::json(200, "{\"x\": 1}"), true);
        assert!(conn.close_after_flush);
        assert!(conn.try_write(Instant::now()).expect("write"));
        let mut buf = [0u8; 512];
        let n = client.read(&mut buf).expect("read response");
        let text = std::str::from_utf8(&buf[..n]).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"));
    }
}
