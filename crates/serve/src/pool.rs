//! Fixed worker pools with bounded queues, one per admission lane.
//!
//! The reactor thread does all socket I/O; compute lands here. Each lane
//! (replay, cold) owns its own pool, so a multi-second cold simulation
//! queue can saturate without delaying cheap replays. A queue has a hard
//! capacity, and [`Pool::try_submit`] refuses work instead of blocking —
//! that refusal is the backpressure signal the HTTP layer turns into a
//! `503` + `Retry-After`. Shutdown is graceful by construction: workers
//! drain everything already accepted, then exit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

/// A unit of queued work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// One lane's static identity: metric names (static names keep the obs
/// registry allocation-free) plus its workers' scheduling niceness.
#[derive(Debug)]
pub struct LaneMetrics {
    /// Worker-thread name prefix.
    pub thread_prefix: &'static str,
    /// Gauge: current queue depth.
    pub depth: &'static str,
    /// Gauge: maximum queue depth ever observed (high-water mark).
    pub depth_max: &'static str,
    /// Counter: jobs refused by a full (or draining) queue.
    pub rejected: &'static str,
    /// How many `nice` steps the lane's workers drop below the reactor.
    pub nice: i32,
}

/// The replay lane: cheap trace replays and memoized figure renders.
pub static REPLAY_LANE: LaneMetrics = LaneMetrics {
    thread_prefix: "serve-replay",
    depth: "serve.lane.replay.queue_depth",
    depth_max: "serve.lane.replay.queue_depth_max",
    rejected: "serve.lane.replay.rejected",
    nice: 0,
};

/// The cold lane: full multi-second simulations. Its workers run niced
/// so a saturated core still schedules the reactor (and the replay
/// lane) promptly — cold work is throughput, not latency.
pub static COLD_LANE: LaneMetrics = LaneMetrics {
    thread_prefix: "serve-cold",
    depth: "serve.lane.cold.queue_depth",
    depth_max: "serve.lane.cold.queue_depth_max",
    rejected: "serve.lane.cold.rejected",
    nice: 10,
};

/// The fabric lane: `/v1/traces` transfers to peer servers. Deliberately
/// separate from the cold pool — a transfer job only ever computes
/// locally (the serving path never peer-fetches), so this pool always
/// makes progress even when every cold worker is blocked waiting on a
/// remote peer. Sharing the cold pool would deadlock two peered servers
/// fetching from each other (see `DESIGN.md` §14).
pub static FABRIC_LANE: LaneMetrics = LaneMetrics {
    thread_prefix: "serve-fabric",
    depth: "serve.lane.fabric.queue_depth",
    depth_max: "serve.lane.fabric.queue_depth_max",
    rejected: "serve.lane.fabric.rejected",
    nice: 10,
};

/// Returned by [`Pool::try_submit`] when the bounded queue is full or the
/// pool is draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct State {
    queue: VecDeque<Job>,
    capacity: usize,
    draining: bool,
}

struct Inner {
    state: Mutex<State>,
    work_ready: Condvar,
    metrics: &'static LaneMetrics,
}

/// A fixed-size worker pool over a bounded FIFO queue.
pub struct Pool {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Spawns `workers` threads sharing a queue of at most `capacity`
    /// pending jobs (both clamped to at least 1), reporting under the
    /// lane's metric names.
    pub fn new(metrics: &'static LaneMetrics, workers: usize, capacity: usize) -> Pool {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity: capacity.max(1),
                draining: false,
            }),
            work_ready: Condvar::new(),
            metrics,
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("{}-{i}", metrics.thread_prefix))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues `job` if there is room, without blocking.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the queue is at capacity or the pool is draining;
    /// the job is returned unexecuted inside the error path (dropped).
    pub fn try_submit(&self, job: Job) -> Result<(), QueueFull> {
        let metrics = self.inner.metrics;
        let mut state = self.inner.state.lock().expect("pool lock");
        if state.draining || state.queue.len() >= state.capacity {
            softwatt_obs::count(metrics.rejected, 1);
            return Err(QueueFull);
        }
        state.queue.push_back(job);
        let depth = state.queue.len() as f64;
        softwatt_obs::gauge_set(metrics.depth, depth);
        softwatt_obs::gauge_raise(metrics.depth_max, depth);
        drop(state);
        self.inner.work_ready.notify_one();
        Ok(())
    }

    /// Stops accepting work, runs everything already queued, and joins the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("pool lock");
            state.draining = true;
        }
        self.inner.work_ready.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    crate::sys::lower_thread_priority(inner.metrics.nice);
    let mut state = inner.state.lock().expect("pool lock");
    loop {
        if let Some(job) = state.queue.pop_front() {
            softwatt_obs::gauge_set(inner.metrics.depth, state.queue.len() as f64);
            drop(state);
            job();
            state = inner.state.lock().expect("pool lock");
            continue;
        }
        if state.draining {
            return;
        }
        state = inner.work_ready.wait(state).expect("pool lock");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let pool = Pool::new(&REPLAY_LANE, 2, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.try_submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let pool = Pool::new(&COLD_LANE, 1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.try_submit(Box::new(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }))
        .unwrap();
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker picks up the blocking job");
        // ...fill the queue's single slot...
        pool.try_submit(Box::new(|| {})).unwrap();
        // ...and the next submit must bounce immediately.
        assert_eq!(pool.try_submit(Box::new(|| {})), Err(QueueFull));
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_refuses_new_ones() {
        let pool = Pool::new(&REPLAY_LANE, 1, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            pool.try_submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(10));
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 4, "queued jobs drain");
        assert_eq!(pool.try_submit(Box::new(|| {})), Err(QueueFull));
        pool.shutdown(); // idempotent
    }
}
