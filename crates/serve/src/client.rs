//! A minimal blocking HTTP/1.1 client for tests and the load generator.
//!
//! Speaks exactly the dialect the server emits: JSON bodies with
//! `Content-Length`, keep-alive by default. Not a general-purpose client.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response as read off the wire.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl ClientResponse {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A persistent connection to the service.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects with the given I/O timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one request; `body = ""` omits the payload.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_request(&mut self, method: &str, path: &str, body: &str) -> io::Result<()> {
        // One write call for the whole request: `write!` straight to the
        // stream would emit one segment per format fragment, and Nagle
        // holding the tail fragments for a delayed ACK puts a ~40ms floor
        // under every measured latency.
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: softwatt\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(request.as_bytes())?;
        self.stream.flush()
    }

    /// Reads one response (headers + `Content-Length` body).
    ///
    /// # Errors
    ///
    /// Fails on timeouts, early EOF, or an unparsable status line.
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;

        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF in headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("missing content-length"))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    /// Request + response in one call.
    ///
    /// # Errors
    ///
    /// Propagates either half's failure.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.send_request(method, path, body)?;
        self.read_response()
    }
}
