//! A minimal blocking HTTP/1.1 client for tests and the load generator.
//!
//! Speaks exactly the dialect the server emits: JSON bodies with
//! `Content-Length`, keep-alive by default. Not a general-purpose client.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response as read off the wire.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl ClientResponse {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A response whose body stays raw bytes — the trace-transfer endpoint
/// returns `swtrace-v1` binary, which is not UTF-8.
#[derive(Debug)]
pub struct RawResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body bytes, verbatim.
    pub body: Vec<u8>,
}

impl RawResponse {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A persistent connection to the service.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects with the given I/O timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one request; `body = ""` omits the payload.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_request(&mut self, method: &str, path: &str, body: &str) -> io::Result<()> {
        // One write call for the whole request: `write!` straight to the
        // stream would emit one segment per format fragment, and Nagle
        // holding the tail fragments for a delayed ACK puts a ~40ms floor
        // under every measured latency.
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: softwatt\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(request.as_bytes())?;
        self.stream.flush()
    }

    /// Reads one response (headers + `Content-Length` body), keeping the
    /// body as raw bytes.
    ///
    /// # Errors
    ///
    /// Fails on timeouts, early EOF, or an unparsable status line.
    pub fn read_response_bytes(&mut self) -> io::Result<RawResponse> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;

        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF in headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("missing content-length"))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(RawResponse {
            status,
            headers,
            body,
        })
    }

    /// Reads one response, decoding the body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Fails on timeouts, early EOF, an unparsable status line, or a
    /// non-UTF-8 body.
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let raw = self.read_response_bytes()?;
        let body = String::from_utf8(raw.body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok(ClientResponse {
            status: raw.status,
            headers: raw.headers,
            body,
        })
    }

    /// Request + response in one call.
    ///
    /// # Errors
    ///
    /// Propagates either half's failure.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.send_request(method, path, body)?;
        self.read_response()
    }

    /// Request + raw-bytes response in one call (binary endpoints).
    ///
    /// # Errors
    ///
    /// Propagates either half's failure.
    pub fn request_bytes(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<RawResponse> {
        self.send_request(method, path, body)?;
        self.read_response_bytes()
    }
}
