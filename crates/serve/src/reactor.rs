//! The epoll reactor: one thread multiplexing every connection.
//!
//! The event loop owns all socket I/O — accepting, incremental request
//! parsing, response writing — over nonblocking sockets and a single
//! `epoll` instance, so thousands of idle keep-alive connections cost a
//! few hundred bytes of state each and zero threads. Compute never runs
//! here: admission (`routes::dispatch`) classifies each request by what
//! the suite already knows about its cost and either answers it inline
//! (warm memo hits render in microseconds), or submits it to the replay
//! or cold lane's bounded worker pool. Workers hand finished responses
//! back through a completion queue and ring an eventfd; the reactor
//! writes them out on its next wakeup.
//!
//! `/v1/run` misses dedup at this layer: the first request for a key
//! creates an in-flight job, and every concurrent request for the same
//! key *attaches* to it (`serve.dedup_attached`) instead of queuing a
//! duplicate — all waiters receive the one rendered response.
//!
//! Graceful drain: on shutdown the listener closes, idle connections
//! drop, and the loop keeps delivering until no job is in flight and no
//! response byte is owed — then the pools join and `run` returns.

use std::collections::HashMap;
use std::net::TcpListener;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use softwatt::experiments::RunKey;

use crate::conn::{Conn, Expiry, ReadOutcome, Timeouts};
use crate::http::{Limits, ParseError, Response};
use crate::pool::Pool;
use crate::routes::{self, Ctx, Lane, Outcome, Route, RETRY_AFTER_S};
use crate::sys::{Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::ServeConfig;

/// Token for the accept socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token for the completion-queue eventfd.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// A finished compute job on its way back to the reactor.
pub(crate) enum Done {
    /// A deduped `/v1/run` job: fan the response out to every waiter.
    Keyed {
        /// The dedup identity.
        key: RunKey,
        /// The rendered response (cloned per waiter).
        resp: Response,
    },
    /// A keyless job (batch, figure) for one specific connection.
    Direct {
        /// The waiting connection's token.
        token: u64,
        /// The rendered response.
        resp: Response,
    },
}

/// The worker→reactor completion channel: a mutexed queue plus the
/// eventfd that wakes the epoll loop.
pub(crate) struct Completions {
    queue: Mutex<Vec<Done>>,
    wake: Arc<WakeFd>,
}

impl Completions {
    pub(crate) fn new(wake: Arc<WakeFd>) -> Completions {
        Completions {
            queue: Mutex::new(Vec::new()),
            wake,
        }
    }

    pub(crate) fn push(&self, done: Done) {
        self.queue.lock().expect("completions lock").push(done);
        self.wake.ring();
    }

    fn drain(&self) -> Vec<Done> {
        std::mem::take(&mut *self.queue.lock().expect("completions lock"))
    }
}

/// One in-flight deduped `/v1/run` job.
struct InflightJob {
    /// Connections awaiting this key's response.
    waiters: Vec<u64>,
}

/// The event loop. Constructed by `Server::run` and consumed by
/// [`Reactor::run`].
pub(crate) struct Reactor {
    epoll: Epoll,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    /// Currently-registered epoll interest per connection.
    interests: HashMap<u64, u32>,
    next_token: u64,
    ctx: Arc<Ctx>,
    limits: Limits,
    timeouts: Timeouts,
    max_connections: usize,
    replay: Arc<Pool>,
    cold: Arc<Pool>,
    fabric: Arc<Pool>,
    completions: Arc<Completions>,
    inflight: HashMap<RunKey, InflightJob>,
    pending_jobs: usize,
    draining: bool,
    scratch: Vec<u8>,
}

impl Reactor {
    pub(crate) fn new(
        listener: TcpListener,
        ctx: Arc<Ctx>,
        config: &ServeConfig,
        replay: Arc<Pool>,
        cold: Arc<Pool>,
        fabric: Arc<Pool>,
        completions: Arc<Completions>,
    ) -> std::io::Result<Reactor> {
        Ok(Reactor {
            epoll: Epoll::new()?,
            listener: Some(listener),
            conns: HashMap::new(),
            interests: HashMap::new(),
            next_token: 0,
            ctx,
            limits: Limits {
                max_body_bytes: config.max_body_bytes,
                ..Limits::default()
            },
            timeouts: Timeouts {
                read: config.read_timeout,
                write: config.write_timeout,
                idle: config.idle_timeout,
            },
            max_connections: config.max_connections,
            replay,
            cold,
            fabric,
            completions,
            inflight: HashMap::new(),
            pending_jobs: 0,
            draining: false,
            scratch: vec![0u8; 16 * 1024],
        })
    }

    /// Runs until shutdown is triggered and the drain completes.
    pub(crate) fn run(mut self) {
        let listener_fd = self.listener.as_ref().expect("listener").as_raw_fd();
        self.epoll
            .add(listener_fd, EPOLLIN, TOKEN_LISTENER)
            .expect("register listener");
        self.epoll
            .add(self.completions.wake.fd(), EPOLLIN, TOKEN_WAKE)
            .expect("register wake eventfd");

        let mut events = [EpollEvent { events: 0, data: 0 }; 256];
        loop {
            if self.ctx.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining && self.pending_jobs == 0 && self.conns.is_empty() {
                break;
            }
            let timeout = self.poll_timeout();
            let n = self.epoll.wait(&mut events, timeout);
            let now = Instant::now();
            for ev in &events[..n] {
                let token = ev.data;
                let mask = ev.events;
                match token {
                    TOKEN_LISTENER => self.accept_ready(now),
                    TOKEN_WAKE => self.completions.wake.drain(),
                    token => self.conn_event(token, mask, now),
                }
            }
            self.deliver_completions(now);
            self.reap_expired(now);
        }

        // Drained: every response delivered, every connection closed.
        self.replay.shutdown();
        self.cold.shutdown();
        self.fabric.shutdown();
    }

    /// Milliseconds until the nearest connection deadline (rounded up),
    /// capped so the shutdown flag is re-checked even without events.
    fn poll_timeout(&self) -> i32 {
        let now = Instant::now();
        let cap: u128 = if self.draining { 50 } else { 500 };
        let mut nearest = cap;
        for conn in self.conns.values() {
            if let Some((deadline, _)) = conn.deadline(&self.timeouts) {
                let ms = deadline.saturating_duration_since(now).as_millis() + 1;
                nearest = nearest.min(ms);
            }
        }
        nearest as i32
    }

    /// Accepts everything pending on the listener.
    fn accept_ready(&mut self, now: Instant) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((mut stream, _peer)) => {
                    if self.conns.len() >= self.max_connections {
                        // Over the cap: one-shot 503 into the (empty)
                        // send buffer and close.
                        softwatt_obs::count("serve.connections.refused", 1);
                        let _ = crate::http::write_response(
                            &mut stream,
                            &Response::overloaded(RETRY_AFTER_S),
                            true,
                        );
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let conn = Conn::new(stream, now);
                    if self.epoll.add(conn.fd(), EPOLLIN, token).is_err() {
                        continue;
                    }
                    self.conns.insert(token, conn);
                    self.interests.insert(token, EPOLLIN);
                    softwatt_obs::count("serve.connections.accepted", 1);
                    softwatt_obs::gauge_set("serve.connections.open", self.conns.len() as f64);
                    softwatt_obs::gauge_raise(
                        "serve.connections.open_max",
                        self.conns.len() as f64,
                    );
                }
                Err(_) => return, // WouldBlock or transient: next event retries
            }
        }
    }

    /// Handles one readiness event for a connection.
    fn conn_event(&mut self, token: u64, mask: u32, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.drop_conn(token);
            return;
        }
        if mask & EPOLLOUT != 0 && conn.has_pending_write() {
            match conn.try_write(now) {
                Ok(flushed) => {
                    if flushed && conn.close_after_flush {
                        self.drop_conn(token);
                        return;
                    }
                }
                Err(_) => {
                    self.drop_conn(token);
                    return;
                }
            }
        }
        if mask & EPOLLIN != 0 {
            let conn = self.conns.get_mut(&token).expect("conn exists");
            match conn.try_read(&mut self.scratch, now) {
                ReadOutcome::Broken => {
                    self.drop_conn(token);
                    return;
                }
                ReadOutcome::PeerClosed => {
                    // EOF. Anything owed (a busy compute job, buffered
                    // response bytes) still gets delivered — half-close
                    // peers read their answer; otherwise close now. A
                    // partial request truncated by EOF can never
                    // complete, so it closes too.
                    if !conn.busy && !conn.has_pending_write() {
                        self.drop_conn(token);
                        return;
                    }
                }
                ReadOutcome::Progress => {}
            }
            self.pump(token, now);
        }
        self.update_interest(token);
    }

    /// Parses and dispatches every complete request buffered on `token`,
    /// stopping at a compute dispatch (response ordering), a close, or
    /// buffer exhaustion; then flushes greedily.
    fn pump(&mut self, token: u64, now: Instant) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.busy || conn.close_after_flush {
                break;
            }
            let req = match conn.next_request(&self.limits) {
                Ok(Some(req)) => req,
                Ok(None) => break,
                Err(err) => {
                    let resp = match err {
                        ParseError::BodyTooLarge => {
                            Response::error(413, "body_too_large", "request body exceeds limit")
                        }
                        ParseError::Malformed(msg) => {
                            Response::error(400, "malformed_request", msg)
                        }
                    };
                    softwatt_obs::count(status_counter(resp.status), 1);
                    conn.push_response(&resp, true);
                    break;
                }
            };
            let route = Route::of(&req.target);
            softwatt_obs::count(route.counter(), 1);
            let started = Instant::now();
            let outcome = routes::dispatch(&self.ctx, route, &req);
            // After dispatch on purpose: `/admin/shutdown` flips the
            // flag mid-dispatch, and its own response must carry the
            // `Connection: close` it just caused.
            let close =
                req.wants_close() || self.draining || self.ctx.shutdown.load(Ordering::SeqCst);
            match outcome {
                Outcome::Ready(resp) => {
                    let us = started.elapsed().as_micros() as u64;
                    softwatt_obs::observe(route.latency(), us);
                    softwatt_obs::count(status_counter(resp.status), 1);
                    // Both reactor-thread lanes tally here; the pooled
                    // lanes tally in `deliver`.
                    for lane in [Lane::Inline, Lane::Surrogate] {
                        if resp.lane == Some(lane.label()) {
                            softwatt_obs::count(lane.served(), 1);
                            softwatt_obs::observe(lane.latency(), us);
                        }
                    }
                    let conn = self.conns.get_mut(&token).expect("conn exists");
                    conn.push_response(&resp, close);
                    if close {
                        break;
                    }
                }
                Outcome::Shared { lane, key } => {
                    self.submit_shared(token, lane, key, route, close, started);
                }
                Outcome::Work { lane, work } => {
                    self.submit_work(token, lane, work, route, close, started);
                }
            }
        }
        match self.conns.get_mut(&token).map(|c| c.try_write(now)) {
            Some(Ok(flushed)) => {
                if flushed {
                    if let Some(conn) = self.conns.get(&token) {
                        if conn.close_after_flush {
                            self.drop_conn(token);
                            return;
                        }
                    }
                }
            }
            Some(Err(_)) => {
                self.drop_conn(token);
                return;
            }
            None => return,
        }
        self.update_interest(token);
    }

    /// Marks `token` as awaiting a compute response.
    fn mark_pending(&mut self, token: u64, lane: Lane, route: Route, close: bool, since: Instant) {
        let conn = self.conns.get_mut(&token).expect("conn exists");
        conn.busy = true;
        conn.pending_since = Some(since);
        conn.pending_route = Some(route);
        conn.pending_lane = Some(lane);
        conn.pending_close = close;
    }

    /// Clears the pending state after a refused submission.
    fn unmark_pending(&mut self, token: u64) {
        let conn = self.conns.get_mut(&token).expect("conn exists");
        conn.busy = false;
        conn.pending_since = None;
        conn.pending_route = None;
        conn.pending_lane = None;
        conn.pending_close = false;
    }

    /// Submits (or attaches to) a deduped `/v1/run` job.
    fn submit_shared(
        &mut self,
        token: u64,
        lane: Lane,
        key: RunKey,
        route: Route,
        close: bool,
        started: Instant,
    ) {
        self.mark_pending(token, lane, route, close, started);
        if let Some(job) = self.inflight.get_mut(&key) {
            // The same key is already computing: attach, don't queue.
            job.waiters.push(token);
            softwatt_obs::count("serve.dedup_attached", 1);
            return;
        }
        let pool = match lane {
            Lane::Cold => &self.cold,
            _ => &self.replay,
        };
        let ctx = Arc::clone(&self.ctx);
        let completions = Arc::clone(&self.completions);
        let submitted = pool.try_submit(Box::new(move || {
            let resp = routes::run_response(&ctx, key, lane);
            completions.push(Done::Keyed { key, resp });
            if lane == Lane::Cold {
                // A fresh full simulation just landed: fold it into the
                // surrogate, after the response is already on its way.
                routes::maybe_refit_surrogate(&ctx);
            }
        }));
        match submitted {
            Ok(()) => {
                self.inflight.insert(
                    key,
                    InflightJob {
                        waiters: vec![token],
                    },
                );
                self.pending_jobs += 1;
            }
            Err(_) => self.bounce(token, lane, route, close, started),
        }
    }

    /// Submits a keyless compute job (batch, figure).
    fn submit_work(
        &mut self,
        token: u64,
        lane: Lane,
        work: Box<dyn FnOnce() -> Response + Send + 'static>,
        route: Route,
        close: bool,
        started: Instant,
    ) {
        self.mark_pending(token, lane, route, close, started);
        // Peer trace transfers get their own pool: a transfer only ever
        // computes locally, so it must never queue behind cold jobs that
        // may themselves be blocked fetching from a *remote* peer —
        // sharing the cold pool would deadlock two peered servers
        // fetching from each other (see `DESIGN.md` §14).
        let pool = if route == Route::Traces {
            &self.fabric
        } else {
            match lane {
                Lane::Cold => &self.cold,
                _ => &self.replay,
            }
        };
        let ctx = Arc::clone(&self.ctx);
        let completions = Arc::clone(&self.completions);
        let submitted = pool.try_submit(Box::new(move || {
            let resp = work();
            completions.push(Done::Direct { token, resp });
            if lane == Lane::Cold {
                // Cold batches/figures/full-tier runs also add training
                // data; fold them in once the response is queued.
                routes::maybe_refit_surrogate(&ctx);
            }
        }));
        match submitted {
            Ok(()) => self.pending_jobs += 1,
            Err(_) => self.bounce(token, lane, route, close, started),
        }
    }

    /// Answers a refused submission with the backpressure `503`. The
    /// connection stays usable (inline routes and other lanes are
    /// unaffected by one full queue).
    fn bounce(&mut self, token: u64, lane: Lane, route: Route, close: bool, started: Instant) {
        self.unmark_pending(token);
        let resp = Response::overloaded(RETRY_AFTER_S).with_lane(lane.label());
        softwatt_obs::observe(route.latency(), started.elapsed().as_micros() as u64);
        softwatt_obs::count(status_counter(resp.status), 1);
        let conn = self.conns.get_mut(&token).expect("conn exists");
        conn.push_response(&resp, close);
    }

    /// Drains the completion queue, fanning responses out to waiters.
    fn deliver_completions(&mut self, now: Instant) {
        for done in self.completions.drain() {
            match done {
                Done::Keyed { key, resp } => {
                    let Some(job) = self.inflight.remove(&key) else {
                        continue;
                    };
                    self.pending_jobs -= 1;
                    for (i, token) in job.waiters.iter().enumerate() {
                        if i + 1 == job.waiters.len() {
                            // Last waiter takes the original, no clone.
                            self.deliver(*token, resp, now);
                            break;
                        }
                        self.deliver(*token, resp.clone(), now);
                    }
                }
                Done::Direct { token, resp } => {
                    self.pending_jobs -= 1;
                    self.deliver(token, resp, now);
                }
            }
        }
    }

    /// Writes one compute response to its connection and resumes any
    /// pipelined requests behind it.
    fn deliver(&mut self, token: u64, resp: Response, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            // The connection died while its job ran (timeout reap,
            // transport error): the work still warmed the memo for
            // everyone else; the response just has nowhere to go.
            softwatt_obs::count("serve.responses.orphaned", 1);
            return;
        };
        let close = conn.pending_close || self.draining || conn.peer_closed;
        if let (Some(since), Some(route), Some(lane)) = (
            conn.pending_since.take(),
            conn.pending_route.take(),
            conn.pending_lane.take(),
        ) {
            let us = since.elapsed().as_micros() as u64;
            softwatt_obs::observe(route.latency(), us);
            softwatt_obs::observe(lane.latency(), us);
            softwatt_obs::count(lane.served(), 1);
        }
        softwatt_obs::count(status_counter(resp.status), 1);
        conn.busy = false;
        conn.pending_close = false;
        conn.push_response(&resp, close);
        self.pump(token, now);
    }

    /// Reaps connections whose state deadline has passed.
    fn reap_expired(&mut self, now: Instant) {
        let mut expired: Vec<(u64, Expiry)> = Vec::new();
        for (&token, conn) in &self.conns {
            if let Some((deadline, why)) = conn.deadline(&self.timeouts) {
                if now >= deadline {
                    expired.push((token, why));
                }
            }
        }
        for (token, why) in expired {
            match why {
                Expiry::Idle => {
                    softwatt_obs::count("serve.conns.reaped_idle", 1);
                }
                Expiry::PartialRequest => {
                    // Slow loris: the head stopped arriving. One 408,
                    // best-effort write, close — no worker was ever
                    // involved and none is now.
                    softwatt_obs::count("serve.conns.reaped_partial", 1);
                    if let Some(conn) = self.conns.get_mut(&token) {
                        let resp = Response::error(408, "timeout", "request not received in time");
                        softwatt_obs::count(status_counter(408), 1);
                        conn.push_response(&resp, true);
                        let _ = conn.try_write(now);
                    }
                }
                Expiry::WriteStalled => {
                    softwatt_obs::count("serve.conns.reaped_stalled", 1);
                }
            }
            self.drop_conn(token);
        }
    }

    /// Starts the drain: stop accepting, close idle connections, flag
    /// the rest to close behind their final response.
    fn begin_drain(&mut self) {
        self.draining = true;
        softwatt_obs::count("serve.shutdown.triggered", 1);
        if let Some(listener) = self.listener.take() {
            self.epoll.delete(listener.as_raw_fd());
            drop(listener);
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.busy && !c.has_pending_write())
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.drop_conn(token);
        }
        for conn in self.conns.values_mut() {
            if !conn.busy {
                conn.close_after_flush = true;
            }
        }
    }

    /// Re-registers a connection's epoll interest if its state changed.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let want = conn.interest();
        if self.interests.get(&token) != Some(&want)
            && self.epoll.modify(conn.fd(), want, token).is_ok()
        {
            self.interests.insert(token, want);
        }
    }

    /// Closes and forgets one connection.
    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.epoll.delete(conn.fd());
        }
        self.interests.remove(&token);
        softwatt_obs::gauge_set("serve.connections.open", self.conns.len() as f64);
    }
}

/// Static counter name for a status class (static names keep the obs
/// registry allocation-free).
pub(crate) fn status_counter(status: u16) -> &'static str {
    match status {
        200..=299 => "serve.responses.2xx",
        503 => "serve.responses.503",
        400..=499 => "serve.responses.4xx",
        _ => "serve.responses.5xx",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_counters_are_static() {
        assert_eq!(status_counter(200), "serve.responses.2xx");
        assert_eq!(status_counter(404), "serve.responses.4xx");
        assert_eq!(status_counter(408), "serve.responses.4xx");
        assert_eq!(status_counter(503), "serve.responses.503");
        assert_eq!(status_counter(500), "serve.responses.5xx");
    }
}
