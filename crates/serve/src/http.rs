//! Hand-rolled HTTP/1.1: incremental request parsing and response
//! writing.
//!
//! Deliberately small: request line + headers + `Content-Length` bodies,
//! keep-alive, and the handful of status codes the service emits. No
//! chunked transfer encoding, no multipart — the API is JSON-in/JSON-out.
//!
//! Parsing is *incremental by construction*: [`parse_request`] takes
//! whatever bytes have arrived so far and either produces a complete
//! request (plus how many bytes it consumed, so pipelined requests queue
//! up behind it in the same buffer), asks for more bytes, or rejects the
//! stream. The reactor's connection state machine calls it after every
//! nonblocking read, so a request split across arbitrary TCP segment
//! boundaries — or dribbled in one byte at a time — parses identically
//! to one delivered whole. Byte budgets on the head and body bound
//! memory per connection.

use std::io::{self, Write};

/// Per-request byte budgets.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers together.
    pub max_head_bytes: usize,
    /// Maximum body bytes (larger declared bodies are refused with `413`).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path, no authority).
    pub target: String,
    /// Whether the request declared HTTP/1.1 (governs keep-alive default).
    pub http11: bool,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection must close after this request: explicit
    /// `Connection: close`, or HTTP/1.0 without `keep-alive`.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => !self.http11,
        }
    }
}

/// Why a byte stream cannot become a request. Fatal for the connection:
/// after any of these the stream cannot be re-synchronized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The declared body exceeds [`Limits::max_body_bytes`] (send `413`).
    BodyTooLarge,
    /// Anything else unparsable, including a head that outgrows
    /// [`Limits::max_head_bytes`] without terminating (send `400`).
    Malformed(&'static str),
}

/// Tries to parse one request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a complete request is
/// available (`consumed` bytes of `buf` belong to it, leading blank
/// lines included — RFC 9112 §2.2 tolerates them); `Ok(None)` when the
/// bytes so far are a valid *prefix* and more must arrive; an error when
/// the stream can never become a request.
///
/// # Errors
///
/// [`ParseError`] as above; the connection must be closed after
/// reporting it.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Option<(Request, usize)>, ParseError> {
    // Skip optional blank lines before the request line.
    let mut start = 0;
    loop {
        if buf[start..].starts_with(b"\r\n") {
            start += 2;
        } else if buf[start..].starts_with(b"\n") {
            start += 1;
        } else {
            break;
        }
    }

    // Find the empty line terminating the head: scan line by line.
    let head = &buf[start..];
    let mut head_end = None; // offset past the terminating empty line
    let mut line_start = 0;
    for (i, &b) in head.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        let line = &head[line_start..i];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.is_empty() {
            head_end = Some(i + 1);
            break;
        }
        line_start = i + 1;
    }
    let Some(head_end) = head_end else {
        if head.len() > limits.max_head_bytes {
            return Err(ParseError::Malformed("request head too large"));
        }
        return Ok(None);
    };
    if head_end > limits.max_head_bytes {
        return Err(ParseError::Malformed("request head too large"));
    }

    let head_text = std::str::from_utf8(&head[..head_end])
        .map_err(|_| ParseError::Malformed("non-UTF-8 request head"))?;
    let mut lines = head_text
        .split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || !target.starts_with('/') {
        return Err(ParseError::Malformed("bad request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::Malformed("unsupported HTTP version")),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("bad header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        target,
        http11,
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(ParseError::Malformed("chunked bodies are not supported"));
    }
    let body_len = match req.header("content-length") {
        None => 0,
        Some(len) => {
            let len: usize = len
                .parse()
                .map_err(|_| ParseError::Malformed("bad content-length"))?;
            if len > limits.max_body_bytes {
                return Err(ParseError::BodyTooLarge);
            }
            len
        }
    };
    let body_start = start + head_end;
    if buf.len() < body_start + body_len {
        return Ok(None);
    }
    req.body = buf[body_start..body_start + body_len].to_vec();
    Ok(Some((req, body_start + body_len)))
}

/// One response: status, JSON body, the optional `Retry-After` the
/// backpressure path sets on `503`s, and the admission lane that served
/// it (surfaced as `X-Softwatt-Lane` so clients — and `loadgen`'s
/// per-class tallies — can tell a warm hit from a cold simulation).
/// Surrogate answers additionally carry an `X-Softwatt-Fidelity` label
/// and their model's measured `X-Softwatt-Error-Bound-Pct`; exact
/// answers leave both unset, so their wire bytes are unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
    /// Raw-bytes body for binary endpoints (the trace-transfer route).
    /// When set it replaces `body` on the wire and the `Content-Type`
    /// becomes `application/octet-stream`.
    pub binary: Option<Vec<u8>>,
    /// Seconds for a `Retry-After` header, if any.
    pub retry_after: Option<u32>,
    /// Lane label for the `X-Softwatt-Lane` header, if any.
    pub lane: Option<&'static str>,
    /// Fidelity label for the `X-Softwatt-Fidelity` header, if any.
    pub fidelity: Option<&'static str>,
    /// Error bound (percent) for `X-Softwatt-Error-Bound-Pct`, if any.
    pub error_bound_pct: Option<f64>,
    /// Where the answer's trace came from (`local` | `peer` | `sim`),
    /// surfaced as `X-Softwatt-Source` so cluster tests can audit the
    /// fabric without scraping metrics.
    pub source: Option<&'static str>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            binary: None,
            retry_after: None,
            lane: None,
            fidelity: None,
            error_bound_pct: None,
            source: None,
        }
    }

    /// A binary (`application/octet-stream`) response.
    pub fn binary(status: u16, bytes: Vec<u8>) -> Response {
        let mut r = Response::json(status, String::new());
        r.binary = Some(bytes);
        r
    }

    /// A structured JSON error: `{"error": {"code", "message"}}`.
    pub fn error(status: u16, code: &str, message: &str) -> Response {
        let mut body = String::from("{\"error\": {\"code\": ");
        push_json_string(&mut body, code);
        body.push_str(", \"message\": ");
        push_json_string(&mut body, message);
        body.push_str("}}");
        Response::json(status, body)
    }

    /// The overload response: `503` with a `Retry-After`.
    pub fn overloaded(retry_after_s: u32) -> Response {
        let mut r = Response::error(503, "overloaded", "request queue is full; retry shortly");
        r.retry_after = Some(retry_after_s);
        r
    }

    /// Tags the response with the lane that produced it.
    #[must_use]
    pub fn with_lane(mut self, lane: &'static str) -> Response {
        self.lane = Some(lane);
        self
    }

    /// Tags the response with its fidelity tier and (for surrogate
    /// answers) the model's measured error bound.
    #[must_use]
    pub fn with_fidelity(
        mut self,
        fidelity: &'static str,
        error_bound_pct: Option<f64>,
    ) -> Response {
        self.fidelity = Some(fidelity);
        self.error_bound_pct = error_bound_pct;
        self
    }

    /// Tags the response with its trace source (`local`/`peer`/`sim`).
    #[must_use]
    pub fn with_source(mut self, source: &'static str) -> Response {
        self.source = Some(source);
        self
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).expect("write to string");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `resp`, flagging the connection `close` or `keep-alive`. The
/// reactor writes into a `Vec<u8>` connection buffer (infallible); tests
/// write into sockets directly.
pub fn write_response<W: Write>(w: &mut W, resp: &Response, close: bool) -> io::Result<()> {
    let (content_type, payload): (&str, &[u8]) = match &resp.binary {
        Some(bytes) => ("application/octet-stream", bytes),
        None => ("application/json", resp.body.as_bytes()),
    };
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        payload.len()
    )?;
    if let Some(secs) = resp.retry_after {
        write!(w, "Retry-After: {secs}\r\n")?;
    }
    if let Some(lane) = resp.lane {
        write!(w, "X-Softwatt-Lane: {lane}\r\n")?;
    }
    if let Some(fidelity) = resp.fidelity {
        write!(w, "X-Softwatt-Fidelity: {fidelity}\r\n")?;
    }
    if let Some(bound) = resp.error_bound_pct {
        write!(w, "X-Softwatt-Error-Bound-Pct: {bound:?}\r\n")?;
    }
    if let Some(source) = resp.source {
        write!(w, "X-Softwatt-Source: {source}\r\n")?;
    }
    write!(
        w,
        "Connection: {}\r\n\r\n",
        if close { "close" } else { "keep-alive" }
    )?;
    w.write_all(payload)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Option<(Request, usize)>, ParseError> {
        parse_request(raw.as_bytes(), &Limits::default())
    }

    fn parse_complete(raw: &str) -> Request {
        let (req, consumed) = parse(raw).expect("parses").expect("complete");
        assert_eq!(consumed, raw.len(), "whole input consumed");
        req
    }

    #[test]
    fn parses_get_with_headers() {
        let req = parse_complete("GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: Close\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.wants_close());
    }

    #[test]
    fn parses_post_with_body_and_lf_lines() {
        let req = parse_complete("POST /v1/run HTTP/1.1\nContent-Length: 4\n\nabcd");
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse_complete("GET / HTTP/1.0\r\n\r\n");
        assert!(req.wants_close());
    }

    #[test]
    fn every_prefix_is_incomplete_never_an_error() {
        let raw = "POST /v1/run HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        for cut in 0..raw.len() {
            assert!(
                matches!(parse(&raw[..cut]), Ok(None)),
                "prefix of {cut} bytes must ask for more"
            );
        }
        assert!(parse(raw).unwrap().is_some());
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let (first, consumed) = parse(raw).unwrap().unwrap();
        assert_eq!(first.target, "/healthz");
        let rest = &raw[consumed..];
        let (second, consumed2) = parse(rest).unwrap().unwrap();
        assert_eq!(second.target, "/metrics");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn leading_blank_lines_are_consumed() {
        let raw = "\r\n\nGET / HTTP/1.1\r\n\r\n";
        let (req, consumed) = parse(raw).unwrap().unwrap();
        assert_eq!(req.target, "/");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse("garbage\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2.0\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn body_over_limit_is_too_large_before_the_body_arrives() {
        let limits = Limits {
            max_body_bytes: 3,
            ..Limits::default()
        };
        // The verdict lands as soon as the head declares the length —
        // no need to buffer (or even receive) the oversized payload.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n";
        let err = parse_request(raw, &limits).unwrap_err();
        assert_eq!(err, ParseError::BodyTooLarge);
    }

    #[test]
    fn unterminated_head_over_limit_is_malformed() {
        let limits = Limits {
            max_head_bytes: 32,
            ..Limits::default()
        };
        let raw = format!("GET /{} HTTP/1.1\r\n", "x".repeat(64));
        let err = parse_request(raw.as_bytes(), &limits).unwrap_err();
        assert!(matches!(err, ParseError::Malformed(_)));
        // Under the budget and unterminated: still just incomplete.
        assert!(matches!(parse_request(b"GET / HT", &limits), Ok(None)));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::overloaded(1).with_lane("cold"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("X-Softwatt-Lane: cold\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("\"code\": \"overloaded\""));
    }

    #[test]
    fn binary_responses_and_source_header() {
        let mut out = Vec::new();
        let resp = Response::binary(200, vec![0x00, 0xFF, 0x7F]).with_source("local");
        write_response(&mut out, &resp, false).unwrap();
        let split = out.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
        let head = String::from_utf8(out[..split].to_vec()).unwrap();
        assert!(head.contains("Content-Type: application/octet-stream\r\n"));
        assert!(head.contains("Content-Length: 3\r\n"));
        assert!(head.contains("X-Softwatt-Source: local\r\n"));
        assert_eq!(&out[split + 4..], &[0x00, 0xFF, 0x7F]);

        // JSON responses never grow the source header unless tagged.
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("X-Softwatt-Source"));
        assert!(text.contains("Content-Type: application/json\r\n"));
    }

    #[test]
    fn fidelity_headers_only_appear_when_set() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            &Response::json(200, "{}").with_lane("inline"),
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            !text.contains("X-Softwatt-Fidelity"),
            "exact responses must stay byte-identical: {text}"
        );

        let mut out = Vec::new();
        let resp = Response::json(200, "{}")
            .with_lane("surrogate")
            .with_fidelity("surrogate", Some(2.5));
        write_response(&mut out, &resp, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Softwatt-Lane: surrogate\r\n"));
        assert!(text.contains("X-Softwatt-Fidelity: surrogate\r\n"));
        assert!(text.contains("X-Softwatt-Error-Bound-Pct: 2.5\r\n"));
    }
}
