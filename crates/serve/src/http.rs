//! Hand-rolled HTTP/1.1: request parsing and response writing.
//!
//! Deliberately small: request line + headers + `Content-Length` bodies,
//! keep-alive, and the handful of status codes the service emits. No
//! chunked transfer encoding, no multipart — the API is JSON-in/JSON-out.
//! Every read goes through the caller's socket timeouts; byte budgets on
//! the head and body bound memory per connection.

use std::io::{self, BufRead, ErrorKind, Write};

/// Per-request byte budgets.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers together.
    pub max_head_bytes: usize,
    /// Maximum body bytes (larger declared bodies are refused with `413`).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path, no authority).
    pub target: String,
    /// Whether the request declared HTTP/1.1 (governs keep-alive default).
    pub http11: bool,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection must close after this request: explicit
    /// `Connection: close`, or HTTP/1.0 without `keep-alive`.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => !self.http11,
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before any request byte (peer closed an idle connection).
    Closed,
    /// The socket read timed out.
    Timeout,
    /// The declared body exceeds [`Limits::max_body_bytes`] (send `413`).
    BodyTooLarge,
    /// Anything else unparsable (send `400`).
    Malformed(&'static str),
    /// Transport error.
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => ReadError::Timeout,
            ErrorKind::UnexpectedEof => ReadError::Malformed("truncated request"),
            _ => ReadError::Io(e),
        }
    }
}

/// Reads one CRLF- (or LF-) terminated line, enforcing the remaining head
/// budget. Returns `None` on clean EOF at a line boundary.
fn read_line<R: BufRead>(r: &mut R, budget: &mut usize) -> Result<Option<String>, ReadError> {
    let mut raw = Vec::new();
    // Cap the read: take() guards against a header line that never ends.
    let mut limited = io::Read::take(&mut *r, *budget as u64 + 1);
    let n = limited.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None);
    }
    if n > *budget {
        return Err(ReadError::Malformed("request head too large"));
    }
    *budget -= n;
    if raw.last() != Some(&b'\n') {
        return Err(ReadError::Malformed("truncated request"));
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| ReadError::Malformed("non-UTF-8 request head"))
}

/// Reads one request off the wire. Blocks (subject to the stream's read
/// timeout) until a full request arrives.
pub fn read_request<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Request, ReadError> {
    let mut budget = limits.max_head_bytes;
    // Tolerate optional blank lines before the request line (RFC 9112 §2.2).
    let request_line = loop {
        match read_line(r, &mut budget)? {
            None => return Err(ReadError::Closed),
            Some(line) if line.is_empty() => continue,
            Some(line) => break line,
        }
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || !target.starts_with('/') {
        return Err(ReadError::Malformed("bad request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ReadError::Malformed("unsupported HTTP version")),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut budget)?.ok_or(ReadError::Malformed("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("bad header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        target,
        http11,
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(ReadError::Malformed("chunked bodies are not supported"));
    }
    if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| ReadError::Malformed("bad content-length"))?;
        if len > limits.max_body_bytes {
            return Err(ReadError::BodyTooLarge);
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        req.body = body;
    }
    Ok(req)
}

/// One response: status, JSON body, and the optional `Retry-After` the
/// backpressure path sets on `503`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
    /// Seconds for a `Retry-After` header, if any.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            retry_after: None,
        }
    }

    /// A structured JSON error: `{"error": {"code", "message"}}`.
    pub fn error(status: u16, code: &str, message: &str) -> Response {
        let mut body = String::from("{\"error\": {\"code\": ");
        push_json_string(&mut body, code);
        body.push_str(", \"message\": ");
        push_json_string(&mut body, message);
        body.push_str("}}");
        Response::json(status, body)
    }

    /// The overload response: `503` with a `Retry-After`.
    pub fn overloaded(retry_after_s: u32) -> Response {
        let mut r = Response::error(503, "overloaded", "request queue is full; retry shortly");
        r.retry_after = Some(retry_after_s);
        r
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).expect("write to string");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `resp`, flagging the connection `close` or `keep-alive`.
pub fn write_response<W: Write>(w: &mut W, resp: &Response, close: bool) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len()
    )?;
    if let Some(secs) = resp.retry_after {
        write!(w, "Retry-After: {secs}\r\n")?;
    }
    write!(
        w,
        "Connection: {}\r\n\r\n",
        if close { "close" } else { "keep-alive" }
    )?;
    w.write_all(resp.body.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), &Limits::default())
    }

    #[test]
    fn parses_get_with_headers() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: Close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.wants_close());
    }

    #[test]
    fn parses_post_with_body_and_lf_lines() {
        let req = parse("POST /v1/run HTTP/1.1\nContent-Length: 4\n\nabcd").unwrap();
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.wants_close());
    }

    #[test]
    fn rejects_garbage_and_eof() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
        assert!(matches!(
            parse("garbage\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2.0\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn body_over_limit_is_too_large() {
        let limits = Limits {
            max_body_bytes: 3,
            ..Limits::default()
        };
        let raw = "POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let err = read_request(&mut BufReader::new(raw.as_bytes()), &limits).unwrap_err();
        assert!(matches!(err, ReadError::BodyTooLarge));
    }

    #[test]
    fn head_over_limit_is_malformed() {
        let limits = Limits {
            max_head_bytes: 32,
            ..Limits::default()
        };
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        let err = read_request(&mut BufReader::new(raw.as_bytes()), &limits).unwrap_err();
        assert!(matches!(err, ReadError::Malformed(_)));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::overloaded(1), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("\"code\": \"overloaded\""));
    }
}
