//! A minimal JSON parser for request bodies.
//!
//! The emission side lives in `softwatt::json` (the simulator never needs
//! to *read* JSON); this is the inverse for the service's small request
//! schemas. Recursive descent with a depth limit; numbers land in `f64`,
//! which covers every field the API accepts.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted before the parser bails.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted keys; duplicates keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(bytes: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "body is not UTF-8".to_string())?;
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if let Some((i, _)) = p.chars.peek() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(value)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, ' ' | '\t' | '\n' | '\r'))) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}' at byte {i}, found '{c}'")),
            None => Err(format!("expected '{want}', found end of input")),
        }
    }

    fn literal(&mut self, rest: &str, value: Value) -> Result<Value, String> {
        for want in rest.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("document nests too deeply".into());
        }
        match self.chars.next() {
            Some((_, 'n')) => self.literal("ull", Value::Null),
            Some((_, 't')) => self.literal("rue", Value::Bool(true)),
            Some((_, 'f')) => self.literal("alse", Value::Bool(false)),
            Some((_, '"')) => self.string().map(Value::Str),
            Some((_, '[')) => self.array(depth),
            Some((_, '{')) => self.object(depth),
            Some((i, c)) if c == '-' || c.is_ascii_digit() => self.number(i),
            Some((i, c)) => Err(format!("unexpected '{c}' at byte {i}")),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self, start: usize) -> Result<Value, String> {
        let mut end = self.text.len();
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-') {
                self.chars.next();
            } else {
                end = i;
                break;
            }
        }
        let raw = &self.text[start..end];
        raw.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{raw}' at byte {start}"))
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let mut n = 0u16;
        for _ in 0..4 {
            let (i, c) = self.chars.next().ok_or("truncated \\u escape")?;
            let digit = c
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit '{c}' at byte {i}"))?;
            n = (n << 4) | digit as u16;
        }
        Ok(n)
    }

    /// Parses the rest of a string (the opening quote is already consumed).
    fn string(&mut self) -> Result<String, String> {
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'b')) => out.push('\u{0008}'),
                    Some((_, 'f')) => out.push('\u{000c}'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a \uXXXX low half must follow.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("bad low surrogate".into());
                            }
                            let code =
                                0x10000 + (((hi as u32 - 0xD800) << 10) | (lo as u32 - 0xDC00));
                            char::from_u32(code).ok_or("bad surrogate pair")?
                        } else {
                            char::from_u32(hi as u32).ok_or("lone surrogate")?
                        };
                        out.push(c);
                    }
                    Some((i, c)) => return Err(format!("bad escape '\\{c}' at byte {i}")),
                    None => return Err("unterminated escape".into()),
                },
                Some((i, c)) if (c as u32) < 0x20 => {
                    return Err(format!("raw control character at byte {i}"));
                }
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        let mut items = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, ']'))) {
            self.chars.next();
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => self.skip_ws(),
                Some((_, ']')) => return Ok(Value::Arr(items)),
                Some((i, c)) => {
                    return Err(format!("expected ',' or ']' at byte {i}, found '{c}'"))
                }
                None => return Err("unterminated array".into()),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        let mut map = BTreeMap::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, '}'))) {
            self.chars.next();
            return Ok(Value::Obj(map));
        }
        loop {
            self.expect('"')?;
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => self.skip_ws(),
                Some((_, '}')) => return Ok(Value::Obj(map)),
                Some((i, c)) => {
                    return Err(format!("expected ',' or '}}' at byte {i}, found '{c}'"))
                }
                None => return Err("unterminated object".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse(b"null").unwrap(), Value::Null);
        assert_eq!(parse(b"true").unwrap(), Value::Bool(true));
        assert_eq!(parse(b"false").unwrap(), Value::Bool(false));
        assert_eq!(parse(b"-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse(b"\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_document() {
        let doc =
            parse(br#" {"queries": [{"benchmark": "jess", "jobs": 2}], "x": null} "#).unwrap();
        let queries = doc.get("queries").and_then(Value::as_arr).unwrap();
        assert_eq!(queries.len(), 1);
        assert_eq!(
            queries[0].get("benchmark").and_then(Value::as_str),
            Some("jess")
        );
        assert_eq!(queries[0].get("jobs").and_then(Value::as_f64), Some(2.0));
        assert_eq!(doc.get("x"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = parse(br#""a\"b\\c\n\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\nA\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\" 1}",
            b"\"unterminated",
            b"nul",
            b"1 2",
            b"{\"a\": \x01}",
            b"\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "{:?} should fail", bad);
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let mut doc = String::new();
        for _ in 0..64 {
            doc.push('[');
        }
        for _ in 0..64 {
            doc.push(']');
        }
        assert!(parse(doc.as_bytes()).is_err());
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let doc = parse(br#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Value::as_f64), Some(2.0));
    }
}
