//! A minimal JSON parser for request bodies.
//!
//! The emission side lives in `softwatt::json` (the simulator never needs
//! to *read* JSON); this is the inverse for the service's small request
//! schemas. Recursive descent with a depth limit; numbers land in `f64`,
//! which covers every field the API accepts. [`spec_from_value`] decodes
//! the `softwatt-spec-v1` shape `softwatt::json::benchmark_spec` emits.

use std::collections::BTreeMap;

use softwatt::{BenchmarkSpec, IoBurst, PhaseSpec, SyscallRates};

/// Maximum nesting depth accepted before the parser bails.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted keys; duplicates keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(bytes: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "body is not UTF-8".to_string())?;
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if let Some((i, _)) = p.chars.peek() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(value)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, ' ' | '\t' | '\n' | '\r'))) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}' at byte {i}, found '{c}'")),
            None => Err(format!("expected '{want}', found end of input")),
        }
    }

    fn literal(&mut self, rest: &str, value: Value) -> Result<Value, String> {
        for want in rest.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("document nests too deeply".into());
        }
        match self.chars.next() {
            Some((_, 'n')) => self.literal("ull", Value::Null),
            Some((_, 't')) => self.literal("rue", Value::Bool(true)),
            Some((_, 'f')) => self.literal("alse", Value::Bool(false)),
            Some((_, '"')) => self.string().map(Value::Str),
            Some((_, '[')) => self.array(depth),
            Some((_, '{')) => self.object(depth),
            Some((i, c)) if c == '-' || c.is_ascii_digit() => self.number(i),
            Some((i, c)) => Err(format!("unexpected '{c}' at byte {i}")),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self, start: usize) -> Result<Value, String> {
        let mut end = self.text.len();
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-') {
                self.chars.next();
            } else {
                end = i;
                break;
            }
        }
        let raw = &self.text[start..end];
        raw.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{raw}' at byte {start}"))
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let mut n = 0u16;
        for _ in 0..4 {
            let (i, c) = self.chars.next().ok_or("truncated \\u escape")?;
            let digit = c
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit '{c}' at byte {i}"))?;
            n = (n << 4) | digit as u16;
        }
        Ok(n)
    }

    /// Parses the rest of a string (the opening quote is already consumed).
    fn string(&mut self) -> Result<String, String> {
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'b')) => out.push('\u{0008}'),
                    Some((_, 'f')) => out.push('\u{000c}'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a \uXXXX low half must follow.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("bad low surrogate".into());
                            }
                            let code =
                                0x10000 + (((hi as u32 - 0xD800) << 10) | (lo as u32 - 0xDC00));
                            char::from_u32(code).ok_or("bad surrogate pair")?
                        } else {
                            char::from_u32(hi as u32).ok_or("lone surrogate")?
                        };
                        out.push(c);
                    }
                    Some((i, c)) => return Err(format!("bad escape '\\{c}' at byte {i}")),
                    None => return Err("unterminated escape".into()),
                },
                Some((i, c)) if (c as u32) < 0x20 => {
                    return Err(format!("raw control character at byte {i}"));
                }
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        let mut items = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, ']'))) {
            self.chars.next();
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => self.skip_ws(),
                Some((_, ']')) => return Ok(Value::Arr(items)),
                Some((i, c)) => {
                    return Err(format!("expected ',' or ']' at byte {i}, found '{c}'"))
                }
                None => return Err("unterminated array".into()),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        let mut map = BTreeMap::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, '}'))) {
            self.chars.next();
            return Ok(Value::Obj(map));
        }
        loop {
            self.expect('"')?;
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => self.skip_ws(),
                Some((_, '}')) => return Ok(Value::Obj(map)),
                Some((i, c)) => {
                    return Err(format!("expected ',' or '}}' at byte {i}, found '{c}'"))
                }
                None => return Err("unterminated object".into()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// softwatt-spec-v1 decoding.
// ---------------------------------------------------------------------------

/// Checks an object's keys against the schema's allowed set — a typo'd or
/// unknown field is a hard error, not silently ignored, so a client that
/// misspells `dep_prob` finds out from the 400 instead of from a workload
/// that quietly used the default.
fn check_keys(what: &str, value: &Value, allowed: &[&str]) -> Result<(), String> {
    let Value::Obj(map) = value else {
        return Err(format!("{what} must be a JSON object"));
    };
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("{what}: unknown field '{key}'"));
        }
    }
    Ok(())
}

fn req_field<'a>(what: &str, value: &'a Value, field: &str) -> Result<&'a Value, String> {
    value
        .get(field)
        .ok_or_else(|| format!("{what}: missing field '{field}'"))
}

fn str_field(what: &str, value: &Value, field: &str) -> Result<String, String> {
    req_field(what, value, field)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what}: '{field}' must be a string"))
}

fn f64_field(what: &str, value: &Value, field: &str) -> Result<f64, String> {
    req_field(what, value, field)?
        .as_f64()
        .ok_or_else(|| format!("{what}: '{field}' must be a number"))
}

/// A non-negative integer field, bounded by `max` (covers every `u32`/`u64`
/// field of the spec: all are far below 2^53, so `f64` is exact).
fn uint_field(what: &str, value: &Value, field: &str, max: u64) -> Result<u64, String> {
    let n = f64_field(what, value, field)?;
    if !n.is_finite() || n.fract() != 0.0 || n < 0.0 || n > max as f64 {
        return Err(format!(
            "{what}: '{field}' must be an integer in 0..={max}, got {n}"
        ));
    }
    Ok(n as u64)
}

const SPEC_KEYS: [&str; 10] = [
    "schema",
    "name",
    "duration_s",
    "assumed_ipc",
    "class_files",
    "class_file_bytes",
    "startup_compute_frac",
    "cacheflush_per_kinstr",
    "phases",
    "io_bursts",
];

const PHASE_KEYS: [&str; 18] = [
    "name",
    "frac",
    "load",
    "store",
    "branch",
    "fp",
    "mul",
    "dep_prob",
    "branch_stability",
    "hot_bytes",
    "span_bytes",
    "hot_frac",
    "loop_len",
    "n_loops",
    "stay_per_loop",
    "syscalls",
    "io_bytes_mean",
    "fresh_per_kinstr",
];

const SYSCALL_KEYS: [&str; 6] = ["read", "write", "open", "xstat", "du_poll", "bsd"];

const BURST_KEYS: [&str; 3] = ["at_s", "files", "bytes_per_file"];

fn phase_from_value(index: usize, value: &Value) -> Result<PhaseSpec, String> {
    let what = format!("phases[{index}]");
    check_keys(&what, value, &PHASE_KEYS)?;
    let syscalls = {
        let what = format!("{what}.syscalls");
        let v = req_field(&what, value, "syscalls")?;
        check_keys(&what, v, &SYSCALL_KEYS)?;
        SyscallRates {
            read: f64_field(&what, v, "read")?,
            write: f64_field(&what, v, "write")?,
            open: f64_field(&what, v, "open")?,
            xstat: f64_field(&what, v, "xstat")?,
            du_poll: f64_field(&what, v, "du_poll")?,
            bsd: f64_field(&what, v, "bsd")?,
            io_bytes_mean: uint_field(&what, value, "io_bytes_mean", u32::MAX as u64)? as u32,
        }
    };
    Ok(PhaseSpec {
        name: str_field(&what, value, "name")?,
        frac: f64_field(&what, value, "frac")?,
        load: f64_field(&what, value, "load")?,
        store: f64_field(&what, value, "store")?,
        branch: f64_field(&what, value, "branch")?,
        fp: f64_field(&what, value, "fp")?,
        mul: f64_field(&what, value, "mul")?,
        dep_prob: f64_field(&what, value, "dep_prob")?,
        branch_stability: f64_field(&what, value, "branch_stability")?,
        hot_bytes: uint_field(&what, value, "hot_bytes", 1 << 53)?,
        span_bytes: uint_field(&what, value, "span_bytes", 1 << 53)?,
        hot_frac: f64_field(&what, value, "hot_frac")?,
        loop_len: uint_field(&what, value, "loop_len", u32::MAX as u64)? as u32,
        n_loops: uint_field(&what, value, "n_loops", u32::MAX as u64)? as u32,
        stay_per_loop: uint_field(&what, value, "stay_per_loop", u32::MAX as u64)? as u32,
        syscalls,
        fresh_per_kinstr: f64_field(&what, value, "fresh_per_kinstr")?,
    })
}

/// Decodes a `softwatt-spec-v1` object into a [`BenchmarkSpec`].
///
/// Strictly structural: types, required fields, integer-ness, and unknown
/// keys are checked here; *semantic* bounds (fractions in range, loop
/// structure non-degenerate, ...) are [`BenchmarkSpec::validate`]'s job,
/// which the suite's `register_spec` gate runs on every decoded spec. The
/// optional `"schema"` field, when present, must be `softwatt-spec-v1`.
///
/// # Errors
///
/// A human-readable description of the first structural problem.
pub fn spec_from_value(value: &Value) -> Result<BenchmarkSpec, String> {
    check_keys("spec", value, &SPEC_KEYS)?;
    if let Some(schema) = value.get("schema") {
        if schema.as_str() != Some("softwatt-spec-v1") {
            return Err("spec: 'schema' must be \"softwatt-spec-v1\"".into());
        }
    }
    let phases = req_field("spec", value, "phases")?
        .as_arr()
        .ok_or("spec: 'phases' must be an array")?
        .iter()
        .enumerate()
        .map(|(i, p)| phase_from_value(i, p))
        .collect::<Result<Vec<_>, _>>()?;
    let io_bursts = match value.get("io_bursts") {
        None => Vec::new(),
        Some(v) => v
            .as_arr()
            .ok_or("spec: 'io_bursts' must be an array")?
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let what = format!("io_bursts[{i}]");
                check_keys(&what, b, &BURST_KEYS)?;
                Ok(IoBurst {
                    at_s: f64_field(&what, b, "at_s")?,
                    files: uint_field(&what, b, "files", u32::MAX as u64)? as u32,
                    bytes_per_file: uint_field(&what, b, "bytes_per_file", u32::MAX as u64)? as u32,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    Ok(BenchmarkSpec {
        name: str_field("spec", value, "name")?,
        duration_s: f64_field("spec", value, "duration_s")?,
        assumed_ipc: f64_field("spec", value, "assumed_ipc")?,
        class_files: uint_field("spec", value, "class_files", u32::MAX as u64)? as u32,
        class_file_bytes: uint_field("spec", value, "class_file_bytes", u32::MAX as u64)? as u32,
        startup_compute_frac: f64_field("spec", value, "startup_compute_frac")?,
        cacheflush_per_kinstr: f64_field("spec", value, "cacheflush_per_kinstr")?,
        phases,
        io_bursts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse(b"null").unwrap(), Value::Null);
        assert_eq!(parse(b"true").unwrap(), Value::Bool(true));
        assert_eq!(parse(b"false").unwrap(), Value::Bool(false));
        assert_eq!(parse(b"-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse(b"\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_document() {
        let doc =
            parse(br#" {"queries": [{"benchmark": "jess", "jobs": 2}], "x": null} "#).unwrap();
        let queries = doc.get("queries").and_then(Value::as_arr).unwrap();
        assert_eq!(queries.len(), 1);
        assert_eq!(
            queries[0].get("benchmark").and_then(Value::as_str),
            Some("jess")
        );
        assert_eq!(queries[0].get("jobs").and_then(Value::as_f64), Some(2.0));
        assert_eq!(doc.get("x"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = parse(br#""a\"b\\c\n\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\nA\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\" 1}",
            b"\"unterminated",
            b"nul",
            b"1 2",
            b"{\"a\": \x01}",
            b"\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "{:?} should fail", bad);
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let mut doc = String::new();
        for _ in 0..64 {
            doc.push('[');
        }
        for _ in 0..64 {
            doc.push(']');
        }
        assert!(parse(doc.as_bytes()).is_err());
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let doc = parse(br#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn canned_specs_round_trip_through_the_codec() {
        for b in softwatt::Benchmark::ALL {
            let spec = b.spec();
            let emitted = softwatt::json::benchmark_spec(&spec);
            let doc = parse(emitted.as_bytes()).unwrap_or_else(|e| panic!("{b}: {e}"));
            let parsed = spec_from_value(&doc).unwrap_or_else(|e| panic!("{b}: {e}"));
            assert_eq!(parsed, spec, "{b}: emit -> parse must be lossless");
            assert_eq!(
                softwatt::json::benchmark_spec(&parsed),
                emitted,
                "{b}: emit -> parse -> emit must be byte-stable"
            );
        }
    }

    /// The spec file the README points users at stays honest: it parses
    /// through the production codec, survives validation, and re-emits
    /// byte-identical (so it IS canonical emitter output, not an
    /// approximation that drifts from the schema).
    #[test]
    fn example_spec_doc_is_canonical() {
        let doc_text = include_str!("../../../docs/example_spec.json");
        let doc = parse(doc_text.as_bytes()).expect("example doc parses");
        let spec = spec_from_value(&doc).expect("example doc decodes");
        spec.validate()
            .expect("example doc passes the admission gate");
        assert_eq!(
            format!("{}\n", softwatt::json::benchmark_spec(&spec)),
            doc_text,
            "docs/example_spec.json must be canonical emitter output"
        );
    }

    #[test]
    fn spec_decoding_rejects_structural_problems() {
        let valid = softwatt::json::benchmark_spec(&softwatt::Benchmark::Jess.spec());
        let doc = parse(valid.as_bytes()).unwrap();
        assert!(spec_from_value(&doc).is_ok());

        let cases: [(&str, &str); 6] = [
            (
                r#"{"schema": "softwatt-spec-v2", "name": "x", "duration_s": 1, "assumed_ipc": 1,
                    "class_files": 0, "class_file_bytes": 0, "startup_compute_frac": 0,
                    "cacheflush_per_kinstr": 0, "phases": []}"#,
                "'schema'",
            ),
            (
                r#"{"name": "x", "duration_s": 1, "assumed_ipc": 1, "class_files": 0,
                    "class_file_bytes": 0, "startup_compute_frac": 0,
                    "cacheflush_per_kinstr": 0, "phases": [], "bogus": 1}"#,
                "unknown field 'bogus'",
            ),
            (
                r#"{"name": "x", "duration_s": 1, "assumed_ipc": 1, "class_files": 0,
                    "class_file_bytes": 0, "startup_compute_frac": 0,
                    "cacheflush_per_kinstr": 0}"#,
                "missing field 'phases'",
            ),
            (
                r#"{"name": "x", "duration_s": 1, "assumed_ipc": 1, "class_files": 2.5,
                    "class_file_bytes": 0, "startup_compute_frac": 0,
                    "cacheflush_per_kinstr": 0, "phases": []}"#,
                "'class_files' must be an integer",
            ),
            (
                r#"{"name": "x", "duration_s": 1, "assumed_ipc": 1, "class_files": -3,
                    "class_file_bytes": 0, "startup_compute_frac": 0,
                    "cacheflush_per_kinstr": 0, "phases": []}"#,
                "'class_files' must be an integer",
            ),
            (
                r#"{"name": 7, "duration_s": 1, "assumed_ipc": 1, "class_files": 0,
                    "class_file_bytes": 0, "startup_compute_frac": 0,
                    "cacheflush_per_kinstr": 0, "phases": []}"#,
                "'name' must be a string",
            ),
        ];
        for (body, want) in cases {
            let doc = parse(body.as_bytes()).unwrap();
            let err = spec_from_value(&doc).unwrap_err();
            assert!(err.contains(want), "expected '{want}' in '{err}'");
        }
    }
}
