//! Request routing and handlers.
//!
//! Cheap routes (`/healthz`, `/metrics`, `/admin/shutdown`) run inline on
//! the connection thread so they stay responsive when the compute pool is
//! saturated. Simulation-backed routes (`/v1/run`, `/v1/batch`,
//! `/v1/figures/*`) are submitted to the bounded pool; a full queue turns
//! into `503` + `Retry-After` before any simulation work starts.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use softwatt::experiments::{DiskSetup, RunKey};
use softwatt::{Benchmark, CpuModel, ExperimentSuite};

use crate::http::{Request, Response};
use crate::json::{self, Value};
use crate::pool::Pool;

/// Seconds suggested to clients bounced by backpressure.
pub const RETRY_AFTER_S: u32 = 1;

/// The route a request resolved to, used for metrics labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /v1/run`
    Run,
    /// `POST /v1/batch`
    Batch,
    /// `GET /v1/figures/{name}`
    Figure,
    /// `POST /admin/shutdown`
    Shutdown,
    /// Anything else.
    Unknown,
}

impl Route {
    /// Classifies a request target (method checks come later: a wrong
    /// method on a known path is `405`, not `404`).
    pub fn of(target: &str) -> Route {
        let path = target.split('?').next().unwrap_or(target);
        match path {
            "/healthz" => Route::Healthz,
            "/metrics" => Route::Metrics,
            "/v1/run" => Route::Run,
            "/v1/batch" => Route::Batch,
            "/admin/shutdown" => Route::Shutdown,
            _ if path.starts_with("/v1/figures/") => Route::Figure,
            _ => Route::Unknown,
        }
    }

    /// Static counter name for requests on this route.
    pub fn counter(self) -> &'static str {
        match self {
            Route::Healthz => "serve.requests.healthz",
            Route::Metrics => "serve.requests.metrics",
            Route::Run => "serve.requests.run",
            Route::Batch => "serve.requests.batch",
            Route::Figure => "serve.requests.figure",
            Route::Shutdown => "serve.requests.shutdown",
            Route::Unknown => "serve.requests.unknown",
        }
    }

    /// Static histogram name for this route's latency (µs, log-2 binned).
    pub fn latency(self) -> &'static str {
        match self {
            Route::Healthz => "serve.latency_us.healthz",
            Route::Metrics => "serve.latency_us.metrics",
            Route::Run => "serve.latency_us.run",
            Route::Batch => "serve.latency_us.batch",
            Route::Figure => "serve.latency_us.figure",
            Route::Shutdown => "serve.latency_us.shutdown",
            Route::Unknown => "serve.latency_us.unknown",
        }
    }

    /// The only method this route answers (`None` for unknown paths).
    fn method(self) -> Option<&'static str> {
        match self {
            Route::Healthz | Route::Metrics | Route::Figure => Some("GET"),
            Route::Run | Route::Batch | Route::Shutdown => Some("POST"),
            Route::Unknown => None,
        }
    }
}

/// Everything a handler needs.
pub struct Ctx {
    /// The shared memoizing experiment suite.
    pub suite: Arc<ExperimentSuite>,
    /// The compute pool.
    pub pool: Arc<Pool>,
    /// Set by `/admin/shutdown` (and signals); the accept loop polls it.
    pub shutdown: Arc<AtomicBool>,
}

/// A one-shot rendezvous: the connection thread parks on it while the
/// pooled job computes the response.
struct Oneshot<T> {
    slot: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> Oneshot<T> {
    fn new() -> Arc<Oneshot<T>> {
        Arc::new(Oneshot {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn put(&self, value: T) {
        *self.slot.lock().expect("oneshot lock") = Some(value);
        self.ready.notify_one();
    }

    fn take(&self) -> T {
        let mut slot = self.slot.lock().expect("oneshot lock");
        loop {
            if let Some(value) = slot.take() {
                return value;
            }
            slot = self.ready.wait(slot).expect("oneshot lock");
        }
    }
}

/// Runs `work` on the pool and waits for its response; `503` on a full
/// queue. The connection thread blocks here, but the pool always drains
/// accepted jobs (even during shutdown), so the wait terminates.
fn pooled<F>(ctx: &Ctx, work: F) -> Response
where
    F: FnOnce() -> Response + Send + 'static,
{
    let oneshot = Oneshot::new();
    let tx = Arc::clone(&oneshot);
    match ctx.pool.try_submit(Box::new(move || tx.put(work()))) {
        Ok(()) => oneshot.take(),
        Err(_) => Response::overloaded(RETRY_AFTER_S),
    }
}

/// Dispatches one parsed request to its handler.
pub fn dispatch(ctx: &Ctx, route: Route, req: &Request) -> Response {
    if let Some(method) = route.method() {
        if req.method != method {
            return Response::error(
                405,
                "method_not_allowed",
                &format!("{} only answers {method}", req.target),
            );
        }
    }
    match route {
        Route::Healthz => Response::json(200, "{\"status\": \"ok\"}"),
        Route::Metrics => Response::json(200, softwatt_obs::to_json()),
        Route::Shutdown => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"status\": \"shutting down\"}")
        }
        Route::Run => match parse_run_key(&req.body, true) {
            Ok(key) => {
                let suite = Arc::clone(&ctx.suite);
                pooled(ctx, move || {
                    let bundle = suite.run_key(key);
                    Response::json(200, softwatt::json::run_bundle(key, &bundle))
                })
            }
            Err(resp) => *resp,
        },
        Route::Batch => match parse_batch(&req.body) {
            Ok((keys, jobs)) => {
                let suite = Arc::clone(&ctx.suite);
                pooled(ctx, move || {
                    suite.prewarm(&keys, jobs);
                    Response::json(200, render_batch(&suite, &keys))
                })
            }
            Err(resp) => *resp,
        },
        Route::Figure => {
            let path = req.target.split('?').next().unwrap_or(&req.target);
            let name = path["/v1/figures/".len()..].to_string();
            if !softwatt::json::FIGURES.contains(&name.as_str()) {
                return Response::error(
                    404,
                    "unknown_figure",
                    &format!("no figure '{name}'; see /v1/figures index in README"),
                );
            }
            let suite = Arc::clone(&ctx.suite);
            pooled(ctx, move || match softwatt::json::figure(&suite, &name) {
                Some(body) => Response::json(200, body),
                None => Response::error(500, "internal", "figure rendering failed"),
            })
        }
        Route::Unknown => Response::error(404, "not_found", "unknown path"),
    }
}

fn bad_request(code: &str, message: &str) -> Box<Response> {
    Box::new(Response::error(400, code, message))
}

/// Parses one `{"benchmark", "cpu"?, "disk"?}` query object into a
/// [`RunKey`]. `benchmark` is required iff `require_benchmark` (the batch
/// route reports position-specific errors itself).
fn key_from_value(value: &Value, require_benchmark: bool) -> Result<RunKey, Box<Response>> {
    if !matches!(value, Value::Obj(_)) {
        return Err(bad_request("bad_query", "each query must be a JSON object"));
    }
    let benchmark = match value.get("benchmark") {
        Some(v) => match v.as_str() {
            Some(name) => Benchmark::from_name(name).ok_or_else(|| {
                bad_request("unknown_benchmark", &format!("no benchmark '{name}'"))
            })?,
            None => return Err(bad_request("bad_query", "'benchmark' must be a string")),
        },
        None if require_benchmark => {
            return Err(bad_request("missing_field", "'benchmark' is required"));
        }
        None => return Err(bad_request("missing_field", "'benchmark' is required")),
    };
    let cpu = match value.get("cpu") {
        None => CpuModel::Mxs,
        Some(v) => match v.as_str() {
            Some(name) => CpuModel::from_name(name)
                .ok_or_else(|| bad_request("unknown_cpu", &format!("no CPU model '{name}'")))?,
            None => return Err(bad_request("bad_query", "'cpu' must be a string")),
        },
    };
    let disk = match value.get("disk") {
        None => DiskSetup::Conventional,
        Some(v) => match v.as_str() {
            Some(name) => DiskSetup::from_name(name)
                .ok_or_else(|| bad_request("unknown_disk", &format!("no disk setup '{name}'")))?,
            None => return Err(bad_request("bad_query", "'disk' must be a string")),
        },
    };
    Ok(RunKey {
        benchmark,
        cpu,
        disk,
    })
}

fn parse_body(body: &[u8]) -> Result<Value, Box<Response>> {
    json::parse(body).map_err(|e| bad_request("bad_json", &e))
}

fn parse_run_key(body: &[u8], require_benchmark: bool) -> Result<RunKey, Box<Response>> {
    key_from_value(&parse_body(body)?, require_benchmark)
}

/// Parses a batch body: `{"queries": [query...], "jobs"?: N}`. Returns the
/// queries in order (duplicates included — the suite memoizes) plus the
/// parallelism to prewarm with.
fn parse_batch(body: &[u8]) -> Result<(Vec<RunKey>, usize), Box<Response>> {
    let doc = parse_body(body)?;
    let queries = match doc.get("queries") {
        Some(v) => v
            .as_arr()
            .ok_or_else(|| bad_request("bad_query", "'queries' must be an array"))?,
        None => return Err(bad_request("missing_field", "'queries' is required")),
    };
    if queries.is_empty() {
        return Err(bad_request("bad_query", "'queries' must not be empty"));
    }
    let keys = queries
        .iter()
        .map(|q| key_from_value(q, true))
        .collect::<Result<Vec<_>, _>>()?;
    let jobs = match doc.get("jobs") {
        None => 1,
        Some(v) => match v.as_f64() {
            Some(n) if (1.0..=64.0).contains(&n) && n.fract() == 0.0 => n as usize,
            _ => {
                return Err(bad_request(
                    "bad_query",
                    "'jobs' must be an integer between 1 and 64",
                ));
            }
        },
    };
    Ok((keys, jobs))
}

/// Renders the batch response after the prewarm: one bundle per query (in
/// request order) plus the suite's dedup accounting.
fn render_batch(suite: &ExperimentSuite, keys: &[RunKey]) -> String {
    let unique: HashSet<RunKey> = keys.iter().copied().collect();
    let mut out = String::with_capacity(keys.len() * 512);
    out.push_str("{\"schema\": \"softwatt-batch-v1\", \"results\": [");
    for (i, &key) in keys.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let bundle = suite.run_key(key);
        out.push_str(&softwatt::json::run_bundle(key, &bundle));
    }
    out.push_str(&format!(
        "], \"unique_keys\": {}, \"runs_executed\": {}, \"replays_derived\": {}}}",
        unique.len(),
        suite.runs_executed(),
        suite.replays_derived()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_classification() {
        assert_eq!(Route::of("/healthz"), Route::Healthz);
        assert_eq!(Route::of("/metrics"), Route::Metrics);
        assert_eq!(Route::of("/v1/run"), Route::Run);
        assert_eq!(Route::of("/v1/batch"), Route::Batch);
        assert_eq!(Route::of("/v1/figures/fig6"), Route::Figure);
        assert_eq!(Route::of("/v1/figures/fig6?x=1"), Route::Figure);
        assert_eq!(Route::of("/admin/shutdown"), Route::Shutdown);
        assert_eq!(Route::of("/nope"), Route::Unknown);
        assert_eq!(Route::of("/v1/run?scale=2"), Route::Run);
    }

    #[test]
    fn run_key_parsing_defaults_and_errors() {
        let key = parse_run_key(br#"{"benchmark": "jess"}"#, true).unwrap();
        assert_eq!(key.benchmark, Benchmark::Jess);
        assert_eq!(key.cpu, CpuModel::Mxs);
        assert_eq!(key.disk, DiskSetup::Conventional);

        let key = parse_run_key(
            br#"{"benchmark": "db", "cpu": "mipsy", "disk": "sleep"}"#,
            true,
        )
        .unwrap();
        assert_eq!(key.benchmark, Benchmark::Db);
        assert_eq!(key.cpu, CpuModel::Mipsy);
        assert_eq!(key.disk, DiskSetup::SleepExt);

        for (body, code) in [
            (&br#"not json"#[..], "bad_json"),
            (br#"{}"#, "missing_field"),
            (br#"{"benchmark": "quake"}"#, "unknown_benchmark"),
            (br#"{"benchmark": "jess", "cpu": "arm"}"#, "unknown_cpu"),
            (br#"{"benchmark": "jess", "disk": "ssd"}"#, "unknown_disk"),
            (br#"{"benchmark": 7}"#, "bad_query"),
        ] {
            let resp = parse_run_key(body, true).unwrap_err();
            assert_eq!(resp.status, 400);
            assert!(resp.body.contains(code), "{} for {:?}", resp.body, body);
        }
    }

    #[test]
    fn batch_parsing() {
        let (keys, jobs) = parse_batch(
            br#"{"queries": [{"benchmark": "jess"}, {"benchmark": "jess"}], "jobs": 2}"#,
        )
        .unwrap();
        assert_eq!(keys.len(), 2, "duplicates preserved for the response");
        assert_eq!(jobs, 2);

        for body in [
            &br#"{"queries": []}"#[..],
            br#"{"jobs": 2}"#,
            br#"{"queries": [{}]}"#,
            br#"{"queries": [{"benchmark": "jess"}], "jobs": 0}"#,
            br#"{"queries": [{"benchmark": "jess"}], "jobs": 1.5}"#,
            br#"{"queries": "jess"}"#,
        ] {
            assert!(parse_batch(body).is_err(), "{:?} should fail", body);
        }
    }
}
