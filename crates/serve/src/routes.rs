//! Request routing, handlers, and cost-aware admission classification.
//!
//! Every request is classified *before* any queue is involved, using
//! what the suite's three-tier lookup (memo → trace store → full sim)
//! already knows about its cost:
//!
//! - **surrogate** — the request opted into `fidelity=surrogate` and the
//!   calibrated counter model covers its cell: a handful of dot products,
//!   rendered on the reactor thread like a memo hit. The cheapest class;
//!   an uncovered cell falls through to the exact classification below.
//! - **inline** — the answer is already memoized (or is trivially cheap:
//!   `/healthz`, `/metrics`, `/admin/shutdown`, parse errors). Rendered
//!   on the reactor thread in microseconds; no queue, no worker.
//! - **replay** — the (benchmark, CPU) trace exists, so the bundle is a
//!   cheap trace replay. Routed to the replay worker pool.
//! - **cold** — no trace anywhere: a full multi-second simulation.
//!   Routed to the cold lane's own bounded pool, so a cold grid can
//!   saturate *its* queue (`503` + `Retry-After`) without warm or replay
//!   traffic ever queuing behind it.
//!
//! `/v1/run` misses additionally dedup at the HTTP layer: concurrent
//! requests for the same key attach to one in-flight job (see
//! `reactor.rs`) and all receive the same rendered response.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};

use softwatt::experiments::{DiskSetup, RunKey, WorkloadKey};
use softwatt::{Benchmark, CpuModel, ExperimentSuite, Fidelity, RunOutcome};

use crate::http::{Request, Response};
use crate::json::{self, Value};

/// Seconds suggested to clients bounced by backpressure.
pub const RETRY_AFTER_S: u32 = 1;

/// The admission lane a request is classified into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Surrogate estimate, answered on the reactor thread.
    Surrogate,
    /// Answered on the reactor thread (memo hit or trivial route).
    Inline,
    /// Trace replay on the replay worker pool.
    Replay,
    /// Full simulation on the cold worker pool.
    Cold,
}

impl Lane {
    /// The label used in metrics and the `X-Softwatt-Lane` header.
    pub fn label(self) -> &'static str {
        match self {
            Lane::Surrogate => "surrogate",
            Lane::Inline => "inline",
            Lane::Replay => "replay",
            Lane::Cold => "cold",
        }
    }

    /// Counter: requests served on this lane.
    pub fn served(self) -> &'static str {
        match self {
            Lane::Surrogate => "serve.lane.surrogate.served",
            Lane::Inline => "serve.lane.inline.served",
            Lane::Replay => "serve.lane.replay.served",
            Lane::Cold => "serve.lane.cold.served",
        }
    }

    /// Histogram: admission-to-response latency (µs) on this lane.
    pub fn latency(self) -> &'static str {
        match self {
            Lane::Surrogate => "serve.lane.surrogate.latency_us",
            Lane::Inline => "serve.lane.inline.latency_us",
            Lane::Replay => "serve.lane.replay.latency_us",
            Lane::Cold => "serve.lane.cold.latency_us",
        }
    }
}

/// The route a request resolved to, used for metrics labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /v1/run`
    Run,
    /// `POST /v1/batch`
    Batch,
    /// `GET /v1/figures/{name}`
    Figure,
    /// `GET /v1/traces/{hash}` — raw `swtrace-v1` bytes for the fabric's
    /// peer-to-peer trace transfer.
    Traces,
    /// `POST /admin/shutdown`
    Shutdown,
    /// Anything else.
    Unknown,
}

impl Route {
    /// Classifies a request target (method checks come later: a wrong
    /// method on a known path is `405`, not `404`).
    pub fn of(target: &str) -> Route {
        let path = target.split('?').next().unwrap_or(target);
        match path {
            "/healthz" => Route::Healthz,
            "/metrics" => Route::Metrics,
            "/v1/run" => Route::Run,
            "/v1/batch" => Route::Batch,
            "/admin/shutdown" => Route::Shutdown,
            _ if path.starts_with("/v1/figures/") => Route::Figure,
            _ if path.starts_with("/v1/traces/") => Route::Traces,
            _ => Route::Unknown,
        }
    }

    /// Static counter name for requests on this route.
    pub fn counter(self) -> &'static str {
        match self {
            Route::Healthz => "serve.requests.healthz",
            Route::Metrics => "serve.requests.metrics",
            Route::Run => "serve.requests.run",
            Route::Batch => "serve.requests.batch",
            Route::Figure => "serve.requests.figure",
            Route::Traces => "serve.requests.traces",
            Route::Shutdown => "serve.requests.shutdown",
            Route::Unknown => "serve.requests.unknown",
        }
    }

    /// Static histogram name for this route's latency (µs, log-2 binned).
    pub fn latency(self) -> &'static str {
        match self {
            Route::Healthz => "serve.latency_us.healthz",
            Route::Metrics => "serve.latency_us.metrics",
            Route::Run => "serve.latency_us.run",
            Route::Batch => "serve.latency_us.batch",
            Route::Figure => "serve.latency_us.figure",
            Route::Traces => "serve.latency_us.traces",
            Route::Shutdown => "serve.latency_us.shutdown",
            Route::Unknown => "serve.latency_us.unknown",
        }
    }

    /// The only method this route answers (`None` for unknown paths).
    fn method(self) -> Option<&'static str> {
        match self {
            Route::Healthz | Route::Metrics | Route::Figure | Route::Traces => Some("GET"),
            Route::Run | Route::Batch | Route::Shutdown => Some("POST"),
            Route::Unknown => None,
        }
    }
}

/// Everything a handler needs.
pub struct Ctx {
    /// The shared memoizing experiment suite.
    pub suite: Arc<ExperimentSuite>,
    /// Set by `/admin/shutdown` (and signals); the reactor polls it.
    pub shutdown: Arc<AtomicBool>,
    /// Debounces background surrogate refits: set when a cold simulation
    /// lands while a model is installed, cleared when the refit job runs.
    /// At most one refit is queued at a time, however many cold runs
    /// complete while it waits.
    pub refit_pending: AtomicBool,
    /// Rendered `/v1/run` bodies by key. Bundles are immutable once
    /// memoized, so the rendered JSON never invalidates — and a warm hit
    /// on the reactor thread becomes a lock + memcpy instead of
    /// re-formatting dozens of floats per request.
    rendered: Mutex<HashMap<RunKey, Arc<String>>>,
    /// Rendered figure/table bodies by name. Figures read only memoized
    /// bundles, so a render never invalidates; after the first (possibly
    /// cold) render every later request is answered inline on the
    /// reactor. Arc-wrapped so admission can hand the cache to the
    /// worker closure that fills it.
    figures: Arc<Mutex<HashMap<String, Arc<String>>>>,
}

impl Ctx {
    /// Wraps the shared suite and shutdown flag.
    pub fn new(suite: Arc<ExperimentSuite>, shutdown: Arc<AtomicBool>) -> Ctx {
        Ctx {
            suite,
            shutdown,
            refit_pending: AtomicBool::new(false),
            rendered: Mutex::new(HashMap::new()),
            figures: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The cached rendered body for figure `name`, if any.
    fn figure_body(&self, name: &str) -> Option<Arc<String>> {
        let cache = self.figures.lock().expect("figure cache lock");
        cache.get(name).map(Arc::clone)
    }

    /// The cached rendered body for `key`, rendering (and caching) it
    /// from `bundle` on first touch.
    fn run_body(&self, key: RunKey, bundle: &softwatt::experiments::RunBundle) -> Arc<String> {
        let mut cache = self.rendered.lock().expect("render cache lock");
        if let Some(body) = cache.get(&key) {
            return Arc::clone(body);
        }
        let body = Arc::new(softwatt::json::run_bundle(key, bundle));
        cache.insert(key, Arc::clone(&body));
        body
    }
}

/// What admission decided for one request.
pub enum Outcome {
    /// Answered now, on the reactor thread.
    Ready(Response),
    /// A `/v1/run` memo miss: compute `key` on `lane`, deduplicating
    /// concurrent requests for the same key into one job.
    Shared {
        /// The lane the job runs on.
        lane: Lane,
        /// The run key; doubles as the dedup identity.
        key: RunKey,
    },
    /// Keyless compute (batch, figures): run `work` on `lane`.
    Work {
        /// The lane the job runs on.
        lane: Lane,
        /// Produces the response on a worker thread.
        work: Box<dyn FnOnce() -> Response + Send + 'static>,
    },
}

/// Renders one `/v1/run` answer; workers call this for deduped jobs,
/// admission calls it inline for memo hits. Both go through the render
/// cache, so a worker's first render pre-pays every later inline hit.
pub fn run_response(ctx: &Ctx, key: RunKey, lane: Lane) -> Response {
    let bundle = ctx.suite.run_key(key);
    let resp = Response::json(200, ctx.run_body(key, &bundle).as_str()).with_lane(lane.label());
    match ctx.suite.trace_source(key.workload, key.cpu) {
        Some(source) => resp.with_source(source),
        None => resp,
    }
}

/// Background calibration: a cold-pool worker calls this after its full
/// simulation's response is queued, folding the fresh run into the
/// surrogate model. A no-op unless a model is already installed (the
/// `--surrogate` boot opt-in), and debounced through
/// [`Ctx::refit_pending`] so a burst of cold completions triggers one
/// refit, not a pile-up — the refit reads *everything* memoized at the
/// moment it runs, so skipped triggers lose nothing that had landed by
/// then.
pub(crate) fn maybe_refit_surrogate(ctx: &Ctx) {
    if ctx.suite.surrogate_model().is_none() {
        return;
    }
    if ctx
        .refit_pending
        .swap(true, std::sync::atomic::Ordering::AcqRel)
    {
        return;
    }
    softwatt_obs::count("serve.surrogate.refits", 1);
    ctx.suite.refit_surrogate();
    ctx.refit_pending
        .store(false, std::sync::atomic::Ordering::Release);
}

/// Whether every (workload, CPU) pair in `keys` already has a trace —
/// i.e. the whole set derives by replay without one full simulation.
fn all_traces_ready(suite: &ExperimentSuite, keys: &[RunKey]) -> bool {
    let pairs: HashSet<(WorkloadKey, CpuModel)> =
        keys.iter().map(|k| (k.workload, k.cpu)).collect();
    pairs.iter().all(|&(w, c)| suite.trace_ready(w, c))
}

/// Dispatches one parsed request: answers it inline or classifies it
/// onto a compute lane.
pub fn dispatch(ctx: &Ctx, route: Route, req: &Request) -> Outcome {
    if let Some(method) = route.method() {
        if req.method != method {
            return Outcome::Ready(Response::error(
                405,
                "method_not_allowed",
                &format!("{} only answers {method}", req.target),
            ));
        }
    }
    match route {
        Route::Healthz => Outcome::Ready(Response::json(200, "{\"status\": \"ok\"}")),
        Route::Metrics => Outcome::Ready(Response::json(200, softwatt_obs::to_json())),
        Route::Shutdown => {
            ctx.shutdown
                .store(true, std::sync::atomic::Ordering::SeqCst);
            Outcome::Ready(Response::json(200, "{\"status\": \"shutting down\"}"))
        }
        Route::Run => match parse_run_query(&ctx.suite, &req.body) {
            Ok((key, fidelity)) => {
                // Surrogate tier: a covered cell is a handful of dot
                // products, rendered right here on the reactor thread.
                // The body is rendered fresh each time (never cached in
                // `rendered`): a background refit can replace the model,
                // and a cached estimate would pin the stale fit.
                if fidelity == Fidelity::Surrogate {
                    if let Some(est) = ctx.suite.surrogate_estimate(key) {
                        return Outcome::Ready(
                            Response::json(200, softwatt::json::surrogate_estimate(key, &est))
                                .with_lane(Lane::Surrogate.label())
                                .with_fidelity(fidelity.name(), Some(est.error_bound_pct)),
                        );
                    }
                    // No calibrated model, or a cell outside it: fall
                    // through to the exact classification below. The
                    // answer outranks the requested tier.
                }
                // Warm hit: the bundle is memoized, render it right here
                // on the reactor thread — no queue, no worker, no lock
                // beyond the memo peek and the render-cache lookup.
                // Correct at every fidelity: replay is bit-identical to
                // full simulation, so the memo satisfies `full` too.
                if let Some(bundle) = ctx.suite.bundle_if_ready(key) {
                    let resp = Response::json(200, ctx.run_body(key, &bundle).as_str())
                        .with_lane(Lane::Inline.label());
                    let resp = match ctx.suite.trace_source(key.workload, key.cpu) {
                        Some(source) => resp.with_source(source),
                        None => resp,
                    };
                    return Outcome::Ready(resp);
                }
                // An explicit `full` bypasses trace replay: the miss
                // always runs a fresh simulation on the cold pool. No
                // dedup with replay-tier jobs for the same key — the
                // client asked for the expensive path specifically.
                if fidelity == Fidelity::Full {
                    let suite = Arc::clone(&ctx.suite);
                    return Outcome::Work {
                        lane: Lane::Cold,
                        work: Box::new(move || match suite.run_at(key, Fidelity::Full) {
                            RunOutcome::Exact(bundle) => {
                                Response::json(200, softwatt::json::run_bundle(key, &bundle))
                                    .with_lane(Lane::Cold.label())
                                    .with_fidelity(Fidelity::Full.name(), None)
                            }
                            RunOutcome::Estimate(_) => Response::error(
                                500,
                                "internal",
                                "full fidelity returned an estimate",
                            ),
                        }),
                    };
                }
                let lane = if ctx.suite.trace_ready(key.workload, key.cpu) {
                    Lane::Replay
                } else {
                    Lane::Cold
                };
                Outcome::Shared { lane, key }
            }
            Err(resp) => Outcome::Ready(*resp),
        },
        Route::Batch => match parse_batch(&ctx.suite, &req.body) {
            Ok((keys, jobs)) => {
                let lane = if all_traces_ready(&ctx.suite, &keys) {
                    Lane::Replay
                } else {
                    Lane::Cold
                };
                let suite = Arc::clone(&ctx.suite);
                Outcome::Work {
                    lane,
                    work: Box::new(move || {
                        suite.prewarm(&keys, jobs);
                        Response::json(200, render_batch(&suite, &keys)).with_lane(lane.label())
                    }),
                }
            }
            Err(resp) => Outcome::Ready(*resp),
        },
        Route::Figure => {
            let path = req.target.split('?').next().unwrap_or(&req.target);
            let name = path["/v1/figures/".len()..].to_string();
            if !softwatt::json::FIGURES.contains(&name.as_str()) {
                return Outcome::Ready(Response::error(
                    404,
                    "unknown_figure",
                    &format!("no figure '{name}'; see /v1/figures index in README"),
                ));
            }
            if let Some(body) = ctx.figure_body(&name) {
                return Outcome::Ready(
                    Response::json(200, body.as_str()).with_lane(Lane::Inline.label()),
                );
            }
            // First render of this figure: replay-cheap exactly when the
            // whole grid's traces are, cold otherwise. The render is
            // cached by name, so one worker render pre-pays every later
            // inline hit — a node that never touches the full grid (a
            // cluster member owning only part of the ring) must not
            // cold-admit the same figure forever.
            let lane = if all_traces_ready(&ctx.suite, &ctx.suite.paper_grid()) {
                Lane::Replay
            } else {
                Lane::Cold
            };
            let suite = Arc::clone(&ctx.suite);
            let cache = Arc::clone(&ctx.figures);
            Outcome::Work {
                lane,
                work: Box::new(move || match softwatt::json::figure(&suite, &name) {
                    Some(body) => {
                        let body = Arc::new(body);
                        cache
                            .lock()
                            .expect("figure cache lock")
                            .insert(name, Arc::clone(&body));
                        Response::json(200, body.as_str()).with_lane(lane.label())
                    }
                    None => Response::error(500, "internal", "figure rendering failed"),
                }),
            }
        }
        Route::Traces => trace_transfer(ctx, req),
        Route::Unknown => Outcome::Ready(Response::error(404, "not_found", "unknown path")),
    }
}

/// `GET /v1/traces/{hash:016x}?workload={label}&cpu={name}` — the fabric's
/// peer-to-peer trace transfer. Returns the raw `swtrace-v1` bytes
/// (trailing checksum included; the fetching peer re-verifies before
/// trusting them). The URL hash must match the key this server derives
/// for the named (workload, CPU) pair — a mismatch means config drift
/// between peers, answered `404` so the fetcher simulates locally rather
/// than caching a wrong trace. Serving resolves through local tiers only
/// (memo → store → capture), never a peer fetch of its own, bounding
/// misdirected keys to one hop.
fn trace_transfer(ctx: &Ctx, req: &Request) -> Outcome {
    let (path, query) = match req.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.target.as_str(), ""),
    };
    let hex = &path["/v1/traces/".len()..];
    let hash = match (hex.len(), u64::from_str_radix(hex, 16)) {
        (16, Ok(hash)) => hash,
        _ => {
            return Outcome::Ready(Response::error(
                400,
                "bad_trace_key",
                "trace key must be 16 hex digits",
            ));
        }
    };
    let mut workload_label = None;
    let mut cpu_name = None;
    for pair in query.split('&') {
        match pair.split_once('=') {
            Some(("workload", v)) => workload_label = Some(v),
            Some(("cpu", v)) => cpu_name = Some(v),
            _ => {}
        }
    }
    let (Some(label), Some(cpu_name)) = (workload_label, cpu_name) else {
        return Outcome::Ready(Response::error(
            400,
            "bad_query",
            "'workload' and 'cpu' query parameters are required",
        ));
    };
    let Some(workload) = WorkloadKey::from_label(label) else {
        return Outcome::Ready(Response::error(
            404,
            "unknown_workload",
            &format!("no workload '{label}'"),
        ));
    };
    if matches!(workload, WorkloadKey::Spec(_)) && ctx.suite.spec_for(workload).is_none() {
        return Outcome::Ready(Response::error(
            404,
            "unknown_workload",
            &format!("spec '{label}' is not registered on this node"),
        ));
    }
    let Some(cpu) = CpuModel::from_name(cpu_name) else {
        return Outcome::Ready(Response::error(
            404,
            "unknown_cpu",
            &format!("no CPU model '{cpu_name}'"),
        ));
    };
    let key = ctx.suite.trace_key(workload, cpu);
    if key.hash() != hash {
        return Outcome::Ready(Response::error(
            404,
            "trace_key_mismatch",
            "this node derives a different trace key for that pair (config drift?)",
        ));
    }
    // A present trace is a cheap encode (replay lane); a miss captures
    // by full simulation and belongs on the cold lane with the other
    // multi-second work.
    let lane = if ctx.suite.trace_ready(workload, cpu) {
        Lane::Replay
    } else {
        Lane::Cold
    };
    let suite = Arc::clone(&ctx.suite);
    Outcome::Work {
        lane,
        work: Box::new(move || {
            let bytes = suite.trace_share_bytes(workload, cpu);
            let resp = Response::binary(200, bytes).with_lane(lane.label());
            match suite.trace_source(workload, cpu) {
                Some(source) => resp.with_source(source),
                None => resp,
            }
        }),
    }
}

fn bad_request(code: &str, message: &str) -> Box<Response> {
    Box::new(Response::error(400, code, message))
}

/// Resolves the workload half of a query object. Exactly one of:
///
/// - `"benchmark": "<name>"` — one of the six canned paper benchmarks
///   (the pre-spec API, bytes unchanged);
/// - `"spec": {softwatt-spec-v1 object}` — an inline user spec, decoded
///   strictly, validated, and registered with the suite (so the returned
///   key is always simulatable without panicking);
/// - `"workload": "spec:<hash>"` — a spec registered by an earlier
///   request in this process, or a canned benchmark name.
fn workload_from_value(
    suite: &ExperimentSuite,
    value: &Value,
) -> Result<WorkloadKey, Box<Response>> {
    let present = ["benchmark", "spec", "workload"]
        .iter()
        .filter(|f| value.get(f).is_some())
        .count();
    if present > 1 {
        return Err(bad_request(
            "bad_query",
            "give exactly one of 'benchmark', 'spec', or 'workload'",
        ));
    }
    if let Some(v) = value.get("benchmark") {
        let name = v
            .as_str()
            .ok_or_else(|| bad_request("bad_query", "'benchmark' must be a string"))?;
        let benchmark = Benchmark::from_name(name)
            .ok_or_else(|| bad_request("unknown_benchmark", &format!("no benchmark '{name}'")))?;
        return Ok(WorkloadKey::Canned(benchmark));
    }
    if let Some(v) = value.get("spec") {
        let spec = json::spec_from_value(v).map_err(|e| bad_request("invalid_spec", &e))?;
        return suite
            .register_spec(spec)
            .map_err(|e| bad_request("invalid_spec", &e));
    }
    if let Some(v) = value.get("workload") {
        let label = v
            .as_str()
            .ok_or_else(|| bad_request("bad_query", "'workload' must be a string"))?;
        let workload = WorkloadKey::from_label(label)
            .ok_or_else(|| bad_request("unknown_workload", &format!("no workload '{label}'")))?;
        if matches!(workload, WorkloadKey::Spec(_)) && suite.spec_for(workload).is_none() {
            return Err(bad_request(
                "unknown_workload",
                &format!("spec '{label}' is not registered; post it inline via 'spec' first"),
            ));
        }
        return Ok(workload);
    }
    Err(bad_request(
        "missing_field",
        "one of 'benchmark', 'spec', or 'workload' is required",
    ))
}

/// Parses one `{"benchmark" | "spec" | "workload", "cpu"?, "disk"?}` query
/// object into a [`RunKey`].
fn key_from_value(suite: &ExperimentSuite, value: &Value) -> Result<RunKey, Box<Response>> {
    if !matches!(value, Value::Obj(_)) {
        return Err(bad_request("bad_query", "each query must be a JSON object"));
    }
    let workload = workload_from_value(suite, value)?;
    let cpu = match value.get("cpu") {
        None => CpuModel::Mxs,
        Some(v) => match v.as_str() {
            Some(name) => CpuModel::from_name(name)
                .ok_or_else(|| bad_request("unknown_cpu", &format!("no CPU model '{name}'")))?,
            None => return Err(bad_request("bad_query", "'cpu' must be a string")),
        },
    };
    let disk = match value.get("disk") {
        None => DiskSetup::Conventional,
        Some(v) => match v.as_str() {
            Some(name) => DiskSetup::from_name(name)
                .ok_or_else(|| bad_request("unknown_disk", &format!("no disk setup '{name}'")))?,
            None => return Err(bad_request("bad_query", "'disk' must be a string")),
        },
    };
    Ok(RunKey {
        workload,
        cpu,
        disk,
    })
}

fn parse_body(body: &[u8]) -> Result<Value, Box<Response>> {
    json::parse(body).map_err(|e| bad_request("bad_json", &e))
}

/// Parses a `/v1/run` body: the run key plus the optional `"fidelity"`
/// tier (`surrogate` | `replay` | `full`; defaults to `replay`, the
/// exact three-tier lookup every pre-fidelity client gets). Batch
/// queries go through [`key_from_value`] directly and deliberately
/// ignore any `fidelity` field: a batch is a prewarm of the exact tiers.
fn parse_run_query(
    suite: &ExperimentSuite,
    body: &[u8],
) -> Result<(RunKey, Fidelity), Box<Response>> {
    let doc = parse_body(body)?;
    let key = key_from_value(suite, &doc)?;
    let fidelity = match doc.get("fidelity") {
        None => Fidelity::default(),
        Some(v) => match v.as_str() {
            Some(name) => Fidelity::from_name(name).ok_or_else(|| {
                bad_request(
                    "unknown_fidelity",
                    &format!("no fidelity '{name}' (expected surrogate, replay, or full)"),
                )
            })?,
            None => return Err(bad_request("bad_query", "'fidelity' must be a string")),
        },
    };
    Ok((key, fidelity))
}

/// Parses a batch body: `{"queries": [query...], "jobs"?: N}`. Returns the
/// queries in order (duplicates included — the suite memoizes) plus the
/// parallelism to prewarm with.
fn parse_batch(
    suite: &ExperimentSuite,
    body: &[u8],
) -> Result<(Vec<RunKey>, usize), Box<Response>> {
    let doc = parse_body(body)?;
    let queries = match doc.get("queries") {
        Some(v) => v
            .as_arr()
            .ok_or_else(|| bad_request("bad_query", "'queries' must be an array"))?,
        None => return Err(bad_request("missing_field", "'queries' is required")),
    };
    if queries.is_empty() {
        return Err(bad_request("bad_query", "'queries' must not be empty"));
    }
    let keys = queries
        .iter()
        .map(|q| key_from_value(suite, q))
        .collect::<Result<Vec<_>, _>>()?;
    let jobs = match doc.get("jobs") {
        None => 1,
        Some(v) => match v.as_f64() {
            Some(n) if (1.0..=64.0).contains(&n) && n.fract() == 0.0 => n as usize,
            _ => {
                return Err(bad_request(
                    "bad_query",
                    "'jobs' must be an integer between 1 and 64",
                ));
            }
        },
    };
    Ok((keys, jobs))
}

/// Renders the batch response after the prewarm: one bundle per query (in
/// request order) plus the suite's dedup accounting.
fn render_batch(suite: &ExperimentSuite, keys: &[RunKey]) -> String {
    let unique: HashSet<RunKey> = keys.iter().copied().collect();
    let mut out = String::with_capacity(keys.len() * 512);
    out.push_str("{\"schema\": \"softwatt-batch-v1\", \"results\": [");
    for (i, &key) in keys.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let bundle = suite.run_key(key);
        out.push_str(&softwatt::json::run_bundle(key, &bundle));
    }
    out.push_str(&format!(
        "], \"unique_keys\": {}, \"runs_executed\": {}, \"replays_derived\": {}, \
         \"surrogate_served\": {}, \"store_loads\": {}}}",
        unique.len(),
        suite.runs_executed(),
        suite.replays_derived(),
        suite.surrogate_served(),
        suite.store_loads()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use softwatt::SystemConfig;

    #[test]
    fn route_classification() {
        assert_eq!(Route::of("/healthz"), Route::Healthz);
        assert_eq!(Route::of("/metrics"), Route::Metrics);
        assert_eq!(Route::of("/v1/run"), Route::Run);
        assert_eq!(Route::of("/v1/batch"), Route::Batch);
        assert_eq!(Route::of("/v1/figures/fig6"), Route::Figure);
        assert_eq!(Route::of("/v1/figures/fig6?x=1"), Route::Figure);
        assert_eq!(Route::of("/admin/shutdown"), Route::Shutdown);
        assert_eq!(Route::of("/nope"), Route::Unknown);
        assert_eq!(Route::of("/v1/run?scale=2"), Route::Run);
        assert_eq!(
            Route::of("/v1/traces/0011223344556677?workload=jess&cpu=mxs"),
            Route::Traces
        );
    }

    #[test]
    fn trace_transfer_validates_before_any_work() {
        let suite = parse_suite();
        let suite = Arc::new(suite);
        let ctx = Ctx::new(Arc::clone(&suite), Arc::new(AtomicBool::new(false)));
        let get = |target: &str| Request {
            method: "GET".into(),
            target: target.into(),
            http11: true,
            headers: Vec::new(),
            body: Vec::new(),
        };
        let ready = |target: &str| match dispatch(&ctx, Route::Traces, &get(target)) {
            Outcome::Ready(resp) => resp,
            _ => panic!("{target} must be answered inline"),
        };

        // Bad hash, missing params, unknown names, unregistered specs.
        assert_eq!(ready("/v1/traces/xyz?workload=jess&cpu=mxs").status, 400);
        assert_eq!(ready("/v1/traces/0011223344556677").status, 400);
        let r = ready("/v1/traces/0011223344556677?workload=doom&cpu=mxs");
        assert_eq!(r.status, 404);
        assert!(r.body.contains("unknown_workload"));
        let r = ready("/v1/traces/0011223344556677?workload=jess&cpu=arm");
        assert_eq!(r.status, 404);
        let r = ready("/v1/traces/0011223344556677?workload=spec:00000000000000ff&cpu=mxs");
        assert_eq!(r.status, 404);

        // A hash that does not match this node's derivation: refused, so
        // config drift can never serve a wrong trace.
        let r = ready("/v1/traces/0011223344556677?workload=jess&cpu=mxs");
        assert_eq!(r.status, 404);
        assert!(r.body.contains("trace_key_mismatch"), "{}", r.body);

        // The genuine key classifies as work (cold here: no trace yet).
        let key = suite.trace_key(WorkloadKey::Canned(Benchmark::Jess), CpuModel::Mxs);
        let target = format!("/v1/traces/{:016x}?workload=jess&cpu=mxs", key.hash());
        assert!(matches!(
            dispatch(&ctx, Route::Traces, &get(&target)),
            Outcome::Work {
                lane: Lane::Cold,
                ..
            }
        ));

        // Wrong method on a known path is 405, not 404.
        let mut post = get(&target);
        post.method = "POST".into();
        match dispatch(&ctx, Route::Traces, &post) {
            Outcome::Ready(resp) => assert_eq!(resp.status, 405),
            _ => panic!("wrong method must be refused inline"),
        }
    }

    fn parse_suite() -> ExperimentSuite {
        // Parsing never simulates, so the scale does not matter; a large
        // one keeps any accidental simulation cheap enough to notice.
        ExperimentSuite::new(SystemConfig {
            time_scale: 500_000.0,
            ..SystemConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn run_key_parsing_defaults_and_errors() {
        let suite = parse_suite();
        let (key, fidelity) = parse_run_query(&suite, br#"{"benchmark": "jess"}"#).unwrap();
        assert_eq!(key.workload, WorkloadKey::Canned(Benchmark::Jess));
        assert_eq!(key.cpu, CpuModel::Mxs);
        assert_eq!(key.disk, DiskSetup::Conventional);
        assert_eq!(fidelity, Fidelity::Replay, "replay is the default tier");

        let (key, _) = parse_run_query(
            &suite,
            br#"{"benchmark": "db", "cpu": "mipsy", "disk": "sleep"}"#,
        )
        .unwrap();
        assert_eq!(key.workload, WorkloadKey::Canned(Benchmark::Db));
        assert_eq!(key.cpu, CpuModel::Mipsy);
        assert_eq!(key.disk, DiskSetup::SleepExt);

        for (body, want) in [
            (
                &br#"{"benchmark": "jess", "fidelity": "surrogate"}"#[..],
                Fidelity::Surrogate,
            ),
            (
                br#"{"benchmark": "jess", "fidelity": "replay"}"#,
                Fidelity::Replay,
            ),
            (
                br#"{"benchmark": "jess", "fidelity": "full"}"#,
                Fidelity::Full,
            ),
        ] {
            let (_, fidelity) = parse_run_query(&suite, body).unwrap();
            assert_eq!(fidelity, want);
        }

        for (body, code) in [
            (&br#"not json"#[..], "bad_json"),
            (br#"{}"#, "missing_field"),
            (br#"{"benchmark": "quake"}"#, "unknown_benchmark"),
            (br#"{"benchmark": "jess", "cpu": "arm"}"#, "unknown_cpu"),
            (br#"{"benchmark": "jess", "disk": "ssd"}"#, "unknown_disk"),
            (br#"{"benchmark": 7}"#, "bad_query"),
            (
                br#"{"benchmark": "jess", "fidelity": "exact"}"#,
                "unknown_fidelity",
            ),
            (br#"{"benchmark": "jess", "fidelity": 3}"#, "bad_query"),
            (br#"{"benchmark": "jess", "workload": "jess"}"#, "bad_query"),
            (br#"{"workload": "spec:zz"}"#, "unknown_workload"),
            (
                br#"{"workload": "spec:00000000000000ff"}"#,
                "unknown_workload",
            ),
            (br#"{"spec": {"name": "x"}}"#, "invalid_spec"),
            (br#"{"spec": "jess"}"#, "invalid_spec"),
        ] {
            let resp = parse_run_query(&suite, body).unwrap_err();
            assert_eq!(resp.status, 400);
            assert!(resp.body.contains(code), "{} for {:?}", resp.body, body);
        }
    }

    #[test]
    fn inline_specs_register_and_resolve_by_hash() {
        let suite = parse_suite();
        let spec = Benchmark::Jess.spec();
        let mut body = String::from(r#"{"disk": "idle", "spec": "#);
        body.push_str(&softwatt::json::benchmark_spec(&spec));
        body.push('}');
        let (key, _) = parse_run_query(&suite, body.as_bytes()).unwrap();
        let expect = WorkloadKey::Spec(spec.content_hash());
        assert_eq!(key.workload, expect, "inline spec keys by content hash");
        assert_eq!(key.disk, DiskSetup::IdleOnly);
        assert_eq!(
            suite.spec_for(key.workload).as_deref(),
            Some(&spec),
            "the decoded spec round-tripped into the registry"
        );

        // Once registered, the hash label addresses it...
        let by_label = format!(r#"{{"workload": "{}"}}"#, key.workload.label());
        let (key2, _) = parse_run_query(&suite, by_label.as_bytes()).unwrap();
        assert_eq!(key2.workload, expect);

        // ...and an invalid spec is rejected with the validator's message.
        let mut invalid = spec.clone();
        invalid.phases[0].frac = -0.5;
        let mut body = String::from(r#"{"spec": "#);
        body.push_str(&softwatt::json::benchmark_spec(&invalid));
        body.push('}');
        let resp = parse_run_query(&suite, body.as_bytes()).unwrap_err();
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("invalid_spec"), "{}", resp.body);
    }

    #[test]
    fn batch_parsing() {
        let suite = parse_suite();
        let (keys, jobs) = parse_batch(
            &suite,
            br#"{"queries": [{"benchmark": "jess"}, {"benchmark": "jess"}], "jobs": 2}"#,
        )
        .unwrap();
        assert_eq!(keys.len(), 2, "duplicates preserved for the response");
        assert_eq!(jobs, 2);

        for body in [
            &br#"{"queries": []}"#[..],
            br#"{"jobs": 2}"#,
            br#"{"queries": [{}]}"#,
            br#"{"queries": [{"benchmark": "jess"}], "jobs": 0}"#,
            br#"{"queries": [{"benchmark": "jess"}], "jobs": 1.5}"#,
            br#"{"queries": "jess"}"#,
        ] {
            assert!(parse_batch(&suite, body).is_err(), "{:?} should fail", body);
        }
    }

    #[test]
    fn admission_classifies_by_suite_knowledge() {
        let suite = Arc::new(
            ExperimentSuite::new(SystemConfig {
                time_scale: 500_000.0,
                ..SystemConfig::default()
            })
            .unwrap(),
        );
        let ctx = Ctx::new(Arc::clone(&suite), Arc::new(AtomicBool::new(false)));
        let req = |body: &str| Request {
            method: "POST".into(),
            target: "/v1/run".into(),
            http11: true,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };

        // Nothing computed yet: a run is a cold full simulation.
        let outcome = dispatch(&ctx, Route::Run, &req(r#"{"benchmark": "jess"}"#));
        assert!(matches!(
            outcome,
            Outcome::Shared {
                lane: Lane::Cold,
                ..
            }
        ));

        // Simulate it: the exact key is now a warm inline hit...
        let key = RunKey::canned(Benchmark::Jess, CpuModel::Mxs, DiskSetup::Conventional);
        suite.run_key(key);
        match dispatch(&ctx, Route::Run, &req(r#"{"benchmark": "jess"}"#)) {
            Outcome::Ready(resp) => {
                assert_eq!(resp.status, 200);
                assert_eq!(resp.lane, Some("inline"));
            }
            _ => panic!("memoized key must be served inline"),
        }

        // ...and a sibling disk policy of the same (benchmark, CPU) pair
        // is a replay (the trace exists, the bundle does not).
        let outcome = dispatch(
            &ctx,
            Route::Run,
            &req(r#"{"benchmark": "jess", "disk": "idle"}"#),
        );
        assert!(matches!(
            outcome,
            Outcome::Shared {
                lane: Lane::Replay,
                ..
            }
        ));
    }

    #[test]
    fn surrogate_fidelity_serves_covered_cells_and_falls_through_otherwise() {
        let suite = Arc::new(
            ExperimentSuite::new(SystemConfig {
                time_scale: 500_000.0,
                ..SystemConfig::default()
            })
            .unwrap(),
        );
        let ctx = Ctx::new(Arc::clone(&suite), Arc::new(AtomicBool::new(false)));
        let req = |body: &str| Request {
            method: "POST".into(),
            target: "/v1/run".into(),
            http11: true,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        let surrogate_q = r#"{"benchmark": "jess", "fidelity": "surrogate"}"#;

        // No model installed yet: the surrogate tier falls through to the
        // exact classification (cold — nothing is computed).
        assert!(matches!(
            dispatch(&ctx, Route::Run, &req(surrogate_q)),
            Outcome::Shared {
                lane: Lane::Cold,
                ..
            }
        ));

        // Train on the one memoized run and ask again: covered cell,
        // served on the surrogate lane with the fidelity headers set.
        let key = RunKey::canned(Benchmark::Jess, CpuModel::Mxs, DiskSetup::Conventional);
        suite.run_key(key);
        suite.refit_surrogate().expect("one run is enough to fit");
        match dispatch(&ctx, Route::Run, &req(surrogate_q)) {
            Outcome::Ready(resp) => {
                assert_eq!(resp.status, 200);
                assert_eq!(resp.lane, Some("surrogate"));
                assert_eq!(resp.fidelity, Some("surrogate"));
                assert!(resp.error_bound_pct.is_some());
                assert!(resp.body.contains("softwatt-surrogate-v1"), "{}", resp.body);
            }
            _ => panic!("covered surrogate cell must be served inline"),
        }

        // A cell the model has not been calibrated on falls through to
        // exact — here a replay (the trace exists).
        assert!(matches!(
            dispatch(
                &ctx,
                Route::Run,
                &req(r#"{"benchmark": "jess", "disk": "idle", "fidelity": "surrogate"}"#),
            ),
            Outcome::Shared {
                lane: Lane::Replay,
                ..
            }
        ));

        // An explicit `full` on a memo miss routes to the cold pool even
        // though the trace would allow a replay...
        assert!(matches!(
            dispatch(
                &ctx,
                Route::Run,
                &req(r#"{"benchmark": "jess", "disk": "idle", "fidelity": "full"}"#),
            ),
            Outcome::Work {
                lane: Lane::Cold,
                ..
            }
        ));

        // ...but a memoized key is inline at any fidelity (replay and
        // full answers are bit-identical, so the memo satisfies both).
        match dispatch(
            &ctx,
            Route::Run,
            &req(r#"{"benchmark": "jess", "fidelity": "full"}"#),
        ) {
            Outcome::Ready(resp) => assert_eq!(resp.lane, Some("inline")),
            _ => panic!("memoized key must be inline at full fidelity"),
        }
    }
}
