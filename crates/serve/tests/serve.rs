//! End-to-end tests over real TCP: response fidelity against in-process
//! results, lane classification, HTTP-layer dedup, backpressure,
//! pipelining, slow-loris reaping, graceful shutdown, and the structured
//! error surface.
//!
//! The obs registry is process-global and the test harness runs these in
//! parallel, so cross-suite metric assertions use `>=` on counters only
//! this test increments; exact counts come from each test's own suite
//! handle.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use softwatt::experiments::{DiskSetup, RunKey};
use softwatt::{Benchmark, CpuModel, ExperimentSuite, SystemConfig, WorkloadKey};
use softwatt_serve::client::Client;
use softwatt_serve::pool::Pool;
use softwatt_serve::{ServeConfig, Server, ShutdownHandle};

/// Big time-scale factor = short, fast simulated runs (test fidelity).
const FAST_SCALE: f64 = 500_000.0;

struct TestServer {
    suite: Arc<ExperimentSuite>,
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    thread: JoinHandle<()>,
    replay_pool: Arc<Pool>,
    cold_pool: Arc<Pool>,
}

impl TestServer {
    fn start(config: ServeConfig) -> TestServer {
        // Process-wide; tests asserting on /metrics need recording on.
        softwatt_obs::set_enabled(true);
        let system = SystemConfig {
            time_scale: FAST_SCALE,
            ..SystemConfig::default()
        };
        let suite = Arc::new(ExperimentSuite::new(system).expect("valid config"));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&suite), config).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let shutdown = server.shutdown_handle();
        let replay_pool = server.pool();
        let cold_pool = server.cold_pool();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            suite,
            addr,
            shutdown,
            thread,
            replay_pool,
            cold_pool,
        }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr, Duration::from_secs(300)).expect("connect")
    }

    fn stop(self) {
        self.shutdown.trigger();
        self.thread.join().expect("server thread");
    }
}

/// Parks a pool's only worker on a job that blocks until the returned
/// sender fires; returns once the worker has picked it up. Requires a
/// one-worker pool to be meaningful.
fn park_worker(pool: &Pool) -> mpsc::Sender<()> {
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let (started_tx, started_rx) = mpsc::channel::<()>();
    pool.try_submit(Box::new(move || {
        started_tx.send(()).expect("report parked");
        release_rx.recv().expect("await release");
    }))
    .expect("park job accepted");
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("worker picks up the parking job");
    release_tx
}

/// Reads the integer value of one counter out of a `/metrics` body.
fn counter(metrics_body: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\": ");
    let at = metrics_body
        .find(&needle)
        .unwrap_or_else(|| panic!("counter {name} missing from {metrics_body}"));
    metrics_body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter value")
}

#[test]
fn run_response_is_byte_identical_to_in_process() {
    let server = TestServer::start(ServeConfig::default());
    let mut client = server.client();

    let resp = client
        .request(
            "POST",
            "/v1/run",
            r#"{"benchmark": "jess", "disk": "idle"}"#,
        )
        .expect("run request");
    assert_eq!(resp.status, 200, "{}", resp.body);
    // A fresh suite knows nothing about this key: full simulation.
    assert_eq!(resp.header("x-softwatt-lane"), Some("cold"));

    // The same query answered in-process, through the same shared suite,
    // must render to exactly the same bytes.
    let key = RunKey::canned(Benchmark::Jess, CpuModel::Mxs, DiskSetup::IdleOnly);
    let bundle = server.suite.run_key(key);
    assert_eq!(resp.body, softwatt::json::run_bundle(key, &bundle));

    // Keep-alive: the same connection serves a second request, and the
    // memo makes it an inline hit with identical bytes.
    let again = client
        .request(
            "POST",
            "/v1/run",
            r#"{"benchmark": "jess", "disk": "idle"}"#,
        )
        .expect("second request on the same connection");
    assert_eq!(again.body, resp.body);
    assert_eq!(again.header("x-softwatt-lane"), Some("inline"));

    // A sibling disk policy of a simulated pair replays the trace.
    let sibling = client
        .request(
            "POST",
            "/v1/run",
            r#"{"benchmark": "jess", "disk": "sleep"}"#,
        )
        .expect("sibling disk request");
    assert_eq!(sibling.status, 200, "{}", sibling.body);
    assert_eq!(sibling.header("x-softwatt-lane"), Some("replay"));

    // Figures render through the same suite too.
    let fig = client
        .request("GET", "/v1/figures/validation", "")
        .expect("figure request");
    assert_eq!(fig.status, 200);
    assert_eq!(
        fig.body,
        softwatt::json::figure(&server.suite, "validation").expect("known figure")
    );

    server.stop();
}

#[test]
fn inline_spec_runs_get_the_full_tier_treatment() {
    let server = TestServer::start(ServeConfig::default());
    let mut client = server.client();

    // A user workload: canned jess content under a custom name, posted
    // inline in the canonical spec codec.
    let mut spec = Benchmark::Jess.spec();
    spec.name = "jess-tuned".to_string();
    let body = format!(
        r#"{{"spec": {}, "disk": "idle"}}"#,
        softwatt::json::benchmark_spec(&spec)
    );

    let resp = client.request("POST", "/v1/run", &body).expect("spec run");
    assert_eq!(resp.status, 200, "{}", resp.body);
    // A fresh suite has never seen this spec: full simulation.
    assert_eq!(resp.header("x-softwatt-lane"), Some("cold"));

    // The handler registered the spec in the shared suite, so the same
    // key answered in-process must render to exactly the same bytes.
    let key = RunKey {
        workload: WorkloadKey::Spec(spec.content_hash()),
        cpu: CpuModel::Mxs,
        disk: DiskSetup::IdleOnly,
    };
    let bundle = server.suite.run_key(key);
    assert_eq!(resp.body, softwatt::json::run_bundle(key, &bundle));

    // Re-posting the identical spec is a memo hit on the inline lane with
    // identical bytes — the lane classification is stable.
    let again = client.request("POST", "/v1/run", &body).expect("re-post");
    assert_eq!(again.status, 200, "{}", again.body);
    assert_eq!(again.header("x-softwatt-lane"), Some("inline"));
    assert_eq!(again.body, resp.body);

    // A sibling disk policy of the registered spec replays its trace.
    let sibling_body = format!(
        r#"{{"spec": {}, "disk": "sleep"}}"#,
        softwatt::json::benchmark_spec(&spec)
    );
    let sibling = client
        .request("POST", "/v1/run", &sibling_body)
        .expect("sibling disk request");
    assert_eq!(sibling.status, 200, "{}", sibling.body);
    assert_eq!(sibling.header("x-softwatt-lane"), Some("replay"));

    // Once registered, the spec is addressable by its content-hash label
    // without re-sending the body.
    let by_label = client
        .request(
            "POST",
            "/v1/run",
            &format!(
                r#"{{"workload": "{}", "disk": "idle"}}"#,
                key.workload.label()
            ),
        )
        .expect("run by spec label");
    assert_eq!(by_label.status, 200, "{}", by_label.body);
    assert_eq!(by_label.header("x-softwatt-lane"), Some("inline"));
    assert_eq!(by_label.body, resp.body);

    // An invalid spec is a structured 400, not a panic or a 500.
    spec.phases[0].frac = -0.25;
    let invalid = client
        .request(
            "POST",
            "/v1/run",
            &format!(r#"{{"spec": {}}}"#, softwatt::json::benchmark_spec(&spec)),
        )
        .expect("invalid spec request");
    assert_eq!(invalid.status, 400, "{}", invalid.body);
    assert!(
        invalid.body.contains("\"code\": \"invalid_spec\""),
        "{}",
        invalid.body
    );

    assert_eq!(
        server.suite.runs_executed(),
        1,
        "one simulation served every inline-spec request"
    );
    server.stop();
}

#[test]
fn batch_of_paper_grid_simulates_each_cpu_pair_once() {
    let server = TestServer::start(ServeConfig::default());
    let grid = server.suite.paper_grid();
    assert_eq!(grid.len(), 37, "the paper grid");

    let queries: Vec<String> = grid
        .iter()
        .map(|k| {
            format!(
                r#"{{"benchmark": "{}", "cpu": "{}", "disk": "{}"}}"#,
                k.workload.label(),
                k.cpu.name(),
                k.disk.name()
            )
        })
        .collect();
    let body = format!(r#"{{"queries": [{}], "jobs": 2}}"#, queries.join(", "));

    let mut client = server.client();
    let resp = client.request("POST", "/v1/batch", &body).expect("batch");
    assert_eq!(resp.status, 200, "{}", resp.body);
    // A fresh grid needs full simulations: the batch rode the cold lane
    // (one cold worker; the prewarm's own `jobs` threading parallelizes).
    assert_eq!(resp.header("x-softwatt-lane"), Some("cold"));

    // 37 keys collapse to 13 full simulations (one per benchmark/CPU
    // pair); the rest are replay-derived. The shared handle proves the
    // server hit the same memo.
    assert_eq!(server.suite.runs_executed(), 13);
    assert!(resp.body.contains("\"schema\": \"softwatt-batch-v1\""));
    assert!(resp.body.contains("\"unique_keys\": 37"), "{}", resp.body);
    assert!(resp.body.contains("\"runs_executed\": 13"), "{}", resp.body);
    // Every bundle (including the 13 captured keys' own) is derived by
    // replaying a trace, so the replay count covers the whole grid.
    assert!(
        resp.body.contains("\"replays_derived\": 37"),
        "{}",
        resp.body
    );
    // All 37 result bundles made it into the response, in request order.
    assert_eq!(
        resp.body.matches("\"schema\": \"softwatt-run-v1\"").count(),
        37
    );

    // Now that every trace exists, the same batch is replay-class.
    let again = client.request("POST", "/v1/batch", &body).expect("rerun");
    assert_eq!(again.status, 200);
    assert_eq!(again.header("x-softwatt-lane"), Some("replay"));
    assert_eq!(server.suite.runs_executed(), 13, "no re-simulation");

    server.stop();
}

#[test]
fn concurrent_identical_cold_runs_dedup_into_one_job() {
    let server = TestServer::start(ServeConfig {
        cold_workers: 1,
        cold_queue_depth: 4,
        ..ServeConfig::default()
    });
    let release = park_worker(&server.cold_pool);

    // Three connections ask for the same cold key while the cold worker
    // is parked: the first creates the in-flight job, the rest attach.
    let mut clients: Vec<Client> = (0..3).map(|_| server.client()).collect();
    for c in &mut clients {
        c.send_request("POST", "/v1/run", r#"{"benchmark": "javac"}"#)
            .expect("send identical run");
    }
    std::thread::sleep(Duration::from_millis(300));
    release.send(()).expect("release cold worker");

    let bodies: Vec<String> = clients
        .iter_mut()
        .map(|c| {
            let resp = c.read_response().expect("deduped response");
            assert_eq!(resp.status, 200, "{}", resp.body);
            assert_eq!(resp.header("x-softwatt-lane"), Some("cold"));
            resp.body.clone()
        })
        .collect();
    assert_eq!(bodies[0], bodies[1]);
    assert_eq!(bodies[1], bodies[2]);
    assert_eq!(
        server.suite.runs_executed(),
        1,
        "one simulation served all three requests"
    );

    // The dedup shows up on /metrics: two requests attached to the first
    // one's job (>= because the registry is process-global).
    let metrics = clients[0]
        .request("GET", "/metrics", "")
        .expect("metrics")
        .body;
    assert!(counter(&metrics, "serve.dedup_attached") >= 2, "{metrics}");
    assert!(
        counter(&metrics, "serve.lane.cold.served") >= 3,
        "{metrics}"
    );
    assert!(
        metrics.contains("\"serve.lane.cold.queue_depth_max\""),
        "{metrics}"
    );
    assert!(
        metrics.contains("\"serve.lane.cold.latency_us\""),
        "{metrics}"
    );

    server.stop();
}

#[test]
fn saturated_cold_lane_bounces_503_while_warm_stays_inline() {
    let server = TestServer::start(ServeConfig {
        cold_workers: 1,
        cold_queue_depth: 1,
        ..ServeConfig::default()
    });
    // Warm one key up front through the shared suite handle.
    let warm_key = RunKey::canned(Benchmark::Compress, CpuModel::Mxs, DiskSetup::Conventional);
    server.suite.run_key(warm_key);

    let release = park_worker(&server.cold_pool);

    // Fill the cold queue's single slot with a real request (sent, not
    // yet answered — it sits queued behind the parked worker).
    let mut queued = server.client();
    queued
        .send_request("POST", "/v1/run", r#"{"benchmark": "jess"}"#)
        .expect("send queued request");
    std::thread::sleep(Duration::from_millis(300));

    // The next *distinct* cold request must bounce immediately with
    // Retry-After (an identical one would dedup-attach instead).
    let mut bounced = server.client();
    let resp = bounced
        .request("POST", "/v1/run", r#"{"benchmark": "db"}"#)
        .expect("bounced request");
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(resp.body.contains("\"code\": \"overloaded\""));

    // Warm traffic never queues behind the saturated cold lane: the
    // memoized key answers inline, on the same connection the 503 came
    // back on, while the cold worker is still parked.
    let warm = bounced
        .request("POST", "/v1/run", r#"{"benchmark": "compress"}"#)
        .expect("warm request under cold saturation");
    assert_eq!(warm.status, 200, "{}", warm.body);
    assert_eq!(warm.header("x-softwatt-lane"), Some("inline"));
    let health = bounced.request("GET", "/healthz", "").expect("healthz");
    assert_eq!(health.status, 200);

    // Releasing the worker drains the queued request successfully...
    release.send(()).expect("release worker");
    let drained = queued.read_response().expect("queued response");
    assert_eq!(drained.status, 200, "{}", drained.body);

    // ...and the lane is fully recovered, not wedged.
    let after = bounced
        .request("POST", "/v1/run", r#"{"benchmark": "db"}"#)
        .expect("post-recovery request");
    assert_eq!(after.status, 200, "{}", after.body);

    server.stop();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = TestServer::start(ServeConfig::default());
    // Warm a key so the pipelined run resolves inline.
    let key = RunKey::canned(Benchmark::Mtrt, CpuModel::Mxs, DiskSetup::Conventional);
    server.suite.run_key(key);

    // All three requests hit the wire before any response is read.
    let mut client = server.client();
    client
        .send_request("GET", "/healthz", "")
        .expect("pipeline healthz");
    client
        .send_request("POST", "/v1/run", r#"{"benchmark": "mtrt"}"#)
        .expect("pipeline run");
    client
        .send_request("GET", "/v1/figures/validation", "")
        .expect("pipeline figure");

    let first = client.read_response().expect("first response");
    assert_eq!(first.status, 200);
    assert!(first.body.contains("\"status\": \"ok\""), "{}", first.body);
    let second = client.read_response().expect("second response");
    assert_eq!(second.status, 200);
    assert!(
        second.body.contains("\"schema\": \"softwatt-run-v1\""),
        "{}",
        second.body
    );
    let third = client.read_response().expect("third response");
    assert_eq!(third.status, 200);
    assert_eq!(
        third.body,
        softwatt::json::figure(&server.suite, "validation").expect("known figure")
    );

    server.stop();
}

#[test]
fn requests_split_across_arbitrary_byte_boundaries_parse() {
    let server = TestServer::start(ServeConfig::default());
    server.suite.run_key(RunKey::canned(
        Benchmark::Jack,
        CpuModel::Mxs,
        DiskSetup::Conventional,
    ));

    let raw = b"POST /v1/run HTTP/1.1\r\nContent-Length: 21\r\n\r\n{\"benchmark\": \"jack\"}";
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    // One byte per write, each flushed: the server sees the request in
    // as many fragments as the kernel delivers.
    for b in raw {
        stream.write_all(&[*b]).expect("dribble byte");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "server closed before the response head arrived");
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains("X-Softwatt-Lane: inline\r\n"), "{text}");

    server.stop();
}

#[test]
fn slow_loris_is_reaped_without_consuming_a_worker() {
    let server = TestServer::start(ServeConfig {
        workers: 1,
        cold_workers: 1,
        read_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    });
    // Park BOTH lanes: if the loris connection needed any worker, the
    // 408 below could never be written.
    let release_replay = park_worker(&server.replay_pool);
    let release_cold = park_worker(&server.cold_pool);

    let mut loris = TcpStream::connect(server.addr).expect("connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let started = Instant::now();
    // Dribble a partial head one byte at a time, forever (from the
    // sender's point of view). Each byte is "progress", but the head's
    // total budget is fixed — the reactor must reap the connection.
    let mut reply = Vec::new();
    let mut partial = b"GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow: ".iter();
    loop {
        if let Some(b) = partial.next() {
            if loris.write_all(&[*b]).is_err() {
                break; // server already closed on us: also a pass
            }
        }
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "loris was never reaped"
        );
        // Poll for the server's verdict without blocking the dribble.
        loris
            .set_read_timeout(Some(Duration::from_millis(1)))
            .expect("short timeout");
        let mut chunk = [0u8; 1024];
        match loris.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => reply.extend_from_slice(&chunk[..n]),
            Err(_) => {}
        }
    }
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "reap took too long"
    );

    // Both workers are still parked — the loris never touched a pool.
    release_replay.send(()).expect("replay worker still parked");
    release_cold.send(()).expect("cold worker still parked");

    // The reap is visible on /metrics.
    let metrics = server
        .client()
        .request("GET", "/metrics", "")
        .expect("metrics")
        .body;
    assert!(
        counter(&metrics, "serve.conns.reaped_partial") >= 1,
        "{metrics}"
    );

    server.stop();
}

#[test]
fn graceful_shutdown_drains_inflight_requests() {
    let server = TestServer::start(ServeConfig {
        cold_workers: 1,
        cold_queue_depth: 4,
        ..ServeConfig::default()
    });
    let release = park_worker(&server.cold_pool);

    // An in-flight request, queued behind the parked cold worker.
    let mut inflight = server.client();
    inflight
        .send_request("POST", "/v1/run", r#"{"benchmark": "jess"}"#)
        .expect("send in-flight request");
    std::thread::sleep(Duration::from_millis(300));

    // Shutdown arrives while that request is still queued.
    server.shutdown.trigger();
    std::thread::sleep(Duration::from_millis(100));
    release.send(()).expect("release worker");

    // The drain completes the request — a full 200, flagged as the last
    // response on the connection — before the server exits.
    let resp = inflight.read_response().expect("drained response");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"schema\": \"softwatt-run-v1\""));
    assert_eq!(resp.header("connection"), Some("close"));

    server.thread.join().expect("server thread exits");
}

#[test]
fn admin_shutdown_endpoint_stops_the_server() {
    let server = TestServer::start(ServeConfig::default());
    let mut client = server.client();
    let resp = client
        .request("POST", "/admin/shutdown", "")
        .expect("shutdown request");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));
    server.thread.join().expect("server thread exits");
}

#[test]
fn structured_errors_cover_the_4xx_surface() {
    let server = TestServer::start(ServeConfig {
        max_body_bytes: 256,
        ..ServeConfig::default()
    });
    let mut client = server.client();

    let cases: [(&str, &str, &str, u16, &str); 7] = [
        ("POST", "/v1/run", "not json", 400, "bad_json"),
        ("POST", "/v1/run", "{}", 400, "missing_field"),
        (
            "POST",
            "/v1/run",
            r#"{"benchmark": "quake"}"#,
            400,
            "unknown_benchmark",
        ),
        (
            "POST",
            "/v1/run",
            r#"{"benchmark": "jess", "cpu": "arm"}"#,
            400,
            "unknown_cpu",
        ),
        ("GET", "/v1/figures/fig99", "", 404, "unknown_figure"),
        ("GET", "/v1/run", "", 405, "method_not_allowed"),
        ("GET", "/nope", "", 404, "not_found"),
    ];
    for (method, path, body, status, code) in cases {
        let resp = client.request(method, path, body).expect(path);
        assert_eq!(resp.status, status, "{method} {path}: {}", resp.body);
        assert!(
            resp.body.contains(&format!("\"code\": \"{code}\"")),
            "{method} {path}: {}",
            resp.body
        );
    }

    // Oversized body: 413, and the server closes the connection (it will
    // not read the rest of the payload).
    let big = "x".repeat(512);
    let resp = client
        .request("POST", "/v1/run", &big)
        .expect("oversized request");
    assert_eq!(resp.status, 413, "{}", resp.body);
    assert!(resp.body.contains("\"code\": \"body_too_large\""));
    assert_eq!(resp.header("connection"), Some("close"));

    server.stop();
}

#[test]
fn trace_transfers_bypass_a_saturated_cold_lane() {
    // The fabric-deadlock guard (DESIGN.md §14): `/v1/traces` runs on
    // its own pool, so a cold lane whose only worker is stuck — in a
    // real cluster, blocked fetching from a peer — can never starve the
    // transfers that peer is waiting for.
    let server = TestServer::start(ServeConfig {
        cold_workers: 1,
        cold_queue_depth: 4,
        ..ServeConfig::default()
    });
    let release = park_worker(&server.cold_pool);

    let workload = WorkloadKey::Canned(Benchmark::Jess);
    let hash = server.suite.trace_key(workload, CpuModel::Mxs).hash();
    let path = format!("/v1/traces/{hash:016x}?workload=jess&cpu=mxs");
    let start = Instant::now();
    let resp = server
        .client()
        .request_bytes("GET", &path, "")
        .expect("trace transfer");
    assert_eq!(resp.status, 200);
    assert!(!resp.body.is_empty(), "swtrace-v1 bytes");
    assert_eq!(resp.header("x-softwatt-source"), Some("sim"));
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "transfer never queued behind the parked cold worker"
    );
    assert_eq!(server.suite.runs_executed(), 1, "captured on demand");

    release.send(()).expect("release cold worker");
    server.stop();
}

#[test]
fn figure_renders_once_then_serves_inline() {
    // Figures are deterministic over memoized bundles, so the rendered
    // body is cached by name: the first request pays the render on a
    // worker lane, every later one is answered inline on the reactor.
    // This is what keeps a cluster member that never sees the full paper
    // grid from cold-admitting the same figure forever.
    let server = TestServer::start(ServeConfig::default());
    let mut client = server.client();

    let first = client
        .request("GET", "/v1/figures/fig6", "")
        .expect("first figure request");
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("x-softwatt-lane"), Some("cold"));

    let again = client
        .request("GET", "/v1/figures/fig6", "")
        .expect("second figure request");
    assert_eq!(again.status, 200);
    assert_eq!(again.header("x-softwatt-lane"), Some("inline"));
    assert_eq!(again.body, first.body, "cache serves the same render");

    server.stop();
}
