//! End-to-end tests over real TCP: response fidelity against in-process
//! results, batch deduplication, backpressure, graceful shutdown, and the
//! structured error surface.

use std::net::SocketAddr;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use softwatt::experiments::{DiskSetup, RunKey};
use softwatt::{Benchmark, CpuModel, ExperimentSuite, SystemConfig};
use softwatt_serve::client::Client;
use softwatt_serve::{ServeConfig, Server, ShutdownHandle};

/// Big time-scale factor = short, fast simulated runs (test fidelity).
const FAST_SCALE: f64 = 500_000.0;

struct TestServer {
    suite: Arc<ExperimentSuite>,
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    thread: JoinHandle<()>,
    pool: Arc<softwatt_serve::pool::Pool>,
}

impl TestServer {
    fn start(config: ServeConfig) -> TestServer {
        let system = SystemConfig {
            time_scale: FAST_SCALE,
            ..SystemConfig::default()
        };
        let suite = Arc::new(ExperimentSuite::new(system).expect("valid config"));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&suite), config).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let shutdown = server.shutdown_handle();
        let pool = server.pool();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            suite,
            addr,
            shutdown,
            thread,
            pool,
        }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr, Duration::from_secs(300)).expect("connect")
    }

    fn stop(self) {
        self.shutdown.trigger();
        self.thread.join().expect("server thread");
    }

    /// Parks the compute pool's only worker on a job that blocks until the
    /// returned sender fires; returns once the worker has picked it up.
    /// Requires a `workers: 1` config to be meaningful.
    fn park_worker(&self) -> mpsc::Sender<()> {
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        self.pool
            .try_submit(Box::new(move || {
                started_tx.send(()).expect("report parked");
                release_rx.recv().expect("await release");
            }))
            .expect("park job accepted");
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("worker picks up the parking job");
        release_tx
    }
}

#[test]
fn run_response_is_byte_identical_to_in_process() {
    let server = TestServer::start(ServeConfig::default());
    let mut client = server.client();

    let resp = client
        .request(
            "POST",
            "/v1/run",
            r#"{"benchmark": "jess", "disk": "idle"}"#,
        )
        .expect("run request");
    assert_eq!(resp.status, 200, "{}", resp.body);

    // The same query answered in-process, through the same shared suite,
    // must render to exactly the same bytes.
    let key = RunKey {
        benchmark: Benchmark::Jess,
        cpu: CpuModel::Mxs,
        disk: DiskSetup::IdleOnly,
    };
    let bundle = server.suite.run_key(key);
    assert_eq!(resp.body, softwatt::json::run_bundle(key, &bundle));

    // Keep-alive: the same connection serves a second request, and the
    // memo makes it instant and identical.
    let again = client
        .request(
            "POST",
            "/v1/run",
            r#"{"benchmark": "jess", "disk": "idle"}"#,
        )
        .expect("second request on the same connection");
    assert_eq!(again.body, resp.body);

    // Figures render through the same suite too.
    let fig = client
        .request("GET", "/v1/figures/validation", "")
        .expect("figure request");
    assert_eq!(fig.status, 200);
    assert_eq!(
        fig.body,
        softwatt::json::figure(&server.suite, "validation").expect("known figure")
    );

    server.stop();
}

#[test]
fn batch_of_paper_grid_simulates_each_cpu_pair_once() {
    let server = TestServer::start(ServeConfig::default());
    let grid = server.suite.paper_grid();
    assert_eq!(grid.len(), 37, "the paper grid");

    let queries: Vec<String> = grid
        .iter()
        .map(|k| {
            format!(
                r#"{{"benchmark": "{}", "cpu": "{}", "disk": "{}"}}"#,
                k.benchmark.name(),
                k.cpu.name(),
                k.disk.name()
            )
        })
        .collect();
    let body = format!(r#"{{"queries": [{}], "jobs": 2}}"#, queries.join(", "));

    let mut client = server.client();
    let resp = client.request("POST", "/v1/batch", &body).expect("batch");
    assert_eq!(resp.status, 200, "{}", resp.body);

    // 37 keys collapse to 13 full simulations (one per benchmark/CPU
    // pair); the rest are replay-derived. The shared handle proves the
    // server hit the same memo.
    assert_eq!(server.suite.runs_executed(), 13);
    assert!(resp.body.contains("\"schema\": \"softwatt-batch-v1\""));
    assert!(resp.body.contains("\"unique_keys\": 37"), "{}", resp.body);
    assert!(resp.body.contains("\"runs_executed\": 13"), "{}", resp.body);
    // Every bundle (including the 13 captured keys' own) is derived by
    // replaying a trace, so the replay count covers the whole grid.
    assert!(
        resp.body.contains("\"replays_derived\": 37"),
        "{}",
        resp.body
    );
    // All 37 result bundles made it into the response, in request order.
    assert_eq!(
        resp.body.matches("\"schema\": \"softwatt-run-v1\"").count(),
        37
    );

    server.stop();
}

#[test]
fn saturated_queue_bounces_with_503_without_wedging_workers() {
    let server = TestServer::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let release = server.park_worker();

    // Fill the queue's single slot with a real request (sent, not yet
    // answered — it sits queued behind the parked worker).
    let mut queued = server.client();
    queued
        .send_request("POST", "/v1/run", r#"{"benchmark": "jess"}"#)
        .expect("send queued request");
    // Give its connection thread time to parse and enqueue.
    std::thread::sleep(Duration::from_millis(300));

    // The next compute request must bounce immediately with Retry-After.
    let mut bounced = server.client();
    let resp = bounced
        .request("POST", "/v1/run", r#"{"benchmark": "db"}"#)
        .expect("bounced request");
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(resp.body.contains("\"code\": \"overloaded\""));

    // Inline routes stay responsive under saturation.
    let health = bounced.request("GET", "/healthz", "").expect("healthz");
    assert_eq!(health.status, 200);

    // Releasing the worker drains the queued request successfully...
    release.send(()).expect("release worker");
    let drained = queued.read_response().expect("queued response");
    assert_eq!(drained.status, 200, "{}", drained.body);

    // ...and the pool is fully recovered, not wedged.
    let after = bounced
        .request("POST", "/v1/run", r#"{"benchmark": "db"}"#)
        .expect("post-recovery request");
    assert_eq!(after.status, 200, "{}", after.body);

    server.stop();
}

#[test]
fn graceful_shutdown_drains_inflight_requests() {
    let server = TestServer::start(ServeConfig {
        workers: 1,
        queue_depth: 4,
        ..ServeConfig::default()
    });
    let release = server.park_worker();

    // An in-flight request, queued behind the parked worker.
    let mut inflight = server.client();
    inflight
        .send_request("POST", "/v1/run", r#"{"benchmark": "jess"}"#)
        .expect("send in-flight request");
    std::thread::sleep(Duration::from_millis(300));

    // Shutdown arrives while that request is still queued.
    server.shutdown.trigger();
    std::thread::sleep(Duration::from_millis(100));
    release.send(()).expect("release worker");

    // The drain completes the request — a full 200, flagged as the last
    // response on the connection — before the server exits.
    let resp = inflight.read_response().expect("drained response");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"schema\": \"softwatt-run-v1\""));
    assert_eq!(resp.header("connection"), Some("close"));

    server.thread.join().expect("server thread exits");
}

#[test]
fn admin_shutdown_endpoint_stops_the_server() {
    let server = TestServer::start(ServeConfig::default());
    let mut client = server.client();
    let resp = client
        .request("POST", "/admin/shutdown", "")
        .expect("shutdown request");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));
    server.thread.join().expect("server thread exits");
}

#[test]
fn structured_errors_cover_the_4xx_surface() {
    let server = TestServer::start(ServeConfig {
        max_body_bytes: 256,
        ..ServeConfig::default()
    });
    let mut client = server.client();

    let cases: [(&str, &str, &str, u16, &str); 7] = [
        ("POST", "/v1/run", "not json", 400, "bad_json"),
        ("POST", "/v1/run", "{}", 400, "missing_field"),
        (
            "POST",
            "/v1/run",
            r#"{"benchmark": "quake"}"#,
            400,
            "unknown_benchmark",
        ),
        (
            "POST",
            "/v1/run",
            r#"{"benchmark": "jess", "cpu": "arm"}"#,
            400,
            "unknown_cpu",
        ),
        ("GET", "/v1/figures/fig99", "", 404, "unknown_figure"),
        ("GET", "/v1/run", "", 405, "method_not_allowed"),
        ("GET", "/nope", "", 404, "not_found"),
    ];
    for (method, path, body, status, code) in cases {
        let resp = client.request(method, path, body).expect(path);
        assert_eq!(resp.status, status, "{method} {path}: {}", resp.body);
        assert!(
            resp.body.contains(&format!("\"code\": \"{code}\"")),
            "{method} {path}: {}",
            resp.body
        );
    }

    // Oversized body: 413, and the server closes the connection (it will
    // not read the rest of the payload).
    let big = "x".repeat(512);
    let resp = client
        .request("POST", "/v1/run", &big)
        .expect("oversized request");
    assert_eq!(resp.status, 413, "{}", resp.body);
    assert!(resp.body.contains("\"code\": \"body_too_large\""));
    assert_eq!(resp.header("connection"), Some("close"));

    server.stop();
}
