//! Architectural registers.
//!
//! Table 1 of the paper specifies a register file of 34 integer and 32
//! floating-point registers (MIPS: 32 GPRs plus HI/LO). Registers exist in
//! the IR purely for dependence tracking and register-file/rename energy
//! accounting; they carry no values.

use std::fmt;

/// Number of architectural integer registers (32 GPRs + HI + LO).
pub const INT_REGS: u8 = 34;

/// Number of architectural floating-point registers.
pub const FP_REGS: u8 = 32;

/// An architectural register: integer indices `0..34`, then floating-point
/// indices `34..66` in a single dense namespace.
///
/// # Examples
///
/// ```
/// use softwatt_isa::Reg;
///
/// let r4 = Reg::int(4);
/// let f2 = Reg::fp(2);
/// assert!(!r4.is_fp());
/// assert!(f2.is_fp());
/// assert_ne!(r4.index(), f2.index());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Total number of architectural registers across both files.
    pub const COUNT: usize = (INT_REGS + FP_REGS) as usize;

    /// Integer register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 34`.
    #[inline]
    pub fn int(i: u8) -> Reg {
        assert!(i < INT_REGS, "integer register index out of range");
        Reg(i)
    }

    /// Floating-point register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[inline]
    pub fn fp(i: u8) -> Reg {
        assert!(i < FP_REGS, "fp register index out of range");
        Reg(INT_REGS + i)
    }

    /// Dense index across both register files, in `0..Reg::COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this register belongs to the floating-point file.
    #[inline]
    pub fn is_fp(self) -> bool {
        self.0 >= INT_REGS
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.0 - INT_REGS)
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_are_disjoint() {
        for i in 0..INT_REGS {
            assert!(!Reg::int(i).is_fp());
        }
        for i in 0..FP_REGS {
            assert!(Reg::fp(i).is_fp());
        }
        assert_ne!(Reg::int(0).index(), Reg::fp(0).index());
    }

    #[test]
    fn indices_are_dense() {
        assert_eq!(Reg::int(0).index(), 0);
        assert_eq!(Reg::int(INT_REGS - 1).index(), (INT_REGS - 1) as usize);
        assert_eq!(Reg::fp(0).index(), INT_REGS as usize);
        assert_eq!(Reg::fp(FP_REGS - 1).index(), Reg::COUNT - 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Reg::int(3).to_string(), "r3");
        assert_eq!(Reg::fp(7).to_string(), "f7");
    }

    #[test]
    #[should_panic(expected = "integer register index out of range")]
    fn int_bounds_checked() {
        let _ = Reg::int(INT_REGS);
    }

    #[test]
    #[should_panic(expected = "fp register index out of range")]
    fn fp_bounds_checked() {
        let _ = Reg::fp(FP_REGS);
    }
}
