//! Virtual address-space conventions.
//!
//! The simulated machine follows the MIPS convention the paper's IRIX
//! kernel relied on: user addresses live in the lower half of the address
//! space and are translated through the software-managed TLB; kernel
//! addresses (`0x8000_0000` and above, the `kseg` segments) are directly
//! mapped and bypass the TLB. This is what lets the `utlb` handler itself
//! run without taking TLB misses.

/// Log2 of the page size (4 KiB pages, as on MIPS R10000 under IRIX).
pub const PAGE_SHIFT: u32 = 12;

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// First address of the directly-mapped kernel segment.
pub const KSEG_BASE: u64 = 0x8000_0000;

/// Whether `vaddr` is a kernel (directly-mapped, TLB-bypassing) address.
///
/// # Examples
///
/// ```
/// use softwatt_isa::is_kernel_addr;
/// assert!(!is_kernel_addr(0x0040_0000));
/// assert!(is_kernel_addr(0x8000_1000));
/// ```
#[inline]
pub fn is_kernel_addr(vaddr: u64) -> bool {
    vaddr >= KSEG_BASE
}

/// Virtual page number of `vaddr`.
///
/// # Examples
///
/// ```
/// use softwatt_isa::{page_number, PAGE_SIZE};
/// assert_eq!(page_number(0), 0);
/// assert_eq!(page_number(PAGE_SIZE), 1);
/// assert_eq!(page_number(PAGE_SIZE + 17), 1);
/// ```
#[inline]
pub fn page_number(vaddr: u64) -> u64 {
    vaddr >> PAGE_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kseg_boundary() {
        assert!(!is_kernel_addr(KSEG_BASE - 1));
        assert!(is_kernel_addr(KSEG_BASE));
        assert!(is_kernel_addr(u64::MAX));
    }

    #[test]
    fn page_numbers_partition_the_space() {
        assert_eq!(page_number(PAGE_SIZE - 1), 0);
        assert_eq!(page_number(PAGE_SIZE), 1);
        assert_eq!(page_number(10 * PAGE_SIZE + 5), 10);
    }
}
