//! Statistical instruction-mix generation.
//!
//! Both the kernel-service bodies (`softwatt-os`) and the SPEC JVM98-like
//! user workloads (`softwatt-workloads`) synthesize instruction streams from
//! the same primitive: a [`MixGenerator`] that emits instructions matching a
//! target operation mix, dependence density (which controls achievable ILP
//! and hence IPC on the out-of-order model), branch-outcome stability (which
//! controls predictor accuracy), and code/data locality (which controls
//! cache and TLB behavior).
//!
//! This is the calibration surface described in `DESIGN.md` §6: generators
//! are tuned only on these *cycle-side* knobs; every energy number is
//! computed downstream by the analytical power models.

use rand::Rng;

use crate::{Instr, OpClass, Reg};

/// Memory reference pattern: a hot subset inside a larger working set.
///
/// `hot_frac` of accesses fall uniformly in `[base, base + hot_bytes)`;
/// the rest fall uniformly in `[base, base + span_bytes)`. Making
/// `span_bytes` exceed the cache (or the TLB reach) produces misses at a
/// controllable rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataPattern {
    /// Region base address.
    pub base: u64,
    /// Hot-subset size in bytes.
    pub hot_bytes: u64,
    /// Full working-set size in bytes.
    pub span_bytes: u64,
    /// Fraction of accesses that stay in the hot subset.
    pub hot_frac: f64,
}

impl DataPattern {
    /// A pattern whose accesses all fall in one small region.
    pub fn uniform(base: u64, span_bytes: u64) -> DataPattern {
        DataPattern {
            base,
            hot_bytes: span_bytes,
            span_bytes,
            hot_frac: 1.0,
        }
    }

    /// Draws an access address.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let span = if rng.gen::<f64>() < self.hot_frac {
            self.hot_bytes
        } else {
            self.span_bytes
        };
        // 8-byte aligned accesses.
        self.base + (rng.gen_range(0..span.max(8)) & !7)
    }
}

/// Target statistical properties of an instruction stream.
///
/// Fractions need not sum to 1; the remainder becomes integer ALU work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixSpec {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of conditional branches.
    pub branch: f64,
    /// Fraction of floating-point operations (split add/mul internally).
    pub fp: f64,
    /// Fraction of integer multiplies.
    pub mul: f64,
    /// Probability that an instruction reads the previous instruction's
    /// result (serial-chain pressure; higher = lower ILP).
    pub dep_prob: f64,
    /// Per-site probability that a branch goes its usual direction
    /// (1.0 = perfectly stable, learned by the BHT; 0.5 = random).
    pub branch_stability: f64,
    /// Code region base PC.
    pub code_base: u64,
    /// Instructions per loop body (controls I-cache footprint per loop).
    pub loop_len: u32,
    /// Number of distinct loops the stream cycles through.
    pub n_loops: u32,
    /// Instructions executed in one loop before moving to the next.
    pub stay_per_loop: u32,
    /// Data access pattern.
    pub data: DataPattern,
}

impl MixSpec {
    /// A cache-friendly, ILP-rich mix (used as a test baseline).
    pub fn compute_bound(code_base: u64, data_base: u64) -> MixSpec {
        MixSpec {
            load: 0.22,
            store: 0.08,
            branch: 0.12,
            fp: 0.05,
            mul: 0.02,
            dep_prob: 0.25,
            branch_stability: 0.95,
            code_base,
            loop_len: 64,
            n_loops: 4,
            stay_per_loop: 4096,
            data: DataPattern::uniform(data_base, 16 * 1024),
        }
    }

    /// Validates that fractions form a sub-distribution.
    ///
    /// # Errors
    ///
    /// Returns a description if any fraction is outside `[0, 1]` or the
    /// fractions sum past 1.
    pub fn validate(&self) -> Result<(), &'static str> {
        let parts = [self.load, self.store, self.branch, self.fp, self.mul];
        if parts.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err("mix fractions must lie in [0, 1]");
        }
        if parts.iter().sum::<f64>() > 1.0 + 1e-9 {
            return Err("mix fractions must sum to at most 1");
        }
        if !(0.0..=1.0).contains(&self.dep_prob) || !(0.0..=1.0).contains(&self.branch_stability) {
            return Err("probabilities must lie in [0, 1]");
        }
        if self.loop_len == 0 || self.n_loops == 0 || self.stay_per_loop == 0 {
            return Err("loop structure must be non-degenerate");
        }
        Ok(())
    }
}

/// Emits an unbounded instruction stream matching a [`MixSpec`].
///
/// The generator is deterministic given the caller-supplied RNG, which is
/// how whole-simulation reproducibility is achieved.
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use softwatt_isa::{MixGenerator, MixSpec};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut g = MixGenerator::new(MixSpec::compute_bound(0x1000, 0x10_0000));
/// let i = g.next_instr_with(&mut rng);
/// i.validate().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct MixGenerator {
    spec: MixSpec,
    emitted: u64,
    last_dest: Option<Reg>,
    reg_cursor: u8,
    // Incremental decomposition of `emitted` (the stream position), kept so
    // the per-instruction PC needs no divisions:
    // `within_loop = emitted % loop_len`,
    // `loop_idx = (emitted / stay_per_loop) % n_loops`,
    // `stay_count = emitted % stay_per_loop`.
    within_loop: u32,
    stay_count: u32,
    loop_idx: u32,
}

impl MixGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`MixSpec::validate`].
    pub fn new(spec: MixSpec) -> MixGenerator {
        spec.validate().expect("invalid mix spec");
        MixGenerator {
            spec,
            emitted: 0,
            last_dest: None,
            reg_cursor: 1,
            within_loop: 0,
            stay_count: 0,
            loop_idx: 0,
        }
    }

    /// The spec in use.
    pub fn spec(&self) -> &MixSpec {
        &self.spec
    }

    fn pc(&self) -> u64 {
        let s = &self.spec;
        s.code_base
            + u64::from(self.loop_idx) * u64::from(s.loop_len) * 4
            + u64::from(self.within_loop) * 4
    }

    /// Advances the incremental position counters past one emission.
    #[inline]
    fn advance_position(&mut self) {
        self.emitted += 1;
        self.within_loop += 1;
        if self.within_loop == self.spec.loop_len {
            self.within_loop = 0;
        }
        self.stay_count += 1;
        if self.stay_count == self.spec.stay_per_loop {
            self.stay_count = 0;
            self.loop_idx += 1;
            if self.loop_idx == self.spec.n_loops {
                self.loop_idx = 0;
            }
        }
    }

    fn next_reg(&mut self) -> Reg {
        let r = Reg::int(self.reg_cursor);
        self.reg_cursor = if self.reg_cursor >= 16 {
            1
        } else {
            self.reg_cursor + 1
        };
        r
    }

    fn src<R: Rng>(&mut self, rng: &mut R) -> Option<Reg> {
        if rng.gen::<f64>() < self.spec.dep_prob {
            self.last_dest.or(Some(Reg::int(1)))
        } else {
            Some(Reg::int(rng.gen_range(1..17)))
        }
    }

    /// Emits the next instruction using the supplied RNG.
    pub fn next_instr_with<R: Rng>(&mut self, rng: &mut R) -> Instr {
        let s = self.spec;
        let pc = self.pc();
        let at_loop_end = self.within_loop + 1 == s.loop_len;
        self.advance_position();

        let roll = rng.gen::<f64>();
        let instr = if at_loop_end || roll < s.branch {
            // Loop back-edge (stable) or data-dependent branch.
            let site_usual_taken = at_loop_end;
            let stable = rng.gen::<f64>() < s.branch_stability;
            let taken = if stable {
                site_usual_taken
            } else {
                !site_usual_taken
            };
            let target = if taken {
                pc.wrapping_sub(u64::from(s.loop_len) * 4 - 4)
            } else {
                pc + 4
            };
            let src = self.src(rng);
            self.last_dest = None;
            Instr::branch(pc, src, taken, target)
        } else if roll < s.branch + s.load {
            let dest = self.next_reg();
            let addr = s.data.sample(rng);
            let base = self.src(rng);
            self.last_dest = Some(dest);
            Instr::load(pc, dest, base, addr)
        } else if roll < s.branch + s.load + s.store {
            let addr = s.data.sample(rng);
            let value = self.src(rng);
            self.last_dest = None;
            Instr::store(pc, value, Some(Reg::int(29)), addr)
        } else if roll < s.branch + s.load + s.store + s.fp {
            let dest = Reg::fp(rng.gen_range(0..8));
            let op = if rng.gen::<f64>() < 0.5 {
                OpClass::FpAdd
            } else {
                OpClass::FpMul
            };
            let i = Instr::arith(op, pc, dest, Some(Reg::fp(rng.gen_range(0..8))), None);
            self.last_dest = None; // fp chains tracked coarsely
            i
        } else if roll < s.branch + s.load + s.store + s.fp + s.mul {
            let dest = self.next_reg();
            let src = self.src(rng);
            self.last_dest = Some(dest);
            Instr::arith(OpClass::IntMul, pc, dest, src, None)
        } else {
            let dest = self.next_reg();
            let s1 = self.src(rng);
            let s2 = Some(Reg::int(rng.gen_range(1..17)));
            self.last_dest = Some(dest);
            Instr::alu(pc, dest, s1, s2)
        };
        debug_assert!(instr.validate().is_ok());
        instr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_mix(spec: MixSpec, n: usize, seed: u64) -> Vec<Instr> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = MixGenerator::new(spec);
        (0..n).map(|_| g.next_instr_with(&mut rng)).collect()
    }

    #[test]
    fn fractions_are_respected_statistically() {
        let spec = MixSpec::compute_bound(0x1000, 0x100_0000);
        let instrs = sample_mix(spec, 50_000, 1);
        let loads = instrs.iter().filter(|i| i.op == OpClass::Load).count() as f64;
        let stores = instrs.iter().filter(|i| i.op == OpClass::Store).count() as f64;
        let branches = instrs
            .iter()
            .filter(|i| i.op == OpClass::BranchCond)
            .count() as f64;
        let n = instrs.len() as f64;
        assert!(
            (loads / n - spec.load).abs() < 0.02,
            "load frac {}",
            loads / n
        );
        assert!((stores / n - spec.store).abs() < 0.02);
        // Branch fraction includes forced loop back-edges.
        assert!(branches / n >= spec.branch - 0.02);
    }

    #[test]
    fn pcs_cycle_within_loops() {
        let spec = MixSpec::compute_bound(0x4000, 0x100_0000);
        let instrs = sample_mix(spec, 10_000, 2);
        let span = u64::from(spec.loop_len) * 4 * u64::from(spec.n_loops);
        for i in &instrs {
            assert!(i.pc >= spec.code_base && i.pc < spec.code_base + span);
        }
    }

    #[test]
    fn data_addresses_stay_in_region() {
        let spec = MixSpec::compute_bound(0x1000, 0x50_0000);
        let instrs = sample_mix(spec, 20_000, 3);
        for i in instrs.iter().filter(|i| i.mem_addr.is_some()) {
            let a = i.mem_addr.unwrap();
            assert!(a >= 0x50_0000 && a < 0x50_0000 + spec.data.span_bytes + 8);
        }
    }

    #[test]
    fn determinism_under_same_seed() {
        let spec = MixSpec::compute_bound(0x1000, 0x10_0000);
        let a = sample_mix(spec, 1000, 42);
        let b = sample_mix(spec, 1000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = MixSpec::compute_bound(0x1000, 0x10_0000);
        let a = sample_mix(spec, 1000, 1);
        let b = sample_mix(spec, 1000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn loop_back_edges_are_mostly_taken_when_stable() {
        let mut spec = MixSpec::compute_bound(0x1000, 0x10_0000);
        spec.branch = 0.0; // only back-edges
        spec.branch_stability = 1.0;
        let instrs = sample_mix(spec, 10_000, 4);
        let backs: Vec<_> = instrs
            .iter()
            .filter(|i| i.op == OpClass::BranchCond)
            .collect();
        assert!(!backs.is_empty());
        assert!(backs.iter().all(|b| b.taken));
    }

    #[test]
    fn all_emitted_instructions_validate() {
        let spec = MixSpec::compute_bound(0x1000, 0x10_0000);
        for i in sample_mix(spec, 5_000, 5) {
            i.validate().unwrap();
        }
    }

    #[test]
    fn hot_pattern_concentrates_accesses() {
        let p = DataPattern {
            base: 0,
            hot_bytes: 1024,
            span_bytes: 1024 * 1024,
            hot_frac: 0.9,
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| p.sample(&mut rng) < 1024).count();
        assert!(hits > 8_500, "expected ~90% hot accesses, got {hits}");
    }

    #[test]
    #[should_panic(expected = "invalid mix spec")]
    fn rejects_oversubscribed_mix() {
        let mut spec = MixSpec::compute_bound(0, 0);
        spec.load = 0.9;
        spec.store = 0.9;
        let _ = MixGenerator::new(spec);
    }
}
