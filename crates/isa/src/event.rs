//! Events raised by the CPU models back to the OS model.

use crate::SyscallKind;

/// An architectural event the OS model must handle.
///
/// The CPU raises at most one event per cycle; the OS reacts by switching
/// the instruction stream it feeds the CPU (e.g. into the `utlb` handler or
/// a system-call service body).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuEvent {
    /// A system-call instruction retired; the OS should enter the matching
    /// service. System calls serialize the pipeline, so the machine is
    /// drained when this fires.
    SyscallRetired(SyscallKind),
    /// A data access missed the software-managed TLB; the OS should run the
    /// `utlb` handler for the faulting address. The pipeline has been
    /// flushed.
    TlbMiss {
        /// Faulting virtual address.
        vaddr: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileRef;

    #[test]
    fn events_compare_by_payload() {
        assert_eq!(
            CpuEvent::TlbMiss { vaddr: 0x1000 },
            CpuEvent::TlbMiss { vaddr: 0x1000 }
        );
        assert_ne!(
            CpuEvent::TlbMiss { vaddr: 0x1000 },
            CpuEvent::TlbMiss { vaddr: 0x2000 }
        );
        let s = CpuEvent::SyscallRetired(SyscallKind::Open { file: FileRef(1) });
        assert_ne!(s, CpuEvent::TlbMiss { vaddr: 0 });
    }
}
