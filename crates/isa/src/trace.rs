//! Instruction-trace recording and replay.
//!
//! Synthetic streams are regenerable from a seed, but traces make runs
//! portable: record a workload's user-instruction stream once, then replay
//! the identical stream under different machine configurations (the
//! classic trace-driven methodology SimOS-era studies used for
//! apples-to-apples machine comparisons).
//!
//! The format is a compact little-endian binary: a magic header, then one
//! variable-length record per instruction.

use std::io::{self, Read, Write};

use softwatt_stats::StatsCollector;

use crate::{FileRef, Instr, InstrSource, OpClass, Reg, SyscallKind};

const MAGIC: &[u8; 8] = b"SWTRACE1";
const NO_REG: u8 = 0xff;

// Flag bits of the per-record header byte.
const F_TAKEN: u8 = 1 << 0;
const F_MEM: u8 = 1 << 1;
const F_TARGET: u8 = 1 << 2;
const F_SYSCALL: u8 = 1 << 3;

fn op_code(op: OpClass) -> u8 {
    OpClass::ALL
        .iter()
        .position(|&o| o == op)
        .expect("op in ALL") as u8
}

fn op_from(code: u8) -> io::Result<OpClass> {
    OpClass::ALL
        .get(usize::from(code))
        .copied()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad opcode"))
}

fn reg_code(reg: Option<Reg>) -> u8 {
    reg.map_or(NO_REG, |r| r.index() as u8)
}

fn reg_from(code: u8) -> io::Result<Option<Reg>> {
    if code == NO_REG {
        return Ok(None);
    }
    let i = usize::from(code);
    if i < crate::reg::INT_REGS as usize {
        Ok(Some(Reg::int(code)))
    } else if i < Reg::COUNT {
        Ok(Some(Reg::fp(code - crate::reg::INT_REGS)))
    } else {
        Err(io::Error::new(io::ErrorKind::InvalidData, "bad register"))
    }
}

fn syscall_code(kind: SyscallKind) -> (u8, u32, u64, u32) {
    match kind {
        SyscallKind::Read {
            file,
            offset,
            bytes,
        } => (0, file.0, offset, bytes),
        SyscallKind::Write { file, bytes } => (1, file.0, 0, bytes),
        SyscallKind::Open { file } => (2, file.0, 0, 0),
        SyscallKind::Xstat { file } => (3, file.0, 0, 0),
        SyscallKind::DuPoll => (4, 0, 0, 0),
        SyscallKind::Bsd => (5, 0, 0, 0),
    }
}

fn syscall_from(code: u8, file: u32, offset: u64, bytes: u32) -> io::Result<SyscallKind> {
    Ok(match code {
        0 => SyscallKind::Read {
            file: FileRef(file),
            offset,
            bytes,
        },
        1 => SyscallKind::Write {
            file: FileRef(file),
            bytes,
        },
        2 => SyscallKind::Open {
            file: FileRef(file),
        },
        3 => SyscallKind::Xstat {
            file: FileRef(file),
        },
        4 => SyscallKind::DuPoll,
        5 => SyscallKind::Bsd,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad syscall")),
    })
}

/// Writes instructions to a binary trace.
///
/// # Examples
///
/// ```
/// use softwatt_isa::trace::{TraceReader, TraceWriter};
/// use softwatt_isa::{Instr, InstrSource, Reg};
/// use softwatt_stats::{Clocking, StatsCollector};
///
/// # fn main() -> std::io::Result<()> {
/// let mut buf = Vec::new();
/// let mut writer = TraceWriter::new(&mut buf)?;
/// writer.record(&Instr::alu(0x10, Reg::int(1), None, None))?;
/// writer.record(&Instr::load(0x14, Reg::int(2), Some(Reg::int(1)), 0x1000))?;
/// drop(writer);
///
/// let mut stats = StatsCollector::new(Clocking::default(), 100);
/// let mut reader = TraceReader::new(&buf[..])?;
/// assert_eq!(reader.next_instr(&mut stats).unwrap().pc, 0x10);
/// assert_eq!(reader.next_instr(&mut stats).unwrap().mem_addr, Some(0x1000));
/// assert!(reader.next_instr(&mut stats).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    recorded: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn new(mut out: W) -> io::Result<TraceWriter<W>> {
        out.write_all(MAGIC)?;
        Ok(TraceWriter { out, recorded: 0 })
    }

    /// Appends one instruction.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn record(&mut self, instr: &Instr) -> io::Result<()> {
        let mut flags = 0u8;
        if instr.taken {
            flags |= F_TAKEN;
        }
        if instr.mem_addr.is_some() {
            flags |= F_MEM;
        }
        if instr.op.is_branch() {
            flags |= F_TARGET;
        }
        if instr.syscall.is_some() {
            flags |= F_SYSCALL;
        }
        self.out.write_all(&[
            op_code(instr.op),
            flags,
            reg_code(instr.dest),
            reg_code(instr.src1),
            reg_code(instr.src2),
        ])?;
        self.out.write_all(&instr.pc.to_le_bytes())?;
        if let Some(addr) = instr.mem_addr {
            self.out.write_all(&addr.to_le_bytes())?;
        }
        if instr.op.is_branch() {
            self.out.write_all(&instr.target.to_le_bytes())?;
        }
        if let Some(kind) = instr.syscall {
            let (code, file, offset, bytes) = syscall_code(kind);
            self.out.write_all(&[code])?;
            self.out.write_all(&file.to_le_bytes())?;
            self.out.write_all(&offset.to_le_bytes())?;
            self.out.write_all(&bytes.to_le_bytes())?;
        }
        self.recorded += 1;
        Ok(())
    }

    /// Instructions recorded so far.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }
}

/// Replays a binary trace as an [`InstrSource`].
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating the header.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or a wrong magic number.
    pub fn new(mut input: R) -> io::Result<TraceReader<R>> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a softwatt trace",
            ));
        }
        Ok(TraceReader { input, done: false })
    }

    fn read_instr(&mut self) -> io::Result<Option<Instr>> {
        let mut head = [0u8; 5];
        match self.input.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let op = op_from(head[0])?;
        let flags = head[1];
        let mut u64_buf = [0u8; 8];
        self.input.read_exact(&mut u64_buf)?;
        let pc = u64::from_le_bytes(u64_buf);
        let mem_addr = if flags & F_MEM != 0 {
            self.input.read_exact(&mut u64_buf)?;
            Some(u64::from_le_bytes(u64_buf))
        } else {
            None
        };
        let target = if flags & F_TARGET != 0 {
            self.input.read_exact(&mut u64_buf)?;
            u64::from_le_bytes(u64_buf)
        } else {
            0
        };
        let syscall = if flags & F_SYSCALL != 0 {
            let mut code = [0u8; 1];
            self.input.read_exact(&mut code)?;
            let mut u32_buf = [0u8; 4];
            self.input.read_exact(&mut u32_buf)?;
            let file = u32::from_le_bytes(u32_buf);
            self.input.read_exact(&mut u64_buf)?;
            let offset = u64::from_le_bytes(u64_buf);
            self.input.read_exact(&mut u32_buf)?;
            let bytes = u32::from_le_bytes(u32_buf);
            Some(syscall_from(code[0], file, offset, bytes)?)
        } else {
            None
        };
        let instr = Instr {
            op,
            dest: reg_from(head[2])?,
            src1: reg_from(head[3])?,
            src2: reg_from(head[4])?,
            pc,
            mem_addr,
            taken: flags & F_TAKEN != 0,
            target,
            syscall,
        };
        instr
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(Some(instr))
    }
}

impl<R: Read> InstrSource for TraceReader<R> {
    fn next_instr(&mut self, _stats: &mut StatsCollector) -> Option<Instr> {
        if self.done {
            return None;
        }
        match self.read_instr() {
            Ok(Some(i)) => Some(i),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(_) => {
                // A truncated/corrupt tail ends the trace; the machine
                // treats it as program exit.
                self.done = true;
                None
            }
        }
    }
}

/// Wraps any source, recording everything it yields.
#[derive(Debug)]
pub struct Recording<S, W: Write> {
    inner: S,
    writer: TraceWriter<W>,
}

impl<S: InstrSource, W: Write> Recording<S, W> {
    /// Creates a recording wrapper.
    ///
    /// # Errors
    ///
    /// Propagates header-write failures.
    pub fn new(inner: S, out: W) -> io::Result<Recording<S, W>> {
        Ok(Recording {
            inner,
            writer: TraceWriter::new(out)?,
        })
    }

    /// Instructions recorded so far.
    pub fn recorded(&self) -> u64 {
        self.writer.recorded()
    }
}

impl<S: InstrSource, W: Write> InstrSource for Recording<S, W> {
    fn next_instr(&mut self, stats: &mut StatsCollector) -> Option<Instr> {
        let instr = self.inner.next_instr(stats)?;
        // Recording failure must not corrupt the run; drop the record.
        let _ = self.writer.record(&instr);
        Some(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecSource;
    use softwatt_stats::Clocking;

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::alu(0x100, Reg::int(3), Some(Reg::int(4)), Some(Reg::int(5))),
            Instr::load(0x104, Reg::int(6), Some(Reg::int(29)), 0x2000_0000),
            Instr::store(0x108, Some(Reg::int(6)), None, 0x2000_0008),
            Instr::branch(0x10c, Some(Reg::int(6)), true, 0x100),
            Instr::jump(0x110, 0x4000),
            Instr::call(0x114, 0x8000),
            Instr::ret(0x118, 0x118),
            Instr::syscall(
                0x11c,
                SyscallKind::Read {
                    file: FileRef(77),
                    offset: 4096,
                    bytes: 8192,
                },
            ),
            Instr::syscall(0x120, SyscallKind::Bsd),
            Instr::sync(0x124, 0x9000_0000),
            Instr::eret(0x128),
            Instr::arith(OpClass::FpMul, 0x12c, Reg::fp(2), Some(Reg::fp(3)), None),
            Instr::nop(0x130),
        ]
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let instrs = sample_instrs();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for i in &instrs {
            w.record(i).unwrap();
        }
        assert_eq!(w.recorded(), instrs.len() as u64);

        let mut stats = StatsCollector::new(Clocking::default(), 100);
        let mut r = TraceReader::new(&buf[..]).unwrap();
        let mut back = Vec::new();
        while let Some(i) = r.next_instr(&mut stats) {
            back.push(i);
        }
        // `target` of non-branches is not serialized; normalize.
        let normalize = |mut i: Instr| {
            if !i.op.is_branch() {
                i.target = 0;
            }
            i
        };
        let expect: Vec<Instr> = instrs.into_iter().map(normalize).collect();
        assert_eq!(back, expect);
    }

    #[test]
    fn recording_wrapper_is_transparent() {
        let instrs = sample_instrs();
        let mut buf = Vec::new();
        let mut stats = StatsCollector::new(Clocking::default(), 100);
        {
            let mut rec = Recording::new(VecSource::new(instrs.clone()), &mut buf).unwrap();
            let mut n = 0;
            while rec.next_instr(&mut stats).is_some() {
                n += 1;
            }
            assert_eq!(n, instrs.len());
            assert_eq!(rec.recorded(), instrs.len() as u64);
        }
        let mut r = TraceReader::new(&buf[..]).unwrap();
        assert_eq!(r.next_instr(&mut stats).unwrap().pc, 0x100);
    }

    #[test]
    fn rejects_wrong_magic() {
        assert!(TraceReader::new(&b"NOTATRACE"[..]).is_err());
    }

    #[test]
    fn truncated_trace_ends_cleanly() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for i in sample_instrs() {
            w.record(&i).unwrap();
        }
        buf.truncate(buf.len() - 3); // chop mid-record
        let mut stats = StatsCollector::new(Clocking::default(), 100);
        let mut r = TraceReader::new(&buf[..]).unwrap();
        let mut n = 0;
        while r.next_instr(&mut stats).is_some() {
            n += 1;
        }
        assert_eq!(
            n,
            sample_instrs().len() - 1,
            "the torn final record is dropped"
        );
    }
}
