//! System-call requests carried by [`crate::OpClass::Syscall`] instructions.
//!
//! Only the externally-invoked services of the paper's Table 4 appear here
//! (`read`, `write`, `open`, `xstat`, `du_poll`, `BSD`); internal services
//! (`utlb`, `vfault`, `demand_zero`, `cacheflush`, `tlb_miss`, `clock`) are
//! triggered by hardware events or by other services inside the OS model.

use std::fmt;

/// Handle to a synthetic file known to the OS model's file cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileRef(pub u32);

impl fmt::Display for FileRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// The system call a workload instruction requests.
///
/// # Examples
///
/// ```
/// use softwatt_isa::{FileRef, SyscallKind};
///
/// let s = SyscallKind::Read { file: FileRef(3), offset: 8192, bytes: 4096 };
/// assert_eq!(s.name(), "read");
/// assert_eq!(s.transfer_bytes(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    /// Read `bytes` from `file` at `offset`; may miss the file cache and
    /// block on the disk.
    Read {
        file: FileRef,
        offset: u64,
        bytes: u32,
    },
    /// Write `bytes` to `file` (write-behind through the file cache).
    Write { file: FileRef, bytes: u32 },
    /// Open a file (path lookup).
    Open { file: FileRef },
    /// File status query (`xstat`).
    Xstat { file: FileRef },
    /// Device poll (`du_poll`).
    DuPoll,
    /// Miscellaneous BSD-flavoured call (socket/ioctl bucket of Table 4).
    Bsd,
}

impl SyscallKind {
    /// Kernel-facing name of the call (matches the paper's Table 4 rows).
    pub fn name(self) -> &'static str {
        match self {
            SyscallKind::Read { .. } => "read",
            SyscallKind::Write { .. } => "write",
            SyscallKind::Open { .. } => "open",
            SyscallKind::Xstat { .. } => "xstat",
            SyscallKind::DuPoll => "du_poll",
            SyscallKind::Bsd => "BSD",
        }
    }

    /// Bytes moved by the call (zero for non-transfer calls). The paper's
    /// Table 5 attributes the high per-invocation energy variance of I/O
    /// calls to exactly this data dependence.
    pub fn transfer_bytes(self) -> u32 {
        match self {
            SyscallKind::Read { bytes, .. } | SyscallKind::Write { bytes, .. } => bytes,
            _ => 0,
        }
    }
}

impl fmt::Display for SyscallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_rows() {
        assert_eq!(SyscallKind::Bsd.name(), "BSD");
        assert_eq!(SyscallKind::DuPoll.name(), "du_poll");
        assert_eq!(SyscallKind::Open { file: FileRef(0) }.name(), "open");
    }

    #[test]
    fn transfer_bytes_only_for_io() {
        let r = SyscallKind::Read {
            file: FileRef(1),
            offset: 0,
            bytes: 512,
        };
        let w = SyscallKind::Write {
            file: FileRef(1),
            bytes: 256,
        };
        assert_eq!(r.transfer_bytes(), 512);
        assert_eq!(w.transfer_bytes(), 256);
        assert_eq!(SyscallKind::Bsd.transfer_bytes(), 0);
    }
}
