//! Instruction IR for the SoftWatt full-system simulator.
//!
//! The original SoftWatt ran real MIPS binaries under SimOS. This
//! reproduction replaces binaries with *synthetic instruction streams* whose
//! statistical properties are calibrated to the paper's workloads (see
//! `DESIGN.md` §2/§6). This crate defines the contract between the three
//! parties involved:
//!
//! - **workload generators** (`softwatt-workloads`) and **kernel-service
//!   bodies** (`softwatt-os`) produce [`Instr`]s through the [`InstrSource`]
//!   trait;
//! - **CPU models** (`softwatt-cpu`) consume instructions, simulate timing,
//!   and raise [`CpuEvent`]s (system calls, TLB misses) back to the OS;
//! - the **OS model** (`softwatt-os`) multiplexes sources (user program,
//!   kernel services, idle loop) behind a single [`InstrSource`] facade.
//!
//! Instructions carry everything the machine models need: an operation
//! class, register operands (for dependence tracking), a program counter
//! (for instruction-cache and branch-predictor behavior), a memory address
//! (for the data cache and TLB), and branch outcome/target.
//!
//! # Examples
//!
//! ```
//! use softwatt_isa::{Instr, OpClass, Reg};
//!
//! let add = Instr::alu(0x1000, Reg::int(4), Some(Reg::int(5)), Some(Reg::int(6)));
//! assert_eq!(add.op, OpClass::IntAlu);
//! assert!(!add.op.is_mem());
//! ```

pub mod addr;
pub mod event;
pub mod instr;
pub mod mixgen;
pub mod op;
pub mod reg;
pub mod stream;
pub mod syscall;
pub mod trace;

pub use addr::{is_kernel_addr, page_number, PAGE_SHIFT, PAGE_SIZE};
pub use event::CpuEvent;
pub use instr::Instr;
pub use mixgen::{DataPattern, MixGenerator, MixSpec};
pub use op::{FuKind, OpClass};
pub use reg::Reg;
pub use stream::{InstrSource, VecSource};
pub use syscall::{FileRef, SyscallKind};
pub use trace::{Recording, TraceReader, TraceWriter};
