//! The instruction record.

use crate::{OpClass, Reg, SyscallKind};

/// One synthetic instruction.
///
/// Fields are public: an `Instr` is passive data flowing from generators to
/// the machine models. Use the constructors to build well-formed instances;
/// [`Instr::validate`] checks the invariants the machine models rely on.
///
/// # Examples
///
/// ```
/// use softwatt_isa::{Instr, OpClass, Reg};
///
/// let ld = Instr::load(0x4000, Reg::int(8), Some(Reg::int(29)), 0x7fff_1000);
/// assert_eq!(ld.op, OpClass::Load);
/// assert_eq!(ld.mem_addr, Some(0x7fff_1000));
/// ld.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instr {
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if the instruction produces a value.
    pub dest: Option<Reg>,
    /// First source operand.
    pub src1: Option<Reg>,
    /// Second source operand.
    pub src2: Option<Reg>,
    /// Program counter (drives I-cache and predictor behavior).
    pub pc: u64,
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Actual outcome for conditional branches (`true` = taken).
    pub taken: bool,
    /// Branch/jump target (also the return address for calls).
    pub target: u64,
    /// System-call request for [`OpClass::Syscall`] instructions.
    pub syscall: Option<SyscallKind>,
}

impl Instr {
    fn base(op: OpClass, pc: u64) -> Instr {
        Instr {
            op,
            dest: None,
            src1: None,
            src2: None,
            pc,
            mem_addr: None,
            taken: false,
            target: 0,
            syscall: None,
        }
    }

    /// An integer ALU instruction.
    pub fn alu(pc: u64, dest: Reg, src1: Option<Reg>, src2: Option<Reg>) -> Instr {
        Instr {
            dest: Some(dest),
            src1,
            src2,
            ..Instr::base(OpClass::IntAlu, pc)
        }
    }

    /// An arithmetic instruction of an explicit class (mul/div/fp...).
    pub fn arith(op: OpClass, pc: u64, dest: Reg, src1: Option<Reg>, src2: Option<Reg>) -> Instr {
        debug_assert!(!op.is_mem() && !op.is_branch() && op != OpClass::Syscall);
        Instr {
            dest: Some(dest),
            src1,
            src2,
            ..Instr::base(op, pc)
        }
    }

    /// A load from `addr` into `dest`, with optional base register `base`.
    pub fn load(pc: u64, dest: Reg, base: Option<Reg>, addr: u64) -> Instr {
        Instr {
            dest: Some(dest),
            src1: base,
            mem_addr: Some(addr),
            ..Instr::base(OpClass::Load, pc)
        }
    }

    /// A store of `value` to `addr`, with optional base register `base`.
    pub fn store(pc: u64, value: Option<Reg>, base: Option<Reg>, addr: u64) -> Instr {
        Instr {
            src1: value,
            src2: base,
            mem_addr: Some(addr),
            ..Instr::base(OpClass::Store, pc)
        }
    }

    /// A conditional branch with outcome `taken` and target `target`.
    pub fn branch(pc: u64, src1: Option<Reg>, taken: bool, target: u64) -> Instr {
        Instr {
            src1,
            taken,
            target,
            ..Instr::base(OpClass::BranchCond, pc)
        }
    }

    /// An unconditional jump.
    pub fn jump(pc: u64, target: u64) -> Instr {
        Instr {
            taken: true,
            target,
            ..Instr::base(OpClass::Jump, pc)
        }
    }

    /// A call (always taken; pushes the return-address stack).
    pub fn call(pc: u64, target: u64) -> Instr {
        Instr {
            taken: true,
            target,
            ..Instr::base(OpClass::Call, pc)
        }
    }

    /// A return (always taken; pops the return-address stack).
    pub fn ret(pc: u64, target: u64) -> Instr {
        Instr {
            taken: true,
            target,
            ..Instr::base(OpClass::Return, pc)
        }
    }

    /// A system-call instruction.
    pub fn syscall(pc: u64, call: SyscallKind) -> Instr {
        Instr {
            syscall: Some(call),
            ..Instr::base(OpClass::Syscall, pc)
        }
    }

    /// A synchronization primitive touching `addr` (LL/SC style).
    pub fn sync(pc: u64, addr: u64) -> Instr {
        Instr {
            mem_addr: Some(addr),
            ..Instr::base(OpClass::Sync, pc)
        }
    }

    /// A return-from-exception (ends a kernel service body).
    pub fn eret(pc: u64) -> Instr {
        Instr::base(OpClass::Eret, pc)
    }

    /// A no-operation.
    pub fn nop(pc: u64) -> Instr {
        Instr::base(OpClass::Nop, pc)
    }

    /// Checks the structural invariants the machine models rely on.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first violated invariant:
    /// memory operations must carry an address, non-memory operations must
    /// not (sync primitives may), and syscall instructions must carry a
    /// request.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.op.is_mem() && self.mem_addr.is_none() {
            return Err("memory operation without an effective address");
        }
        if !self.op.is_mem() && self.op != OpClass::Sync && self.mem_addr.is_some() {
            return Err("non-memory operation carries an effective address");
        }
        if (self.op == OpClass::Syscall) != self.syscall.is_some() {
            return Err("syscall payload must accompany exactly the Syscall op");
        }
        if self.op == OpClass::Store && self.dest.is_some() {
            return Err("store must not have a destination register");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileRef;

    #[test]
    fn constructors_produce_valid_instrs() {
        let instrs = [
            Instr::alu(0, Reg::int(1), Some(Reg::int(2)), Some(Reg::int(3))),
            Instr::arith(OpClass::FpMul, 4, Reg::fp(0), Some(Reg::fp(1)), None),
            Instr::load(8, Reg::int(4), Some(Reg::int(29)), 0x1000),
            Instr::store(12, Some(Reg::int(4)), Some(Reg::int(29)), 0x1008),
            Instr::branch(16, Some(Reg::int(4)), true, 0x40),
            Instr::jump(20, 0x80),
            Instr::call(24, 0x100),
            Instr::ret(28, 0x28),
            Instr::syscall(32, SyscallKind::Open { file: FileRef(1) }),
            Instr::sync(36, 0x2000),
            Instr::eret(40),
            Instr::nop(44),
        ];
        for i in &instrs {
            i.validate().unwrap_or_else(|e| panic!("{:?}: {e}", i.op));
        }
    }

    #[test]
    fn validate_rejects_load_without_address() {
        let mut ld = Instr::load(0, Reg::int(1), None, 0x10);
        ld.mem_addr = None;
        assert!(ld.validate().is_err());
    }

    #[test]
    fn validate_rejects_alu_with_address() {
        let mut a = Instr::alu(0, Reg::int(1), None, None);
        a.mem_addr = Some(0x10);
        assert!(a.validate().is_err());
    }

    #[test]
    fn validate_rejects_syscall_mismatch() {
        let mut s = Instr::syscall(0, SyscallKind::Bsd);
        s.syscall = None;
        assert!(s.validate().is_err());
        let mut a = Instr::nop(0);
        a.syscall = Some(SyscallKind::Bsd);
        assert!(a.validate().is_err());
    }

    #[test]
    fn branches_carry_outcomes() {
        let b = Instr::branch(0, None, true, 0x40);
        assert!(b.taken);
        assert_eq!(b.target, 0x40);
        let j = Instr::jump(0, 0x80);
        assert!(j.taken);
    }
}
