//! Operation classes and functional-unit kinds.

use std::fmt;

/// Functional-unit kind an operation executes on. Table 1 provides two
/// integer and two floating-point units; loads and stores go through the
/// cache ports via the load/store queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU (also executes branches and sync primitives).
    Int,
    /// Floating-point unit.
    Fp,
    /// Memory port (load/store pipeline).
    Mem,
    /// No functional unit (e.g. NOPs, system calls resolve at commit).
    None,
}

/// Coarse operation class of an [`crate::Instr`].
///
/// Classes are chosen so the power models can attribute energy to the right
/// unit and the timing models can pick latencies, without modeling the full
/// MIPS opcode space.
///
/// # Examples
///
/// ```
/// use softwatt_isa::{FuKind, OpClass};
///
/// assert!(OpClass::Load.is_mem());
/// assert!(OpClass::BranchCond.is_branch());
/// assert_eq!(OpClass::FpMul.fu(), FuKind::Fp);
/// assert!(OpClass::IntAlu.latency() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer add/sub/logic/shift/compare.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/sub/compare/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide/sqrt.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    BranchCond,
    /// Unconditional jump.
    Jump,
    /// Function call (pushes the return-address stack).
    Call,
    /// Function return (pops the return-address stack).
    Return,
    /// System call (serializing; raises a [`crate::CpuEvent`] at commit).
    Syscall,
    /// Atomic/synchronization primitive (LL/SC style).
    Sync,
    /// Return from exception (serializing; ends every kernel service body
    /// so the pipeline drains cleanly at the service boundary).
    Eret,
    /// No-operation (fetch/decode bandwidth only).
    Nop,
}

impl OpClass {
    /// All operation classes.
    pub const ALL: [OpClass; 16] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::BranchCond,
        OpClass::Jump,
        OpClass::Call,
        OpClass::Return,
        OpClass::Syscall,
        OpClass::Sync,
        OpClass::Eret,
        OpClass::Nop,
    ];

    /// Whether the operation accesses data memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the operation redirects control flow.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            OpClass::BranchCond | OpClass::Jump | OpClass::Call | OpClass::Return
        )
    }

    /// Whether the operation uses the floating-point pipeline.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// Whether the pipeline must drain before/while executing this
    /// operation (system calls and exception returns).
    #[inline]
    pub fn is_serializing(self) -> bool {
        matches!(self, OpClass::Syscall | OpClass::Eret)
    }

    /// Functional unit the operation occupies.
    pub fn fu(self) -> FuKind {
        match self {
            OpClass::IntAlu
            | OpClass::IntMul
            | OpClass::IntDiv
            | OpClass::BranchCond
            | OpClass::Jump
            | OpClass::Call
            | OpClass::Return
            | OpClass::Sync
            | OpClass::Eret => FuKind::Int,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => FuKind::Fp,
            OpClass::Load | OpClass::Store => FuKind::Mem,
            OpClass::Syscall | OpClass::Nop => FuKind::None,
        }
    }

    /// Execution latency in cycles, excluding memory-hierarchy time
    /// (R10000-flavoured).
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu
            | OpClass::BranchCond
            | OpClass::Jump
            | OpClass::Call
            | OpClass::Return
            | OpClass::Nop => 1,
            OpClass::Sync => 2,
            OpClass::Eret => 1,
            OpClass::IntMul => 5,
            OpClass::IntDiv => 34,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 2,
            OpClass::FpDiv => 18,
            // Loads/stores add cache latency on top of address generation.
            OpClass::Load | OpClass::Store => 1,
            OpClass::Syscall => 1,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int_alu",
            OpClass::IntMul => "int_mul",
            OpClass::IntDiv => "int_div",
            OpClass::FpAdd => "fp_add",
            OpClass::FpMul => "fp_mul",
            OpClass::FpDiv => "fp_div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::BranchCond => "branch",
            OpClass::Jump => "jump",
            OpClass::Call => "call",
            OpClass::Return => "return",
            OpClass::Syscall => "syscall",
            OpClass::Sync => "sync",
            OpClass::Eret => "eret",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifications_are_consistent() {
        for op in OpClass::ALL {
            if op.is_mem() {
                assert_eq!(op.fu(), FuKind::Mem);
            }
            if op.is_fp() {
                assert_eq!(op.fu(), FuKind::Fp);
            }
            assert!(op.latency() >= 1, "{op} must take at least one cycle");
        }
    }

    #[test]
    fn branches_execute_on_int_unit() {
        for op in [
            OpClass::BranchCond,
            OpClass::Jump,
            OpClass::Call,
            OpClass::Return,
        ] {
            assert!(op.is_branch());
            assert_eq!(op.fu(), FuKind::Int);
        }
    }

    #[test]
    fn serializing_ops() {
        assert!(OpClass::Syscall.is_serializing());
        assert!(OpClass::Eret.is_serializing());
        assert!(
            !OpClass::Sync.is_serializing(),
            "sync spins must run at full speed (paper Table 3: sync IPC ~1.5)"
        );
        assert!(!OpClass::Load.is_serializing());
    }

    #[test]
    fn long_latency_ops_are_longer() {
        assert!(OpClass::IntDiv.latency() > OpClass::IntMul.latency());
        assert!(OpClass::IntMul.latency() > OpClass::IntAlu.latency());
        assert!(OpClass::FpDiv.latency() > OpClass::FpMul.latency());
    }
}
