//! The instruction-source abstraction.

use softwatt_stats::StatsCollector;

use crate::Instr;

/// A producer of synthetic instructions.
///
/// Implemented by workload generators, kernel-service bodies, the idle
/// loop, and — crucially — by the OS model itself, which multiplexes all of
/// the above behind one facade that the CPU fetches from.
///
/// The source receives the run's [`StatsCollector`] so the OS facade can
/// switch the software [`softwatt_stats::Mode`] and open/close kernel-
/// service attribution frames exactly at the instruction where a stream
/// boundary occurs. Plain generators simply ignore it.
///
/// Returning `None` normally means the source has no more instructions
/// *ever* (the simulated program exited). Sources that are momentarily
/// unable to make progress (e.g. a process blocked on disk I/O) either
/// yield instructions from whatever runs in the meantime (the idle loop) —
/// in a full-system simulation the machine always executes something — or
/// return `None` *while reporting [`InstrSource::stalled`]*, telling the
/// CPU this is a transient stall to be resolved by the driver (the
/// analytic idle-handling mode fast-forwards such stalls arithmetically
/// instead of executing idle-loop instructions).
///
/// # Examples
///
/// ```
/// use softwatt_isa::{Instr, InstrSource};
/// use softwatt_stats::{Clocking, StatsCollector};
///
/// struct Nops { left: u32, pc: u64 }
/// impl InstrSource for Nops {
///     fn next_instr(&mut self, _stats: &mut StatsCollector) -> Option<Instr> {
///         (self.left > 0).then(|| {
///             self.left -= 1;
///             self.pc += 4;
///             Instr::nop(self.pc)
///         })
///     }
/// }
///
/// let mut stats = StatsCollector::new(Clocking::default(), 100);
/// let mut s = Nops { left: 1, pc: 0 };
/// assert!(s.next_instr(&mut stats).is_some());
/// assert!(s.next_instr(&mut stats).is_none());
/// ```
pub trait InstrSource {
    /// Produces the next instruction, or `None` when the simulated program
    /// has exited (or, if [`InstrSource::stalled`] returns `true`, is
    /// transiently unable to run).
    fn next_instr(&mut self, stats: &mut StatsCollector) -> Option<Instr>;

    /// Whether a `None` from [`InstrSource::next_instr`] means a transient
    /// stall rather than program exit. Default: never stalled.
    fn stalled(&self) -> bool {
        false
    }
}

impl<T: InstrSource + ?Sized> InstrSource for &mut T {
    fn next_instr(&mut self, stats: &mut StatsCollector) -> Option<Instr> {
        (**self).next_instr(stats)
    }

    fn stalled(&self) -> bool {
        (**self).stalled()
    }
}

impl<T: InstrSource + ?Sized> InstrSource for Box<T> {
    fn next_instr(&mut self, stats: &mut StatsCollector) -> Option<Instr> {
        (**self).next_instr(stats)
    }

    fn stalled(&self) -> bool {
        (**self).stalled()
    }
}

/// An [`InstrSource`] over a fixed instruction sequence — handy in tests.
#[derive(Debug, Clone)]
pub struct VecSource {
    instrs: std::vec::IntoIter<Instr>,
}

impl VecSource {
    /// Creates a source yielding `instrs` in order, then `None`.
    pub fn new(instrs: Vec<Instr>) -> VecSource {
        VecSource {
            instrs: instrs.into_iter(),
        }
    }
}

impl InstrSource for VecSource {
    fn next_instr(&mut self, _stats: &mut StatsCollector) -> Option<Instr> {
        self.instrs.next()
    }
}

impl FromIterator<Instr> for VecSource {
    fn from_iter<I: IntoIterator<Item = Instr>>(iter: I) -> Self {
        VecSource::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpClass;
    use softwatt_stats::Clocking;

    fn stats() -> StatsCollector {
        StatsCollector::new(Clocking::default(), 100)
    }

    #[test]
    fn vec_source_yields_in_order_then_none() {
        let mut st = stats();
        let mut s: VecSource = (0..3).map(|i| Instr::nop(i * 4)).collect();
        assert_eq!(s.next_instr(&mut st).unwrap().pc, 0);
        assert_eq!(s.next_instr(&mut st).unwrap().pc, 4);
        assert_eq!(s.next_instr(&mut st).unwrap().pc, 8);
        assert!(s.next_instr(&mut st).is_none());
        assert!(s.next_instr(&mut st).is_none());
    }

    #[test]
    fn trait_objects_and_references_work() {
        let mut st = stats();
        let mut v = VecSource::new(vec![Instr::nop(0)]);
        let by_ref: &mut dyn InstrSource = &mut v;
        assert_eq!(by_ref.next_instr(&mut st).unwrap().op, OpClass::Nop);
        let mut boxed: Box<dyn InstrSource> = Box::new(VecSource::new(vec![Instr::nop(4)]));
        assert_eq!(boxed.next_instr(&mut st).unwrap().pc, 4);
    }
}
