//! Property tests on the instruction-mix generator: any valid spec must
//! yield well-formed instructions whose measured statistics track the
//! requested fractions.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use softwatt_isa::{DataPattern, MixGenerator, MixSpec, OpClass};

fn specs() -> impl Strategy<Value = MixSpec> {
    (
        0.0f64..0.35, // load
        0.0f64..0.15, // store
        0.0f64..0.25, // branch
        0.0f64..0.20, // fp
        0.0f64..0.60, // dep_prob
        0.5f64..1.0,  // branch_stability
        1u32..4,      // n_loops
        16u32..128,   // loop_len
    )
        .prop_map(
            |(load, store, branch, fp, dep, stab, n_loops, loop_len)| MixSpec {
                load,
                store,
                branch,
                fp,
                mul: 0.01,
                dep_prob: dep,
                branch_stability: stab,
                code_base: 0x1_0000,
                loop_len,
                n_loops,
                stay_per_loop: 512,
                data: DataPattern {
                    base: 0x1000_0000,
                    hot_bytes: 16 * 1024,
                    span_bytes: 256 * 1024,
                    hot_frac: 0.9,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_instructions_validate(spec in specs(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen = MixGenerator::new(spec);
        for _ in 0..2_000 {
            let i = gen.next_instr_with(&mut rng);
            prop_assert!(i.validate().is_ok(), "{:?}", i.op);
            prop_assert!(i.pc >= spec.code_base);
            if let Some(addr) = i.mem_addr {
                prop_assert!(addr >= spec.data.base);
                prop_assert!(addr < spec.data.base + spec.data.span_bytes + 8);
            }
        }
    }

    #[test]
    fn measured_fractions_track_the_spec(spec in specs(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen = MixGenerator::new(spec);
        let n = 30_000usize;
        let mut loads = 0usize;
        let mut stores = 0usize;
        let mut branches = 0usize;
        for _ in 0..n {
            match gen.next_instr_with(&mut rng).op {
                OpClass::Load => loads += 1,
                OpClass::Store => stores += 1,
                OpClass::BranchCond => branches += 1,
                _ => {}
            }
        }
        let nf = n as f64;
        // Branch fraction includes the forced loop back-edges on top of
        // the requested fraction; loads/stores are sampled after branches.
        prop_assert!((loads as f64 / nf - spec.load).abs() < 0.05,
            "load {} vs {}", loads as f64 / nf, spec.load);
        prop_assert!((stores as f64 / nf - spec.store).abs() < 0.05);
        prop_assert!(branches as f64 / nf >= spec.branch - 0.05);
        prop_assert!(branches as f64 / nf <= spec.branch + 1.0 / f64::from(spec.loop_len) + 0.05);
    }

    #[test]
    fn generator_is_deterministic(spec in specs(), seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut gen = MixGenerator::new(spec);
            (0..500).map(|_| gen.next_instr_with(&mut rng)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
