//! Per-benchmark stream characteristics: each generator must show the
//! qualitative character the paper ascribes to its benchmark, measured
//! directly on the instruction stream (no machine in the loop).

use softwatt_isa::{InstrSource, OpClass, SyscallKind};
use softwatt_stats::{Clocking, StatsCollector};
use softwatt_workloads::Benchmark;

struct StreamStats {
    total: usize,
    loads: usize,
    stores: usize,
    branches: usize,
    fp: usize,
    syscalls: usize,
    reads: usize,
    distinct_pages: usize,
}

fn measure(benchmark: Benchmark) -> StreamStats {
    let clk = Clocking::scaled(200.0e6, 8_000.0);
    let mut stats = StatsCollector::new(clk, 1_000_000);
    let mut w = benchmark.workload(clk, 17);
    let mut s = StreamStats {
        total: 0,
        loads: 0,
        stores: 0,
        branches: 0,
        fp: 0,
        syscalls: 0,
        reads: 0,
        distinct_pages: 0,
    };
    let mut pages = std::collections::HashSet::new();
    while let Some(i) = w.next_instr(&mut stats) {
        s.total += 1;
        match i.op {
            OpClass::Load => s.loads += 1,
            OpClass::Store => s.stores += 1,
            OpClass::BranchCond => s.branches += 1,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => s.fp += 1,
            OpClass::Syscall => {
                s.syscalls += 1;
                // Steady-state reads hit the warm working files (ids >= 1000);
                // startup/burst reads use low file ids.
                if matches!(i.syscall, Some(SyscallKind::Read { file, .. }) if file.0 >= 1000) {
                    s.reads += 1;
                }
            }
            _ => {}
        }
        if let Some(addr) = i.mem_addr {
            pages.insert(softwatt_isa::page_number(addr));
        }
        stats.tick(); // approximate clock so timed bursts fire
        assert!(s.total < 20_000_000, "runaway stream");
    }
    s.distinct_pages = pages.len();
    s
}

#[test]
fn every_stream_terminates_with_plausible_mix() {
    for b in Benchmark::ALL {
        let s = measure(b);
        assert!(s.total > 50_000, "{b}: {} instructions", s.total);
        let load_frac = s.loads as f64 / s.total as f64;
        let branch_frac = s.branches as f64 / s.total as f64;
        assert!(
            load_frac > 0.15 && load_frac < 0.45,
            "{b}: load frac {load_frac}"
        );
        let store_frac = s.stores as f64 / s.total as f64;
        assert!(
            store_frac > 0.03 && store_frac < 0.20,
            "{b}: store frac {store_frac}"
        );
        assert!(
            branch_frac > 0.08 && branch_frac < 0.35,
            "{b}: branch frac {branch_frac}"
        );
        assert!(s.syscalls > 10, "{b}: {} syscalls", s.syscalls);
    }
}

#[test]
fn mtrt_is_the_only_fp_heavy_stream() {
    for b in Benchmark::ALL {
        let s = measure(b);
        let fp_frac = s.fp as f64 / s.total as f64;
        if b == Benchmark::Mtrt {
            assert!(fp_frac > 0.08, "mtrt fp frac {fp_frac}");
        } else {
            assert!(fp_frac < 0.03, "{b}: fp frac {fp_frac}");
        }
    }
}

#[test]
fn jack_issues_steady_reads_at_the_highest_rate() {
    // Table 4: jack's read service is the heaviest of the six benchmarks;
    // its generator sustains the highest warm-read rate.
    let jack = measure(Benchmark::Jack);
    let jack_rate = jack.reads as f64 / jack.total as f64;
    for other in [
        Benchmark::Compress,
        Benchmark::Db,
        Benchmark::Mtrt,
        Benchmark::Javac,
    ] {
        let o = measure(other);
        let other_rate = o.reads as f64 / o.total as f64;
        assert!(
            jack_rate > other_rate,
            "jack steady-read rate {jack_rate:.2e} vs {other} {other_rate:.2e}"
        );
    }
}

#[test]
fn working_sets_exceed_tlb_reach_in_pages() {
    for b in Benchmark::ALL {
        let s = measure(b);
        assert!(
            s.distinct_pages > 64,
            "{b}: only {} distinct pages — no TLB pressure",
            s.distinct_pages
        );
    }
}

#[test]
fn compress_touches_fewer_pages_than_javac() {
    // compress has the smallest kernel share in the paper; its data
    // working set is the tightest.
    let compress = measure(Benchmark::Compress);
    let javac = measure(Benchmark::Javac);
    let compress_rate = compress.distinct_pages as f64;
    let javac_rate = javac.distinct_pages as f64;
    assert!(
        compress_rate < javac_rate,
        "compress pages {compress_rate} vs javac {javac_rate}"
    );
}

#[test]
fn streams_differ_across_benchmarks() {
    let a = measure(Benchmark::Jess);
    let b = measure(Benchmark::Db);
    assert_ne!(
        (a.total, a.loads, a.branches),
        (b.total, b.loads, b.branches),
        "distinct benchmarks must generate distinct streams"
    );
}
