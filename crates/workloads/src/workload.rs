//! The benchmark instruction-stream generator.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use softwatt_isa::{DataPattern, FileRef, Instr, InstrSource, MixGenerator, MixSpec, SyscallKind};
use softwatt_stats::{Clocking, StatsCollector};

use crate::spec::{BenchmarkSpec, PhaseSpec};

/// User-space code base of the first phase.
const CODE_BASE: u64 = 0x0001_0000;
/// User-space data base of the first phase.
const DATA_BASE: u64 = 0x1000_0000;
/// PC used for system-call instructions.
const SYSCALL_PC: u64 = 0x0000_f000;
/// Base of the fresh-allocation (GC frontier) region.
const FRESH_BASE: u64 = 0x6000_0000;
/// Pages in the fresh region: `[FRESH_BASE, KSEG_BASE)`. The frontier
/// wraps here so a long high-rate spec recycles pages (GC semantics)
/// instead of walking first-touch stores into kernel address space.
const FRESH_REGION_PAGES: u64 = (0x8000_0000 - FRESH_BASE) / softwatt_isa::PAGE_SIZE;
/// First file id of the warm steady-state working set.
const WARM_FILE_BASE: u32 = 1000;
/// Warm working files per benchmark.
const WARM_FILES: u32 = 8;
/// Bytes warmed per working file.
const WARM_FILE_BYTES: u64 = 128 * 1024;

#[derive(Debug, Clone, Copy)]
enum ScriptItem {
    Call(SyscallKind),
    Chunk(u32),
}

/// An [`InstrSource`] producing one benchmark's user instruction stream:
/// class-loading prologue, phased steady execution with sampled system
/// calls, and timed cold-I/O bursts.
///
/// See the crate docs for an example.
#[derive(Debug)]
pub struct Workload {
    spec: BenchmarkSpec,
    rng: SmallRng,
    budget: u64,
    emitted: u64,
    script: VecDeque<ScriptItem>,
    chunk_remaining: u32,
    chunk_gen: MixGenerator,
    phase_idx: usize,
    phase_end: u64,
    gen: MixGenerator,
    burst_cycles: Vec<(u64, u32, u32)>, // (cycle, files, bytes)
    next_burst: usize,
    next_cold_file: u32,
    fresh_pages: u64,
}

fn mix_for(phase: &PhaseSpec, phase_idx: usize) -> MixSpec {
    MixSpec {
        load: phase.load,
        store: phase.store,
        branch: phase.branch,
        fp: phase.fp,
        mul: phase.mul,
        dep_prob: phase.dep_prob,
        branch_stability: phase.branch_stability,
        code_base: CODE_BASE + phase_idx as u64 * 0x4_0000,
        loop_len: phase.loop_len,
        n_loops: phase.n_loops,
        stay_per_loop: phase.stay_per_loop,
        data: DataPattern {
            base: DATA_BASE + phase_idx as u64 * 0x1000_0000,
            hot_bytes: phase.hot_bytes,
            span_bytes: phase.span_bytes,
            hot_frac: phase.hot_frac,
        },
    }
}

impl Workload {
    /// Creates the workload for a spec under the given clocking.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`BenchmarkSpec::validate`].
    pub fn new(spec: BenchmarkSpec, clocking: Clocking, seed: u64) -> Workload {
        spec.validate()
            .unwrap_or_else(|e| panic!("invalid benchmark spec: {e}"));
        let budget = spec
            .user_instr_budget(clocking)
            .unwrap_or_else(|e| panic!("invalid benchmark spec: {e}"));
        let chunk = ((budget as f64 * spec.startup_compute_frac) as u64
            / u64::from(spec.class_files.max(1))) as u32;
        let mut script = VecDeque::new();
        for f in 0..spec.class_files {
            script.push_back(ScriptItem::Call(SyscallKind::Open { file: FileRef(f) }));
            script.push_back(ScriptItem::Call(SyscallKind::Read {
                file: FileRef(f),
                offset: 0,
                bytes: spec.class_file_bytes,
            }));
            script.push_back(ScriptItem::Chunk(chunk));
        }
        let burst_cycles = spec
            .io_bursts
            .iter()
            .map(|b| {
                (
                    clocking.paper_secs_to_cycles(b.at_s),
                    b.files,
                    b.bytes_per_file,
                )
            })
            .collect();
        let phase0 = &spec.phases[0];
        let phase_end = (phase0.frac * budget as f64) as u64;
        let gen = MixGenerator::new(mix_for(phase0, 0));
        let chunk_gen = MixGenerator::new(mix_for(phase0, 0));
        Workload {
            next_cold_file: spec.class_files,
            spec,
            rng: SmallRng::seed_from_u64(seed),
            budget,
            emitted: 0,
            script,
            chunk_remaining: 0,
            chunk_gen,
            phase_idx: 0,
            phase_end,
            gen,
            burst_cycles,
            next_burst: 0,
            fresh_pages: 0,
        }
    }

    /// The spec driving this workload.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// Virtual data regions the OS should pre-map (checkpoint semantics):
    /// the phases' established working sets. Fresh GC allocations live
    /// outside these regions and fault on first touch.
    pub fn premap_regions(&self) -> Vec<(u64, u64)> {
        self.spec
            .phases
            .iter()
            .enumerate()
            .map(|(idx, p)| (DATA_BASE + idx as u64 * 0x1000_0000, p.span_bytes + 4096))
            .collect()
    }

    /// Files the OS should pre-warm in the file cache (the paper's
    /// checkpoint step): the steady-state working files. Class files stay
    /// cold so the prologue really hits the disk.
    pub fn warm_files(&self) -> Vec<(FileRef, u64)> {
        (0..WARM_FILES)
            .map(|i| (FileRef(WARM_FILE_BASE + i), WARM_FILE_BYTES))
            .collect()
    }

    /// User instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Total user-instruction budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    fn maybe_trigger_burst(&mut self, now_cycle: u64) {
        while self.next_burst < self.burst_cycles.len()
            && self.burst_cycles[self.next_burst].0 <= now_cycle
        {
            let (_, files, bytes) = self.burst_cycles[self.next_burst];
            self.next_burst += 1;
            // Prepend so the burst happens now (front of the script).
            for _ in 0..files {
                let file = FileRef(self.next_cold_file);
                self.next_cold_file += 1;
                self.script.push_front(ScriptItem::Chunk(500));
                self.script.push_front(ScriptItem::Call(SyscallKind::Read {
                    file,
                    offset: 0,
                    bytes,
                }));
                self.script
                    .push_front(ScriptItem::Call(SyscallKind::Open { file }));
            }
        }
    }

    fn advance_phase_if_needed(&mut self) {
        while self.emitted >= self.phase_end && self.phase_idx + 1 < self.spec.phases.len() {
            self.phase_idx += 1;
            let consumed: f64 = self.spec.phases[..=self.phase_idx]
                .iter()
                .map(|p| p.frac)
                .sum();
            self.phase_end = (consumed * self.budget as f64) as u64;
            let mix = mix_for(&self.spec.phases[self.phase_idx], self.phase_idx);
            self.gen = MixGenerator::new(mix);
        }
    }

    fn sample_steady_syscall(&mut self) -> Option<SyscallKind> {
        let rates = self.spec.phases[self.phase_idx].syscalls;
        let total = rates.total();
        if total <= 0.0 || self.rng.gen::<f64>() >= total / 1000.0 {
            return None;
        }
        let mean = rates.io_bytes_mean.max(64) as f64;
        let io_bytes = (mean * (0.5 + 1.5 * self.rng.gen::<f64>())) as u32;
        let warm_file = FileRef(WARM_FILE_BASE + self.rng.gen_range(0..WARM_FILES));
        let mut pick = self.rng.gen::<f64>() * total;
        let offset = self
            .rng
            .gen_range(0..WARM_FILE_BYTES.saturating_sub(u64::from(io_bytes)).max(1));
        for (rate, kind) in [
            (
                rates.read,
                SyscallKind::Read {
                    file: warm_file,
                    offset,
                    bytes: io_bytes,
                },
            ),
            (
                rates.write,
                SyscallKind::Write {
                    file: warm_file,
                    bytes: io_bytes,
                },
            ),
            (rates.open, SyscallKind::Open { file: warm_file }),
            (rates.xstat, SyscallKind::Xstat { file: warm_file }),
            (rates.du_poll, SyscallKind::DuPoll),
            (rates.bsd, SyscallKind::Bsd),
        ] {
            if pick < rate {
                return Some(kind);
            }
            pick -= rate;
        }
        None
    }
}

impl InstrSource for Workload {
    fn next_instr(&mut self, stats: &mut StatsCollector) -> Option<Instr> {
        // Bursts anchor to the *work* clock (cycles minus analytically
        // skipped idle), so their trigger points are identical across disk
        // policies and idle-handling modes; under the default handling the
        // two clocks coincide.
        self.maybe_trigger_burst(stats.work_cycle());
        loop {
            if self.chunk_remaining > 0 {
                self.chunk_remaining -= 1;
                self.emitted += 1;
                return Some(self.chunk_gen.next_instr_with(&mut self.rng));
            }
            if let Some(item) = self.script.pop_front() {
                match item {
                    ScriptItem::Call(kind) => {
                        self.emitted += 1;
                        return Some(Instr::syscall(SYSCALL_PC, kind));
                    }
                    ScriptItem::Chunk(n) => {
                        self.chunk_remaining = n;
                        continue;
                    }
                }
            }
            if self.emitted >= self.budget {
                return None;
            }
            self.advance_phase_if_needed();
            if let Some(kind) = self.sample_steady_syscall() {
                self.emitted += 1;
                return Some(Instr::syscall(SYSCALL_PC, kind));
            }
            let fresh_rate = self.spec.phases[self.phase_idx].fresh_per_kinstr;
            if fresh_rate > 0.0 && self.rng.gen::<f64>() < fresh_rate / 1000.0 {
                // First touch of a freshly allocated page (GC frontier).
                let addr =
                    FRESH_BASE + (self.fresh_pages % FRESH_REGION_PAGES) * softwatt_isa::PAGE_SIZE;
                self.fresh_pages += 1;
                self.emitted += 1;
                return Some(Instr::store(SYSCALL_PC + 0x100, None, None, addr));
            }
            self.emitted += 1;
            return Some(self.gen.next_instr_with(&mut self.rng));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{IoBurst, SyscallRates};
    use softwatt_isa::OpClass;

    fn clk() -> Clocking {
        Clocking::scaled(200.0e6, 4000.0)
    }

    fn basic_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "test".into(),
            duration_s: 2.0,
            assumed_ipc: 1.5,
            class_files: 3,
            class_file_bytes: 8192,
            startup_compute_frac: 0.02,
            cacheflush_per_kinstr: 0.0,
            phases: vec![
                PhaseSpec {
                    name: "startup".into(),
                    frac: 0.1,
                    load: 0.2,
                    store: 0.06,
                    branch: 0.15,
                    fp: 0.0,
                    mul: 0.01,
                    dep_prob: 0.35,
                    branch_stability: 0.9,
                    hot_bytes: 32 * 1024,
                    span_bytes: 256 * 1024,
                    hot_frac: 0.98,
                    loop_len: 64,
                    n_loops: 4,
                    stay_per_loop: 1024,
                    syscalls: SyscallRates::default(),
                    fresh_per_kinstr: 0.0,
                },
                PhaseSpec {
                    name: "steady".into(),
                    frac: 0.9,
                    load: 0.28,
                    store: 0.09,
                    branch: 0.16,
                    fp: 0.02,
                    mul: 0.01,
                    dep_prob: 0.3,
                    branch_stability: 0.94,
                    hot_bytes: 64 * 1024,
                    span_bytes: 1024 * 1024,
                    hot_frac: 0.98,
                    loop_len: 96,
                    n_loops: 6,
                    stay_per_loop: 4096,
                    syscalls: SyscallRates {
                        read: 0.2,
                        xstat: 0.05,
                        io_bytes_mean: 2048,
                        ..SyscallRates::default()
                    },
                    fresh_per_kinstr: 0.05,
                },
            ],
            io_bursts: vec![IoBurst {
                at_s: 1.0,
                files: 2,
                bytes_per_file: 16384,
            }],
        }
    }

    fn drain(w: &mut Workload, stats: &mut StatsCollector) -> Vec<Instr> {
        let mut v = Vec::new();
        while let Some(i) = w.next_instr(stats) {
            v.push(i);
            stats.tick(); // crude 1 IPC clock for burst triggering
            assert!(v.len() < 10_000_000);
        }
        v
    }

    #[test]
    fn prologue_opens_and_reads_every_class_file() {
        let mut stats = StatsCollector::new(clk(), 100_000);
        let mut w = Workload::new(basic_spec(), clk(), 1);
        let instrs = drain(&mut w, &mut stats);
        let opens = instrs
            .iter()
            .filter(|i| matches!(i.syscall, Some(SyscallKind::Open { file }) if file.0 < 3))
            .count();
        let reads = instrs
            .iter()
            .filter(|i| matches!(i.syscall, Some(SyscallKind::Read { file, .. }) if file.0 < 3))
            .count();
        assert_eq!(opens, 3);
        assert_eq!(reads, 3);
        // The class-file syscalls come before the bulk of execution.
        let last_class_read = instrs
            .iter()
            .rposition(|i| matches!(i.syscall, Some(SyscallKind::Read { file, .. }) if file.0 < 3))
            .unwrap();
        assert!(last_class_read < instrs.len() / 4);
    }

    #[test]
    fn budget_bounds_emission() {
        let mut stats = StatsCollector::new(clk(), 100_000);
        let mut w = Workload::new(basic_spec(), clk(), 2);
        let budget = w.budget();
        let instrs = drain(&mut w, &mut stats);
        // Script items may push total slightly past the phase budget.
        assert!(instrs.len() as u64 >= budget);
        assert!((instrs.len() as u64) < budget + 10_000);
    }

    #[test]
    fn timed_burst_reads_cold_files() {
        let mut stats = StatsCollector::new(clk(), 100_000);
        let mut w = Workload::new(basic_spec(), clk(), 3);
        let instrs = drain(&mut w, &mut stats);
        // Burst files are allocated after class files (ids >= 3, < warm base).
        let burst_reads: Vec<_> = instrs
            .iter()
            .filter_map(|i| match i.syscall {
                Some(SyscallKind::Read { file, .. }) if file.0 >= 3 && file.0 < 1000 => Some(file),
                _ => None,
            })
            .collect();
        assert_eq!(burst_reads.len(), 2, "two cold burst files");
    }

    #[test]
    fn steady_syscalls_appear_at_roughly_configured_rate() {
        let mut stats = StatsCollector::new(clk(), 100_000);
        let mut w = Workload::new(basic_spec(), clk(), 4);
        let instrs = drain(&mut w, &mut stats);
        let n = instrs.len() as f64;
        let warm_reads = instrs
            .iter()
            .filter(|i| matches!(i.syscall, Some(SyscallKind::Read { file, .. }) if file.0 >= 1000))
            .count() as f64;
        // 0.2 per kinstr over ~90% of the run.
        let expected = n * 0.9 * 0.2 / 1000.0;
        assert!(
            warm_reads > expected * 0.5 && warm_reads < expected * 2.0,
            "warm reads {warm_reads} vs expected {expected}"
        );
    }

    #[test]
    fn phases_change_the_code_region() {
        let mut stats = StatsCollector::new(clk(), 100_000);
        let mut w = Workload::new(basic_spec(), clk(), 5);
        let instrs = drain(&mut w, &mut stats);
        let early_pc = instrs[50].pc;
        let late = &instrs[instrs.len() - 100];
        assert!(
            late.pc >= CODE_BASE + 0x4_0000,
            "steady phase uses its own code region"
        );
        assert!(early_pc < CODE_BASE + 0x4_0000 || instrs[50].syscall.is_some());
    }

    #[test]
    fn data_addresses_are_user_space() {
        let mut stats = StatsCollector::new(clk(), 100_000);
        let mut w = Workload::new(basic_spec(), clk(), 6);
        for i in drain(&mut w, &mut stats) {
            if let Some(a) = i.mem_addr {
                assert!(!softwatt_isa::is_kernel_addr(a), "user data at {a:#x}");
            }
            assert!(i.validate().is_ok());
            assert_ne!(i.op, OpClass::Eret, "user code never erets");
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let mut stats = StatsCollector::new(clk(), 100_000);
            let mut w = Workload::new(basic_spec(), clk(), seed);
            drain(&mut w, &mut stats)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn warm_files_are_disjoint_from_cold_files() {
        let w = Workload::new(basic_spec(), clk(), 9);
        for (f, bytes) in w.warm_files() {
            assert!(f.0 >= 1000);
            assert!(bytes > 0);
        }
    }
}
