//! SPEC JVM98-like synthetic workloads for the SoftWatt simulator.
//!
//! The paper characterizes six SPEC JVM98 benchmarks (`compress`, `jess`,
//! `db`, `javac`, `mtrt`, `jack`; `mpegaudio` excluded as in the paper)
//! running under a JIT-ing JVM on IRIX. Since the original binaries cannot
//! be executed here, each benchmark is a *phase-structured synthetic
//! generator* calibrated on the paper's **cycle-side** observables only
//! (`DESIGN.md` §6):
//!
//! - a **class-loading prologue**: `open`/`read` system calls against cold
//!   files, reproducing the idle-heavy start and cold-cache memory-power
//!   spike of Figures 3/4;
//! - a **steady phase** with a benchmark-specific instruction mix,
//!   dependence density (ILP), branch stability, and data working set —
//!   the knobs behind Table 3's per-mode cache-reference rates and
//!   Table 2's mode mix (working sets beyond the 64-entry TLB reach drive
//!   the `utlb` rates of Table 4);
//! - **GC bursts** with pointer-chasing behavior and fresh page touches
//!   (feeding `demand_zero`);
//! - low-rate steady system calls (`read`, `write`, `xstat`, `du_poll`,
//!   `BSD`) in each benchmark's Table 4 proportions, plus JIT-driven
//!   `cacheflush` pressure;
//! - **timed I/O bursts** against cold files, placed in paper-time seconds
//!   so Figure 9's spin-down threshold crossovers (2 s vs 4 s) play out
//!   exactly as in the paper.
//!
//! # Examples
//!
//! ```
//! use softwatt_stats::{Clocking, StatsCollector};
//! use softwatt_isa::InstrSource;
//! use softwatt_workloads::Benchmark;
//!
//! let clk = Clocking::scaled(200.0e6, 4_000.0);
//! let mut w = Benchmark::Jess.workload(clk, 42);
//! let mut stats = StatsCollector::new(clk, 10_000);
//! let first = w.next_instr(&mut stats);
//! assert!(first.is_some());
//! ```

pub mod benchmarks;
pub mod spec;
pub mod workload;

pub use benchmarks::Benchmark;
pub use spec::{BenchmarkSpec, IoBurst, PhaseSpec, SyscallRates};
pub use workload::Workload;
