//! SPEC JVM98-like synthetic workloads for the SoftWatt simulator.
//!
//! The paper characterizes six SPEC JVM98 benchmarks (`compress`, `jess`,
//! `db`, `javac`, `mtrt`, `jack`; `mpegaudio` excluded as in the paper)
//! running under a JIT-ing JVM on IRIX. Since the original binaries cannot
//! be executed here, each benchmark is a *phase-structured synthetic
//! generator* calibrated on the paper's **cycle-side** observables only
//! (`DESIGN.md` §6):
//!
//! - a **class-loading prologue**: `open`/`read` system calls against cold
//!   files, reproducing the idle-heavy start and cold-cache memory-power
//!   spike of Figures 3/4;
//! - a **steady phase** with a benchmark-specific instruction mix,
//!   dependence density (ILP), branch stability, and data working set —
//!   the knobs behind Table 3's per-mode cache-reference rates and
//!   Table 2's mode mix (working sets beyond the 64-entry TLB reach drive
//!   the `utlb` rates of Table 4);
//! - **GC bursts** with pointer-chasing behavior and fresh page touches
//!   (feeding `demand_zero`);
//! - low-rate steady system calls (`read`, `write`, `xstat`, `du_poll`,
//!   `BSD`) in each benchmark's Table 4 proportions, plus JIT-driven
//!   `cacheflush` pressure;
//! - **timed I/O bursts** against cold files, placed in paper-time seconds
//!   so Figure 9's spin-down threshold crossovers (2 s vs 4 s) play out
//!   exactly as in the paper.
//!
//! # Examples
//!
//! ```
//! use softwatt_stats::{Clocking, StatsCollector};
//! use softwatt_isa::InstrSource;
//! use softwatt_workloads::Benchmark;
//!
//! let clk = Clocking::scaled(200.0e6, 4_000.0);
//! let mut w = Benchmark::Jess.workload(clk, 42);
//! let mut stats = StatsCollector::new(clk, 10_000);
//! let first = w.next_instr(&mut stats);
//! assert!(first.is_some());
//! ```

pub mod benchmarks;
pub mod spec;
pub mod workload;

pub use benchmarks::Benchmark;
pub use spec::{BenchmarkSpec, IoBurst, PhaseSpec, SyscallRates};
pub use workload::Workload;

use softwatt_stats::Clocking;

/// Anything that can describe a workload as a [`BenchmarkSpec`] and
/// instantiate its generator. The six canned paper benchmarks
/// ([`Benchmark`]) and user-supplied specs ([`BenchmarkSpec`] itself)
/// sit behind this one interface, so every simulation entry point is
/// spec-driven.
pub trait WorkloadSource {
    /// Workload name, for reports and keys.
    fn source_name(&self) -> &str;

    /// The full, validated-or-not spec (callers gate on
    /// [`BenchmarkSpec::validate`]).
    fn source_spec(&self) -> BenchmarkSpec;

    /// Instantiates the instruction generator.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`BenchmarkSpec::validate`] or cannot
    /// size an instruction budget at this clocking.
    fn source_workload(&self, clocking: Clocking, seed: u64) -> Workload {
        Workload::new(self.source_spec(), clocking, seed)
    }
}

impl WorkloadSource for Benchmark {
    fn source_name(&self) -> &str {
        self.name()
    }

    fn source_spec(&self) -> BenchmarkSpec {
        self.spec()
    }
}

impl WorkloadSource for BenchmarkSpec {
    fn source_name(&self) -> &str {
        &self.name
    }

    fn source_spec(&self) -> BenchmarkSpec {
        self.clone()
    }
}

#[cfg(test)]
mod source_tests {
    use super::*;

    #[test]
    fn canned_and_inline_sources_agree() {
        let clk = Clocking::scaled(200.0e6, 8000.0);
        for b in Benchmark::ALL {
            let spec = b.source_spec();
            assert_eq!(b.source_name(), spec.source_name());
            assert_eq!(spec.source_spec(), spec);
            assert_eq!(
                b.source_workload(clk, 3).budget(),
                spec.source_workload(clk, 3).budget()
            );
        }
    }
}
