//! The six SPEC JVM98-like benchmark specifications.
//!
//! Every number here is a *cycle-side* calibration target taken from the
//! paper's Tables 2–4 and Figure 9 narrative (`DESIGN.md` §6):
//!
//! - kernel-cycle share is tuned through the data working set (`span`
//!   beyond the 256 KiB TLB reach drives `utlb`);
//! - instruction mixes reflect each benchmark's character (e.g. `mtrt`
//!   ray-tracing floating point, `db`'s load-heavy index probing, `jess`'s
//!   pointer-chasing rule matching);
//! - steady system-call rates follow each benchmark's Table 4 service mix
//!   (`jack`'s heavy `read` traffic, `db`'s `du_poll`, `javac`'s `xstat`,
//!   `jess`/`jack`'s `BSD` calls);
//! - timed I/O bursts reproduce the Figure 9 spin-down story: `compress`
//!   and `javac` have inter-burst gaps between 2 s and 4 s (spin-down
//!   thrashing at the 2 s threshold, quiet at 4 s), `mtrt` has two gaps
//!   beyond 4 s (spins down under both thresholds — and *spends more
//!   energy at 4 s* because it idles longer before spinning down), `jack`
//!   mixes both gap kinds, and `jess`/`db` are too short to matter.

use softwatt_stats::Clocking;

use crate::spec::{BenchmarkSpec, IoBurst, PhaseSpec, SyscallRates};
use crate::workload::Workload;

/// The characterized benchmarks (SPEC JVM98 minus `mpegaudio`, which the
/// paper excluded because it failed under MXS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// LZW compression (integer, long-running).
    Compress,
    /// Expert-system shell (pointer-chasing, OS-intensive, short).
    Jess,
    /// In-memory database (load-heavy, short).
    Db,
    /// The JDK Java compiler (allocation-heavy).
    Javac,
    /// Multithreaded ray tracer (floating-point).
    Mtrt,
    /// Parser generator (I/O-intensive).
    Jack,
}

impl Benchmark {
    /// All benchmarks in the paper's table order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Compress,
        Benchmark::Jess,
        Benchmark::Db,
        Benchmark::Javac,
        Benchmark::Mtrt,
        Benchmark::Jack,
    ];

    /// Paper-style lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Compress => "compress",
            Benchmark::Jess => "jess",
            Benchmark::Db => "db",
            Benchmark::Javac => "javac",
            Benchmark::Mtrt => "mtrt",
            Benchmark::Jack => "jack",
        }
    }

    /// Parses a paper-style name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Builds the benchmark's specification.
    pub fn spec(self) -> BenchmarkSpec {
        match self {
            Benchmark::Compress => compress(),
            Benchmark::Jess => jess(),
            Benchmark::Db => db(),
            Benchmark::Javac => javac(),
            Benchmark::Mtrt => mtrt(),
            Benchmark::Jack => jack(),
        }
    }

    /// Instantiates the workload generator.
    pub fn workload(self, clocking: Clocking, seed: u64) -> Workload {
        Workload::new(self.spec(), clocking, seed)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Common three-phase skeleton: startup mix, steady mix, GC bursts.
#[allow(clippy::too_many_arguments)]
fn phases(steady: PhaseSpec, startup_frac: f64, gc_frac: f64, gc_span: u64) -> Vec<PhaseSpec> {
    let startup = PhaseSpec {
        name: "startup".into(),
        frac: startup_frac,
        load: 0.24,
        store: 0.08,
        branch: 0.17,
        fp: 0.0,
        mul: 0.01,
        dep_prob: 0.4,
        branch_stability: 0.88,
        hot_bytes: 16 * 1024,
        span_bytes: 320 * 1024,
        hot_frac: 0.975,
        loop_len: 48,
        n_loops: 6,
        stay_per_loop: 512,
        syscalls: SyscallRates::default(),
        fresh_per_kinstr: 0.0,
    };
    let gc = PhaseSpec {
        name: "gc".into(),
        frac: gc_frac,
        load: 0.32,
        store: 0.12,
        branch: 0.16,
        fp: 0.0,
        mul: 0.0,
        dep_prob: 0.50,
        branch_stability: 0.92,
        hot_bytes: 16 * 1024,
        span_bytes: gc_span,
        hot_frac: 0.96,
        loop_len: 40,
        n_loops: 4,
        stay_per_loop: 2048,
        syscalls: SyscallRates::default(),
        fresh_per_kinstr: 0.12,
    };
    let steady = PhaseSpec {
        frac: 1.0 - startup_frac - gc_frac,
        ..steady
    };
    vec![startup, steady, gc]
}

fn compress() -> BenchmarkSpec {
    let steady = PhaseSpec {
        name: "steady".into(),
        frac: 0.0, // filled by `phases`
        load: 0.27,
        store: 0.10,
        branch: 0.14,
        fp: 0.005,
        mul: 0.01,
        dep_prob: 0.25,
        branch_stability: 0.978,
        hot_bytes: 20 * 1024,
        span_bytes: 512 * 1024,
        hot_frac: 0.9955,
        loop_len: 96,
        n_loops: 4,
        stay_per_loop: 8192,
        syscalls: SyscallRates {
            read: 0.0015,
            write: 0.003,
            io_bytes_mean: 4096,
            ..SyscallRates::default()
        },
        fresh_per_kinstr: 0.012,
    };
    BenchmarkSpec {
        name: "compress".into(),
        duration_s: 20.0,
        assumed_ipc: 1.7,
        class_files: 22,
        class_file_bytes: 2 * 1024,
        startup_compute_frac: 0.05,
        cacheflush_per_kinstr: 0.0012,
        phases: phases(steady, 0.05, 0.05, 640 * 1024),
        io_bursts: vec![
            IoBurst {
                at_s: 3.2,
                files: 3,
                bytes_per_file: 8 * 1024,
            },
            IoBurst {
                at_s: 6.0,
                files: 3,
                bytes_per_file: 8 * 1024,
            },
            IoBurst {
                at_s: 8.8,
                files: 3,
                bytes_per_file: 8 * 1024,
            },
            IoBurst {
                at_s: 11.6,
                files: 2,
                bytes_per_file: 8 * 1024,
            },
            IoBurst {
                at_s: 14.4,
                files: 2,
                bytes_per_file: 8 * 1024,
            },
            IoBurst {
                at_s: 17.2,
                files: 2,
                bytes_per_file: 8 * 1024,
            },
            IoBurst {
                at_s: 20.0,
                files: 2,
                bytes_per_file: 8 * 1024,
            },
        ],
    }
}

fn jess() -> BenchmarkSpec {
    let steady = PhaseSpec {
        name: "steady".into(),
        frac: 0.0,
        load: 0.28,
        store: 0.07,
        branch: 0.19,
        fp: 0.005,
        mul: 0.005,
        dep_prob: 0.31,
        branch_stability: 0.968,
        hot_bytes: 16 * 1024,
        span_bytes: 640 * 1024,
        hot_frac: 0.958,
        loop_len: 56,
        n_loops: 10,
        stay_per_loop: 1024,
        syscalls: SyscallRates {
            read: 0.006,
            open: 0.0002,
            bsd: 0.007,
            io_bytes_mean: 2048,
            ..SyscallRates::default()
        },
        fresh_per_kinstr: 0.02,
    };
    BenchmarkSpec {
        name: "jess".into(),
        duration_s: 4.0,
        assumed_ipc: 0.95,
        class_files: 30,
        class_file_bytes: 2 * 1024,
        startup_compute_frac: 0.09,
        cacheflush_per_kinstr: 0.0050,
        phases: phases(steady, 0.10, 0.08, 576 * 1024),
        io_bursts: vec![],
    }
}

fn db() -> BenchmarkSpec {
    let steady = PhaseSpec {
        name: "steady".into(),
        frac: 0.0,
        load: 0.33,
        store: 0.06,
        branch: 0.17,
        fp: 0.0,
        mul: 0.005,
        dep_prob: 0.31,
        branch_stability: 0.968,
        hot_bytes: 16 * 1024,
        span_bytes: 704 * 1024,
        hot_frac: 0.970,
        loop_len: 64,
        n_loops: 6,
        stay_per_loop: 2048,
        syscalls: SyscallRates {
            read: 0.003,
            write: 0.005,
            du_poll: 0.002,
            io_bytes_mean: 3072,
            ..SyscallRates::default()
        },
        fresh_per_kinstr: 0.02,
    };
    BenchmarkSpec {
        name: "db".into(),
        duration_s: 4.5,
        assumed_ipc: 0.95,
        class_files: 18,
        class_file_bytes: 2 * 1024,
        startup_compute_frac: 0.07,
        cacheflush_per_kinstr: 0.0024,
        phases: phases(steady, 0.08, 0.07, 576 * 1024),
        io_bursts: vec![],
    }
}

fn javac() -> BenchmarkSpec {
    let steady = PhaseSpec {
        name: "steady".into(),
        frac: 0.0,
        load: 0.29,
        store: 0.10,
        branch: 0.18,
        fp: 0.0,
        mul: 0.005,
        dep_prob: 0.32,
        branch_stability: 0.966,
        hot_bytes: 16 * 1024,
        span_bytes: 768 * 1024,
        hot_frac: 0.964,
        loop_len: 48,
        n_loops: 12,
        stay_per_loop: 1024,
        syscalls: SyscallRates {
            read: 0.0022,
            write: 0.002,
            open: 0.00015,
            xstat: 0.0006,
            io_bytes_mean: 4096,
            ..SyscallRates::default()
        },
        fresh_per_kinstr: 0.02,
    };
    BenchmarkSpec {
        name: "javac".into(),
        duration_s: 9.0,
        assumed_ipc: 1.5,
        class_files: 28,
        class_file_bytes: 2 * 1024,
        startup_compute_frac: 0.06,
        cacheflush_per_kinstr: 0.0040,
        phases: phases(steady, 0.06, 0.12, 640 * 1024),
        io_bursts: vec![
            IoBurst {
                at_s: 2.6,
                files: 3,
                bytes_per_file: 8 * 1024,
            },
            IoBurst {
                at_s: 5.6,
                files: 3,
                bytes_per_file: 8 * 1024,
            },
            IoBurst {
                at_s: 8.4,
                files: 2,
                bytes_per_file: 8 * 1024,
            },
        ],
    }
}

fn mtrt() -> BenchmarkSpec {
    let steady = PhaseSpec {
        name: "steady".into(),
        frac: 0.0,
        load: 0.27,
        store: 0.07,
        branch: 0.13,
        fp: 0.17,
        mul: 0.01,
        dep_prob: 0.27,
        branch_stability: 0.975,
        hot_bytes: 20 * 1024,
        span_bytes: 576 * 1024,
        hot_frac: 0.990,
        loop_len: 80,
        n_loops: 5,
        stay_per_loop: 4096,
        syscalls: SyscallRates {
            read: 0.0015,
            write: 0.003,
            io_bytes_mean: 2048,
            ..SyscallRates::default()
        },
        fresh_per_kinstr: 0.02,
    };
    BenchmarkSpec {
        name: "mtrt".into(),
        duration_s: 13.0,
        assumed_ipc: 1.6,
        class_files: 20,
        class_file_bytes: 2 * 1024,
        startup_compute_frac: 0.07,
        cacheflush_per_kinstr: 0.0020,
        phases: phases(steady, 0.05, 0.06, 512 * 1024),
        io_bursts: vec![
            IoBurst {
                at_s: 2.6,
                files: 3,
                bytes_per_file: 8 * 1024,
            },
            IoBurst {
                at_s: 12.0,
                files: 3,
                bytes_per_file: 8 * 1024,
            },
        ],
    }
}

fn jack() -> BenchmarkSpec {
    let steady = PhaseSpec {
        name: "steady".into(),
        frac: 0.0,
        load: 0.26,
        store: 0.08,
        branch: 0.19,
        fp: 0.0,
        mul: 0.005,
        dep_prob: 0.32,
        branch_stability: 0.966,
        hot_bytes: 16 * 1024,
        span_bytes: 704 * 1024,
        hot_frac: 0.964,
        loop_len: 48,
        n_loops: 10,
        stay_per_loop: 1024,
        syscalls: SyscallRates {
            read: 0.013,
            bsd: 0.005,
            io_bytes_mean: 3072,
            ..SyscallRates::default()
        },
        fresh_per_kinstr: 0.02,
    };
    BenchmarkSpec {
        name: "jack".into(),
        duration_s: 16.0,
        assumed_ipc: 1.5,
        class_files: 24,
        class_file_bytes: 2 * 1024,
        startup_compute_frac: 0.09,
        cacheflush_per_kinstr: 0.0016,
        phases: phases(steady, 0.05, 0.05, 576 * 1024),
        io_bursts: vec![
            IoBurst {
                at_s: 2.4,
                files: 3,
                bytes_per_file: 8 * 1024,
            },
            IoBurst {
                at_s: 5.6,
                files: 3,
                bytes_per_file: 8 * 1024,
            },
            IoBurst {
                at_s: 22.0,
                files: 3,
                bytes_per_file: 8 * 1024,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_validates() {
        for b in Benchmark::ALL {
            b.spec()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(
            Benchmark::from_name("mpegaudio"),
            None,
            "excluded, as in the paper"
        );
    }

    #[test]
    fn jess_and_db_are_the_short_benchmarks() {
        // Figure 9: "jess and db are unaffected by configuration 3 because
        // of their short running times".
        let durations: Vec<(f64, &str)> = Benchmark::ALL
            .iter()
            .map(|b| (b.spec().duration_s, b.name()))
            .collect();
        for (d, name) in &durations {
            if *name == "jess" || *name == "db" {
                assert!(*d <= 5.0, "{name} must be short");
                continue;
            }
            assert!(
                *d >= 8.0,
                "{name} must be long enough for spin-down dynamics"
            );
        }
    }

    #[test]
    fn short_benchmarks_have_no_midrun_bursts() {
        assert!(Benchmark::Jess.spec().io_bursts.is_empty());
        assert!(Benchmark::Db.spec().io_bursts.is_empty());
    }

    #[test]
    fn compress_and_javac_gaps_sit_between_thresholds() {
        for b in [Benchmark::Compress, Benchmark::Javac] {
            let spec = b.spec();
            let mut prev = None;
            for burst in &spec.io_bursts {
                if let Some(p) = prev {
                    let gap: f64 = burst.at_s - p;
                    assert!(
                        gap > 2.0 && gap < 4.0,
                        "{}: gap {gap} must straddle the 2s/4s thresholds",
                        spec.name
                    );
                }
                prev = Some(burst.at_s);
            }
        }
    }

    #[test]
    fn mtrt_gap_exceeds_both_thresholds() {
        let spec = Benchmark::Mtrt.spec();
        let gap = spec.io_bursts[1].at_s - spec.io_bursts[0].at_s;
        assert!(
            gap > 4.0,
            "mtrt spins down under both thresholds (gap {gap})"
        );
    }

    #[test]
    fn jack_mixes_gap_kinds() {
        let spec = Benchmark::Jack.spec();
        let gaps: Vec<f64> = spec
            .io_bursts
            .windows(2)
            .map(|w| w[1].at_s - w[0].at_s)
            .collect();
        assert!(gaps.iter().any(|g| *g > 2.0 && *g < 4.0));
        assert!(gaps.iter().any(|g| *g > 4.0));
    }

    #[test]
    fn mtrt_is_the_floating_point_benchmark() {
        for b in Benchmark::ALL {
            let spec = b.spec();
            let steady = spec.phases.iter().find(|p| p.name == "steady").unwrap();
            if b == Benchmark::Mtrt {
                assert!(steady.fp > 0.1);
            } else {
                assert!(steady.fp < 0.05);
            }
        }
    }

    #[test]
    fn working_sets_exceed_tlb_reach() {
        // 64 entries x 4 KiB pages = 256 KiB reach; every steady phase must
        // exceed it so utlb dominates kernel time (Table 4).
        for b in Benchmark::ALL {
            let spec = b.spec();
            let steady = spec.phases.iter().find(|p| p.name == "steady").unwrap();
            assert!(steady.span_bytes > 256 * 1024, "{}", b.name());
        }
    }

    #[test]
    fn workloads_instantiate() {
        let clk = Clocking::scaled(200.0e6, 8000.0);
        for b in Benchmark::ALL {
            let w = b.workload(clk, 1);
            assert!(w.budget() > 10_000, "{}", b.name());
        }
    }
}
