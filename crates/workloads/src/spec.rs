//! Benchmark specification types.

/// Rates of steady-state system calls, per thousand user instructions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SyscallRates {
    /// Warm `read`s (file-cache resident working files).
    pub read: f64,
    /// `write`s.
    pub write: f64,
    /// `open`s.
    pub open: f64,
    /// `xstat`s.
    pub xstat: f64,
    /// `du_poll`s.
    pub du_poll: f64,
    /// Miscellaneous BSD calls.
    pub bsd: f64,
    /// Mean transfer size of steady reads/writes in bytes.
    pub io_bytes_mean: u32,
}

/// One phase of a benchmark's user execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// Phase label (for reports).
    pub name: &'static str,
    /// Fraction of total user instructions spent in this phase.
    pub frac: f64,
    /// Load fraction of the instruction mix.
    pub load: f64,
    /// Store fraction.
    pub store: f64,
    /// Conditional-branch fraction.
    pub branch: f64,
    /// Floating-point fraction.
    pub fp: f64,
    /// Integer-multiply fraction.
    pub mul: f64,
    /// Serial-dependence probability (higher = lower ILP).
    pub dep_prob: f64,
    /// Branch-outcome stability (predictor accuracy knob).
    pub branch_stability: f64,
    /// Hot data subset in bytes.
    pub hot_bytes: u64,
    /// Full data working set in bytes (beyond ~256 KiB exceeds the
    /// 64-entry TLB's reach and produces `utlb` activity).
    pub span_bytes: u64,
    /// Fraction of accesses staying in the hot subset.
    pub hot_frac: f64,
    /// Instructions per code loop.
    pub loop_len: u32,
    /// Distinct code loops cycled through.
    pub n_loops: u32,
    /// Instructions spent per loop before moving on.
    pub stay_per_loop: u32,
    /// Steady system-call rates during the phase.
    pub syscalls: SyscallRates,
    /// Fresh page allocations (first touches driving `demand_zero`) per
    /// thousand instructions. One-time page-fault work does not shrink
    /// under time scaling, so it is rate-controlled explicitly while the
    /// established working set is pre-mapped (checkpoint semantics).
    pub fresh_per_kinstr: f64,
}

/// A timed burst of cold-file I/O (drives Figure 9's spin-down study).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoBurst {
    /// When the burst fires, in paper-time seconds from run start.
    pub at_s: f64,
    /// Number of cold files opened and read.
    pub files: u32,
    /// Bytes read per file.
    pub bytes_per_file: u32,
}

/// A complete benchmark description.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// Target run duration on the superscalar (MXS) machine, paper-time
    /// seconds. The instruction budget is derived from this via
    /// `assumed_ipc`.
    pub duration_s: f64,
    /// Expected commit IPC used to size the instruction budget.
    pub assumed_ipc: f64,
    /// Class files loaded by the prologue.
    pub class_files: u32,
    /// Mean class-file size in bytes.
    pub class_file_bytes: u32,
    /// Fraction of the user-instruction budget spent on load/verify/JIT
    /// work between class-file loads. Expressed as a fraction (not a
    /// count) so the prologue scales with the time-scale substitution.
    pub startup_compute_frac: f64,
    /// JIT-driven `cacheflush` invocations per thousand user instructions.
    pub cacheflush_per_kinstr: f64,
    /// Execution phases (fracs should sum to ~1).
    pub phases: Vec<PhaseSpec>,
    /// Timed mid-run cold I/O bursts.
    pub io_bursts: Vec<IoBurst>,
}

impl BenchmarkSpec {
    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration_s <= 0.0 || self.assumed_ipc <= 0.0 {
            return Err(format!("{}: duration and IPC must be positive", self.name));
        }
        if self.phases.is_empty() {
            return Err(format!("{}: needs at least one phase", self.name));
        }
        let frac_sum: f64 = self.phases.iter().map(|p| p.frac).sum();
        if !(0.99..=1.01).contains(&frac_sum) {
            return Err(format!(
                "{}: phase fractions sum to {frac_sum}, expected 1.0",
                self.name
            ));
        }
        for p in &self.phases {
            let mix = p.load + p.store + p.branch + p.fp + p.mul;
            if mix > 1.0 {
                return Err(format!("{}/{}: mix fractions exceed 1", self.name, p.name));
            }
            if p.hot_bytes > p.span_bytes {
                return Err(format!(
                    "{}/{}: hot set larger than working set",
                    self.name, p.name
                ));
            }
        }
        if !(0.0..=0.5).contains(&self.startup_compute_frac) {
            return Err(format!(
                "{}: startup compute fraction out of range",
                self.name
            ));
        }
        let mut last = 0.0;
        for b in &self.io_bursts {
            if b.at_s < last {
                return Err(format!("{}: I/O bursts must be time-ordered", self.name));
            }
            last = b.at_s;
        }
        Ok(())
    }

    /// Total user-instruction budget for a given clocking.
    pub fn user_instr_budget(&self, clocking: softwatt_stats::Clocking) -> u64 {
        let cycles = clocking.paper_secs_to_cycles(self.duration_s);
        ((cycles as f64) * self.assumed_ipc) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softwatt_stats::Clocking;

    fn phase(frac: f64) -> PhaseSpec {
        PhaseSpec {
            name: "steady",
            frac,
            load: 0.25,
            store: 0.08,
            branch: 0.15,
            fp: 0.02,
            mul: 0.01,
            dep_prob: 0.3,
            branch_stability: 0.93,
            hot_bytes: 64 * 1024,
            span_bytes: 1024 * 1024,
            hot_frac: 0.98,
            loop_len: 64,
            n_loops: 8,
            stay_per_loop: 2048,
            syscalls: SyscallRates::default(),
            fresh_per_kinstr: 0.05,
        }
    }

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "test",
            duration_s: 4.0,
            assumed_ipc: 1.6,
            class_files: 10,
            class_file_bytes: 8192,
            startup_compute_frac: 0.05,
            cacheflush_per_kinstr: 0.01,
            phases: vec![phase(1.0)],
            io_bursts: vec![],
        }
    }

    #[test]
    fn valid_spec_passes() {
        spec().validate().unwrap();
    }

    #[test]
    fn phase_fractions_must_sum_to_one() {
        let mut s = spec();
        s.phases = vec![phase(0.5)];
        assert!(s.validate().is_err());
    }

    #[test]
    fn bursts_must_be_ordered() {
        let mut s = spec();
        s.io_bursts = vec![
            IoBurst {
                at_s: 3.0,
                files: 1,
                bytes_per_file: 4096,
            },
            IoBurst {
                at_s: 1.0,
                files: 1,
                bytes_per_file: 4096,
            },
        ];
        assert!(s.validate().is_err());
    }

    #[test]
    fn instruction_budget_scales_with_duration() {
        let clk = Clocking::scaled(200.0e6, 1000.0);
        let short = spec().user_instr_budget(clk);
        let mut long = spec();
        long.duration_s = 8.0;
        assert_eq!(long.user_instr_budget(clk), 2 * short);
    }

    #[test]
    fn oversubscribed_mix_rejected() {
        let mut s = spec();
        s.phases[0].load = 0.9;
        s.phases[0].store = 0.9;
        assert!(s.validate().is_err());
    }
}
