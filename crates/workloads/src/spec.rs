//! Benchmark specification types.
//!
//! A [`BenchmarkSpec`] is a plain-data description of a workload: phases,
//! instruction mixes, working sets, system-call rates, and timed I/O
//! bursts. Specs are *data*, not code — they can be built in-process (the
//! six canned paper benchmarks), loaded from JSON, or posted over HTTP —
//! so [`BenchmarkSpec::validate`] is the single authoritative admission
//! gate: every spec it accepts must drive a simulation to completion
//! without panicking, and every bound below exists to keep a hostile spec
//! from blowing up memory, address-space, or simulation time downstream.

use softwatt_stats::hash::fnv1a;
use softwatt_stats::Clocking;

/// Longest accepted spec or phase name, in bytes.
pub const MAX_NAME_BYTES: usize = 64;
/// Longest accepted run duration, in paper seconds.
pub const MAX_DURATION_S: f64 = 3600.0;
/// Most phases a spec may declare. Each phase owns a disjoint
/// `0x1000_0000`-byte data-region stride starting at `0x1000_0000`, and
/// four strides is as many as fit below the fresh-allocation region.
pub const MAX_PHASES: usize = 4;
/// Largest accepted per-phase working set. Keeps every phase inside its
/// data-region stride (including the pre-map margin) and bounds the
/// per-page eager pre-mapping work the OS does at checkpoint time.
pub const MAX_SPAN_BYTES: u64 = 128 * 1024 * 1024;
/// Largest accepted phase code footprint, `loop_len * n_loops`
/// instructions. Keeps phase code inside its `0x4_0000`-byte stride.
pub const MAX_CODE_INSTRS: u64 = 0x4_0000 / 4;
/// Largest accepted steady I/O transfer mean. Twice the mean never
/// exceeds one warm working file, so steady reads stay in-file.
pub const MAX_IO_BYTES_MEAN: u32 = 64 * 1024;
/// Largest accepted user-instruction budget at any clocking.
pub const MAX_INSTR_BUDGET: f64 = 1e12;

/// Rates of steady-state system calls, per thousand user instructions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SyscallRates {
    /// Warm `read`s (file-cache resident working files).
    pub read: f64,
    /// `write`s.
    pub write: f64,
    /// `open`s.
    pub open: f64,
    /// `xstat`s.
    pub xstat: f64,
    /// `du_poll`s.
    pub du_poll: f64,
    /// Miscellaneous BSD calls.
    pub bsd: f64,
    /// Mean transfer size of steady reads/writes in bytes.
    pub io_bytes_mean: u32,
}

impl SyscallRates {
    /// Sum of all per-kinstr rates.
    pub fn total(&self) -> f64 {
        self.read + self.write + self.open + self.xstat + self.du_poll + self.bsd
    }
}

/// One phase of a benchmark's user execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase label (for reports).
    pub name: String,
    /// Fraction of total user instructions spent in this phase.
    pub frac: f64,
    /// Load fraction of the instruction mix.
    pub load: f64,
    /// Store fraction.
    pub store: f64,
    /// Conditional-branch fraction.
    pub branch: f64,
    /// Floating-point fraction.
    pub fp: f64,
    /// Integer-multiply fraction.
    pub mul: f64,
    /// Serial-dependence probability (higher = lower ILP).
    pub dep_prob: f64,
    /// Branch-outcome stability (predictor accuracy knob).
    pub branch_stability: f64,
    /// Hot data subset in bytes.
    pub hot_bytes: u64,
    /// Full data working set in bytes (beyond ~256 KiB exceeds the
    /// 64-entry TLB's reach and produces `utlb` activity).
    pub span_bytes: u64,
    /// Fraction of accesses staying in the hot subset.
    pub hot_frac: f64,
    /// Instructions per code loop.
    pub loop_len: u32,
    /// Distinct code loops cycled through.
    pub n_loops: u32,
    /// Instructions spent per loop before moving on.
    pub stay_per_loop: u32,
    /// Steady system-call rates during the phase.
    pub syscalls: SyscallRates,
    /// Fresh page allocations (first touches driving `demand_zero`) per
    /// thousand instructions. One-time page-fault work does not shrink
    /// under time scaling, so it is rate-controlled explicitly while the
    /// established working set is pre-mapped (checkpoint semantics).
    pub fresh_per_kinstr: f64,
}

/// A timed burst of cold-file I/O (drives Figure 9's spin-down study).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoBurst {
    /// When the burst fires, in paper-time seconds from run start.
    pub at_s: f64,
    /// Number of cold files opened and read.
    pub files: u32,
    /// Bytes read per file.
    pub bytes_per_file: u32,
}

/// A complete benchmark description.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (paper spelling for the canned six).
    pub name: String,
    /// Target run duration on the superscalar (MXS) machine, paper-time
    /// seconds. The instruction budget is derived from this via
    /// `assumed_ipc`.
    pub duration_s: f64,
    /// Expected commit IPC used to size the instruction budget.
    pub assumed_ipc: f64,
    /// Class files loaded by the prologue.
    pub class_files: u32,
    /// Mean class-file size in bytes.
    pub class_file_bytes: u32,
    /// Fraction of the user-instruction budget spent on load/verify/JIT
    /// work between class-file loads. Expressed as a fraction (not a
    /// count) so the prologue scales with the time-scale substitution.
    pub startup_compute_frac: f64,
    /// JIT-driven `cacheflush` invocations per thousand user instructions.
    pub cacheflush_per_kinstr: f64,
    /// Execution phases (fracs should sum to ~1).
    pub phases: Vec<PhaseSpec>,
    /// Timed mid-run cold I/O bursts.
    pub io_bursts: Vec<IoBurst>,
}

fn check_name(owner: &str, what: &str, name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > MAX_NAME_BYTES {
        return Err(format!(
            "{owner}: {what} name must be 1..={MAX_NAME_BYTES} bytes"
        ));
    }
    Ok(())
}

fn check_unit(owner: &str, what: &str, v: f64) -> Result<(), String> {
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(format!("{owner}: {what} must lie in [0, 1], got {v}"));
    }
    Ok(())
}

impl BenchmarkSpec {
    /// Validates structural invariants.
    ///
    /// This is the single authoritative gate: any spec this accepts must
    /// construct a [`crate::Workload`](crate::workload::Workload) and run
    /// to completion without panicking. In particular it subsumes
    /// `MixSpec::validate` (per-field mix ranges, non-degenerate loop
    /// structure) so no spec can pass here and still be rejected deep in
    /// generator construction.
    ///
    /// Timed bursts may land up to `2 * duration_s`: `duration_s` sizes
    /// the instruction budget through `assumed_ipc`, so when the achieved
    /// IPC is below the assumed one the run's wall clock overshoots and
    /// late bursts still fire (the canned `jack` relies on this).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        check_name("spec", "benchmark", &self.name)?;
        let name = self.name.as_str();
        if !self.duration_s.is_finite()
            || !(1e-3..=MAX_DURATION_S).contains(&self.duration_s)
            || !self.assumed_ipc.is_finite()
            || !(0.05..=8.0).contains(&self.assumed_ipc)
        {
            return Err(format!(
                "{name}: duration must lie in [0.001, {MAX_DURATION_S}] s \
                 and IPC in [0.05, 8]"
            ));
        }
        if self.class_files > 10_000 {
            return Err(format!("{name}: at most 10000 class files"));
        }
        if self.class_file_bytes > 1024 * 1024 {
            return Err(format!("{name}: class files capped at 1 MiB"));
        }
        if !self.startup_compute_frac.is_finite()
            || !(0.0..=0.5).contains(&self.startup_compute_frac)
        {
            return Err(format!(
                "{name}: startup compute fraction out of range [0, 0.5]"
            ));
        }
        if !self.cacheflush_per_kinstr.is_finite()
            || !(0.0..=100.0).contains(&self.cacheflush_per_kinstr)
        {
            return Err(format!(
                "{name}: cacheflush rate must lie in [0, 100] per kinstr"
            ));
        }
        if self.phases.is_empty() {
            return Err(format!("{name}: needs at least one phase"));
        }
        if self.phases.len() > MAX_PHASES {
            return Err(format!("{name}: at most {MAX_PHASES} phases"));
        }
        for p in &self.phases {
            self.validate_phase(p)?;
        }
        let frac_sum: f64 = self.phases.iter().map(|p| p.frac).sum();
        if !(0.99..=1.01).contains(&frac_sum) {
            return Err(format!(
                "{name}: phase fractions sum to {frac_sum}, expected 1.0"
            ));
        }
        if self.io_bursts.len() > 64 {
            return Err(format!("{name}: at most 64 I/O bursts"));
        }
        let mut last = 0.0;
        for b in &self.io_bursts {
            if !b.at_s.is_finite() || b.at_s < 0.0 || b.at_s > 2.0 * self.duration_s {
                return Err(format!(
                    "{name}: burst at {} s outside [0, 2 * duration] \
                     (budget-relative time; see validate docs)",
                    b.at_s
                ));
            }
            if b.at_s < last {
                return Err(format!("{name}: I/O bursts must be time-ordered"));
            }
            last = b.at_s;
            if b.files == 0 || b.files > 256 {
                return Err(format!("{name}: burst files must lie in 1..=256"));
            }
            if b.bytes_per_file == 0 || b.bytes_per_file > 16 * 1024 * 1024 {
                return Err(format!(
                    "{name}: burst bytes per file must lie in 1..=16 MiB"
                ));
            }
        }
        Ok(())
    }

    fn validate_phase(&self, p: &PhaseSpec) -> Result<(), String> {
        check_name(&self.name, "phase", &p.name)?;
        let at = format!("{}/{}", self.name, p.name);
        check_unit(&at, "phase fraction", p.frac)?;
        for (what, v) in [
            ("load fraction", p.load),
            ("store fraction", p.store),
            ("branch fraction", p.branch),
            ("fp fraction", p.fp),
            ("mul fraction", p.mul),
            ("dependence probability", p.dep_prob),
            ("branch stability", p.branch_stability),
            ("hot fraction", p.hot_frac),
        ] {
            check_unit(&at, what, v)?;
        }
        let mix = p.load + p.store + p.branch + p.fp + p.mul;
        if mix > 1.0 {
            return Err(format!("{at}: mix fractions sum to {mix}, exceed 1"));
        }
        if p.span_bytes > MAX_SPAN_BYTES {
            return Err(format!(
                "{at}: working set capped at {MAX_SPAN_BYTES} bytes"
            ));
        }
        if p.hot_bytes > p.span_bytes {
            return Err(format!("{at}: hot set larger than working set"));
        }
        if p.loop_len == 0 || p.n_loops == 0 || p.stay_per_loop == 0 {
            return Err(format!(
                "{at}: loop structure must be non-degenerate \
                 (loop_len, n_loops, stay_per_loop all >= 1)"
            ));
        }
        if u64::from(p.loop_len) * u64::from(p.n_loops) > MAX_CODE_INSTRS {
            return Err(format!(
                "{at}: code footprint loop_len * n_loops capped at \
                 {MAX_CODE_INSTRS} instructions"
            ));
        }
        let rates = &p.syscalls;
        for (what, v) in [
            ("read rate", rates.read),
            ("write rate", rates.write),
            ("open rate", rates.open),
            ("xstat rate", rates.xstat),
            ("du_poll rate", rates.du_poll),
            ("bsd rate", rates.bsd),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{at}: {what} must be finite and >= 0"));
            }
        }
        if rates.total() > 100.0 {
            return Err(format!(
                "{at}: syscall rates capped at 100 per kinstr total"
            ));
        }
        if rates.io_bytes_mean > MAX_IO_BYTES_MEAN {
            return Err(format!(
                "{at}: steady I/O mean capped at {MAX_IO_BYTES_MEAN} bytes"
            ));
        }
        if !p.fresh_per_kinstr.is_finite() || !(0.0..=50.0).contains(&p.fresh_per_kinstr) {
            return Err(format!(
                "{at}: fresh-allocation rate must lie in [0, 50] per kinstr"
            ));
        }
        Ok(())
    }

    /// Total user-instruction budget for a given clocking.
    ///
    /// # Errors
    ///
    /// Returns an error if the `duration_s * assumed_ipc` product is not
    /// representable as a useful budget at this clocking: non-finite,
    /// truncating to zero instructions, or past [`MAX_INSTR_BUDGET`].
    /// The old silent `as u64` cast saturated huge products and rounded
    /// sub-instruction budgets to 0 (an instant no-op "run").
    pub fn user_instr_budget(&self, clocking: Clocking) -> Result<u64, String> {
        let cycles = clocking.paper_secs_to_cycles(self.duration_s);
        let raw = (cycles as f64) * self.assumed_ipc;
        if !raw.is_finite() {
            return Err(format!("{}: instruction budget is not finite", self.name));
        }
        if raw > MAX_INSTR_BUDGET {
            return Err(format!(
                "{}: instruction budget {raw:.3e} exceeds {MAX_INSTR_BUDGET:.0e}",
                self.name
            ));
        }
        let budget = raw as u64;
        if budget == 0 {
            return Err(format!(
                "{}: instruction budget truncates to zero at this clocking",
                self.name
            ));
        }
        Ok(budget)
    }

    /// Stable content hash of the spec: FNV-1a 64 over the canonical
    /// `swspec-v1` encoding (the `Debug` rendering, whose
    /// shortest-round-trip floats are exact). Two specs hash equal iff
    /// they compare equal, across processes and platforms — this is the
    /// identity that keys memoization, the persistent trace store, and
    /// the serve-layer caches for user-supplied specs.
    pub fn content_hash(&self) -> u64 {
        fnv1a(format!("swspec-v1|{self:?}").as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softwatt_stats::Clocking;

    fn phase(frac: f64) -> PhaseSpec {
        PhaseSpec {
            name: "steady".into(),
            frac,
            load: 0.25,
            store: 0.08,
            branch: 0.15,
            fp: 0.02,
            mul: 0.01,
            dep_prob: 0.3,
            branch_stability: 0.93,
            hot_bytes: 64 * 1024,
            span_bytes: 1024 * 1024,
            hot_frac: 0.98,
            loop_len: 64,
            n_loops: 8,
            stay_per_loop: 2048,
            syscalls: SyscallRates::default(),
            fresh_per_kinstr: 0.05,
        }
    }

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "test".into(),
            duration_s: 4.0,
            assumed_ipc: 1.6,
            class_files: 10,
            class_file_bytes: 8192,
            startup_compute_frac: 0.05,
            cacheflush_per_kinstr: 0.01,
            phases: vec![phase(1.0)],
            io_bursts: vec![],
        }
    }

    #[test]
    fn valid_spec_passes() {
        spec().validate().unwrap();
    }

    #[test]
    fn phase_fractions_must_sum_to_one() {
        let mut s = spec();
        s.phases = vec![phase(0.5)];
        assert!(s.validate().is_err());
    }

    #[test]
    fn bursts_must_be_ordered() {
        let mut s = spec();
        s.io_bursts = vec![
            IoBurst {
                at_s: 3.0,
                files: 1,
                bytes_per_file: 4096,
            },
            IoBurst {
                at_s: 1.0,
                files: 1,
                bytes_per_file: 4096,
            },
        ];
        assert!(s.validate().is_err());
    }

    #[test]
    fn instruction_budget_scales_with_duration() {
        let clk = Clocking::scaled(200.0e6, 1000.0);
        let short = spec().user_instr_budget(clk).unwrap();
        let mut long = spec();
        long.duration_s = 8.0;
        assert_eq!(long.user_instr_budget(clk).unwrap(), 2 * short);
    }

    #[test]
    fn oversubscribed_mix_rejected() {
        let mut s = spec();
        s.phases[0].load = 0.9;
        s.phases[0].store = 0.9;
        assert!(s.validate().is_err());
    }

    // Regression: zero loop_len/n_loops/stay_per_loop used to pass
    // validate() and then panic inside MixGenerator::new.
    #[test]
    fn degenerate_loop_structure_rejected() {
        for field in 0..3 {
            let mut s = spec();
            match field {
                0 => s.phases[0].loop_len = 0,
                1 => s.phases[0].n_loops = 0,
                _ => s.phases[0].stay_per_loop = 0,
            }
            let err = s.validate().unwrap_err();
            assert!(err.contains("non-degenerate"), "{err}");
        }
    }

    // Regression: negative per-field fractions used to slip through the
    // sum-only mix check and the sum-only phase-fraction check.
    #[test]
    fn negative_fractions_rejected() {
        let mut s = spec();
        s.phases[0].load = -0.2;
        s.phases[0].store = 0.9; // sum still < 1
        let err = s.validate().unwrap_err();
        assert!(err.contains("load fraction"), "{err}");

        let mut s = spec();
        s.phases = vec![phase(1.5), phase(-0.5)];
        let err = s.validate().unwrap_err();
        assert!(err.contains("phase fraction"), "{err}");
    }

    #[test]
    fn probabilities_range_checked() {
        type Case = (fn(&mut PhaseSpec), &'static str);
        let cases: [Case; 3] = [
            (|p| p.dep_prob = 1.5, "dependence"),
            (|p| p.branch_stability = -0.1, "stability"),
            (|p| p.hot_frac = 2.0, "hot fraction"),
        ];
        for (set, what) in cases {
            let mut s = spec();
            set(&mut s.phases[0]);
            let err = s.validate().unwrap_err();
            assert!(err.contains(what), "{err}");
        }
    }

    #[test]
    fn non_finite_fields_rejected() {
        let mut s = spec();
        s.duration_s = f64::INFINITY;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.phases[0].frac = f64::NAN;
        assert!(s.validate().is_err());
    }

    // Regression: user_instr_budget silently truncated.
    #[test]
    fn zero_budget_is_an_error_not_a_noop_run() {
        let clk = Clocking::scaled(200.0e6, 1.0e9); // huge shrink factor
        let mut s = spec();
        s.duration_s = 1e-3; // rounds up to a single cycle...
        s.assumed_ipc = 0.05; // ...whose budget truncates to zero
        s.validate().unwrap();
        let err = s.user_instr_budget(clk).unwrap_err();
        assert!(err.contains("zero"), "{err}");
    }

    #[test]
    fn oversized_budget_is_an_error() {
        let clk = Clocking::scaled(200.0e6, 1.0); // full scale
        let mut s = spec();
        s.duration_s = 3600.0;
        s.assumed_ipc = 8.0;
        s.validate().unwrap();
        let err = s.user_instr_budget(clk).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn degenerate_bursts_rejected() {
        let burst = |at_s, files, bytes_per_file| IoBurst {
            at_s,
            files,
            bytes_per_file,
        };
        let mut s = spec();
        s.io_bursts = vec![burst(1.0, 0, 4096)];
        assert!(s.validate().unwrap_err().contains("files"));
        let mut s = spec();
        s.io_bursts = vec![burst(1.0, 1, 0)];
        assert!(s.validate().unwrap_err().contains("bytes per file"));
        let mut s = spec();
        s.io_bursts = vec![burst(9.0, 1, 4096)]; // duration_s = 4.0
        assert!(s.validate().unwrap_err().contains("outside"));
        let mut s = spec();
        s.io_bursts = vec![burst(7.9, 1, 4096)]; // within 2x duration
        s.validate().unwrap();
    }

    #[test]
    fn empty_and_long_names_rejected() {
        let mut s = spec();
        s.name = String::new();
        assert!(s.validate().is_err());
        let mut s = spec();
        s.name = "x".repeat(65);
        assert!(s.validate().is_err());
        let mut s = spec();
        s.phases[0].name = String::new();
        assert!(s.validate().is_err());
    }

    #[test]
    fn content_hash_tracks_equality() {
        let a = spec();
        let b = spec();
        assert_eq!(a.content_hash(), b.content_hash());
        let mut c = spec();
        c.phases[0].load += 1e-12;
        assert_ne!(a.content_hash(), c.content_hash());
        let mut d = spec();
        d.name = "tes".into();
        assert_ne!(a.content_hash(), d.content_hash());
    }
}
