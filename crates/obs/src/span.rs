//! RAII timing spans: measure a scope's wall-clock and record it into a
//! log-2 histogram of nanoseconds.

use std::time::Instant;

/// A timing span. Created by [`crate::span`]; on drop it records the
/// elapsed wall-clock nanoseconds into the histogram named at creation.
/// When observability is disabled at creation time the span holds no
/// clock and drop is free.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct Span {
    inner: Option<(&'static str, Instant)>,
}

impl Span {
    pub(crate) fn start(name: &'static str) -> Span {
        Span {
            inner: crate::enabled().then(|| (name, Instant::now())),
        }
    }

    pub(crate) fn disabled() -> Span {
        Span { inner: None }
    }

    /// Ends the span early, returning the elapsed nanoseconds it recorded
    /// (`None` when observability was disabled at creation).
    pub fn finish(mut self) -> Option<u64> {
        self.record()
    }

    fn record(&mut self) -> Option<u64> {
        let (name, start) = self.inner.take()?;
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        crate::registry::histogram(name).observe(ns);
        Some(ns)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}
