//! Observability substrate for the SoftWatt simulator (`softwatt-obs`).
//!
//! SoftWatt's methodology is post-processing sampled logs into power
//! numbers; this crate gives the *simulator itself* the same treatment: a
//! process-wide metric registry ([`Counter`]s, [`Gauge`]s, log-2-bucket
//! [`Histogram`]s), RAII timing [`Span`]s, a leveled structured event log,
//! and a stable JSON export (`softwatt-obs-v1`) consumed by every binary's
//! `--metrics-out` flag.
//!
//! # Disabled-by-default, and why that must stay ~free
//!
//! All recording entry points check one process-wide flag first
//! ([`enabled`], a relaxed atomic load). The workspace's performance
//! gates — `BENCH_simulator.json` regressions and the replay-equivalence
//! wall-clock comparisons — run with observability *disabled*, so the
//! disabled path is required to cost no more than a predictable branch.
//! Instrumentation therefore lives at window/request/run granularity,
//! never per simulated cycle.
//!
//! # Examples
//!
//! ```
//! softwatt_obs::set_enabled(true);
//! softwatt_obs::count("demo.widgets", 3);
//! {
//!     let _span = softwatt_obs::span("demo.work_ns");
//!     // ... timed scope ...
//! }
//! let json = softwatt_obs::to_json();
//! assert!(json.contains("\"demo.widgets\": 3"));
//! # softwatt_obs::set_enabled(false);
//! # softwatt_obs::reset_metrics();
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

mod event;
mod json;
pub mod registry;
mod span;

pub use event::{event, event_enabled, log_level, set_log_level, Level};
pub use json::{summary_table, to_json, SCHEMA};
pub use registry::{reset_metrics, Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use span::Span;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STAGE_TIMING: AtomicBool = AtomicBool::new(false);

/// Whether metric recording is on. A single relaxed load: the whole cost
/// of every instrumentation point while disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether per-pipeline-stage timing is on (`bench_simulator --profile`).
///
/// Separate from [`enabled`] because stage timing reads the clock several
/// times per *simulated cycle* — far too heavy for ordinary metric runs.
/// The simulator checks this once per cycle and accumulates stage
/// nanoseconds locally, flushing totals into ordinary counters at the end
/// of the run.
#[inline]
pub fn stage_timing() -> bool {
    STAGE_TIMING.load(Ordering::Relaxed)
}

/// Turns per-stage timing on or off, process-wide.
pub fn set_stage_timing(on: bool) {
    STAGE_TIMING.store(on, Ordering::Relaxed);
}

/// Adds `n` to the counter `name`. No-op (one load, one branch) while
/// disabled.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if enabled() {
        registry::counter(name).add(n);
    }
}

/// Sets the gauge `name`. No-op while disabled.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if enabled() {
        registry::gauge(name).set(value);
    }
}

/// Raises the gauge `name` to `value` if above its current reading — a
/// high-water mark (peak queue depth, max in-flight). No-op while
/// disabled.
#[inline]
pub fn gauge_raise(name: &'static str, value: f64) {
    if enabled() {
        registry::gauge(name).raise(value);
    }
}

/// Records one observation in the histogram `name`. No-op while disabled.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        registry::histogram(name).observe(value);
    }
}

/// Starts a timing span that records elapsed nanoseconds into the
/// histogram `name` when dropped. While disabled the span holds no clock
/// and its drop is free.
#[inline]
pub fn span(name: &'static str) -> Span {
    if enabled() {
        Span::start(name)
    } else {
        Span::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry and enabled flag are process-global; tests that touch
    // them serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset_metrics();
        count("test.disabled", 5);
        observe("test.disabled_h", 5);
        gauge_set("test.disabled_g", 5.0);
        assert!(span("test.disabled_ns").finish().is_none());
        // Nothing above registered or recorded anything.
        let json = to_json();
        assert!(!json.contains("test.disabled"), "{json}");
    }

    #[test]
    fn enabled_recording_lands_in_the_registry() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset_metrics();
        count("test.counter", 2);
        count("test.counter", 3);
        gauge_set("test.gauge", 1.25);
        observe("test.histogram", 7);
        let elapsed = span("test.span_ns").finish();
        assert!(elapsed.is_some());
        assert_eq!(registry::counter("test.counter").get(), 5);
        assert_eq!(registry::gauge("test.gauge").get(), 1.25);
        assert_eq!(registry::histogram("test.histogram").sum(), 7);
        assert_eq!(registry::histogram("test.span_ns").count(), 1);
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        count("test.reset", 9);
        reset_metrics();
        assert_eq!(registry::counter("test.reset").get(), 0);
        assert!(to_json().contains("\"test.reset\": 0"));
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn level_parsing_round_trips() {
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("debug"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("bogus"), None);
        for level in Level::ALL {
            assert!(Level::Error <= level);
        }
    }
}
