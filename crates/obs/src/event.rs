//! The structured event log: leveled, monotonic-clock timestamped lines on
//! stderr, plus per-level counters in the metric registry.
//!
//! Events carry a global sequence number, so with a single worker
//! (`--jobs 1`) the emitted stream is deterministic up to timestamps; the
//! timestamps themselves come from a process-wide monotonic clock and are
//! for humans, never for control flow.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Event severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A failed operation the run cannot recover from.
    Error = 1,
    /// A suspicious condition the run survives.
    Warn = 2,
    /// Run-level milestones (phase starts, cache outcomes).
    Info = 3,
    /// Per-key details (individual simulations, replays).
    Debug = 4,
    /// Everything, including per-window noise.
    Trace = 5,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// Parses a CLI spelling (`error|warn|info|debug|trace`, or `off` as
    /// `None`).
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s {
            "off" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }

    /// Fixed-width display label.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn counter_name(self) -> &'static str {
        match self {
            Level::Error => "log.events.error",
            Level::Warn => "log.events.warn",
            Level::Info => "log.events.info",
            Level::Debug => "log.events.debug",
            Level::Trace => "log.events.trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label().trim_end())
    }
}

// 0 encodes "logging off"; otherwise the numeric value of the threshold.
static LOG_LEVEL: AtomicU8 = AtomicU8::new(0);
static SEQUENCE: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Sets the stderr log threshold; `None` silences the event log.
pub fn set_log_level(level: Option<Level>) {
    // Pin the monotonic epoch no later than the moment logging turns on.
    epoch();
    LOG_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// The current stderr log threshold.
pub fn log_level() -> Option<Level> {
    match LOG_LEVEL.load(Ordering::Relaxed) {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// Whether an event at `level` would currently be emitted. Callers should
/// check this before building an expensive message (the [`crate::obs_event!`]
/// macro does).
#[inline]
pub fn event_enabled(level: Level) -> bool {
    let threshold = LOG_LEVEL.load(Ordering::Relaxed);
    threshold != 0 && level as u8 <= threshold
}

/// Emits one structured event line to stderr (when `level` passes the
/// threshold) and counts it in the registry (when metrics are enabled).
pub fn event(level: Level, target: &str, message: &str) {
    if crate::enabled() {
        crate::registry::counter(level.counter_name()).add(1);
    }
    if !event_enabled(level) {
        return;
    }
    let seq = SEQUENCE.fetch_add(1, Ordering::Relaxed);
    let t = epoch().elapsed();
    eprintln!(
        "[{seq:>6} {:>10.3}ms] {} {target}: {message}",
        t.as_secs_f64() * 1e3,
        level.label()
    );
}

/// Formats and emits an event, building the message only if either the
/// stderr threshold or the metric registry would observe it.
#[macro_export]
macro_rules! obs_event {
    ($level:expr, $target:expr, $($arg:tt)*) => {
        if $crate::event_enabled($level) || $crate::enabled() {
            $crate::event($level, $target, &format!($($arg)*));
        }
    };
}
