//! Export: the stable machine-readable JSON document behind
//! `--metrics-out`, and the human summary table behind `--metrics`.
//!
//! The document is hand-assembled (this crate is zero-dependency, like the
//! rest of the workspace's JSON output) with one schema marker,
//! `softwatt-obs-v1`; metric maps are emitted in name order so identical
//! registry states serialize to identical bytes.

use std::fmt::Write as _;

use crate::registry::{self, Snapshot};

/// Schema identifier of the exported document.
pub const SCHEMA: &str = "softwatt-obs-v1";

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to string");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is the shortest round-trip representation, which is valid
        // JSON for every finite value.
        write!(out, "{v:?}").expect("write to string");
    } else {
        out.push_str("null");
    }
}

/// Serializes the entire registry as one JSON document.
pub fn to_json() -> String {
    let mut counters = String::new();
    let mut gauges = String::new();
    let mut histograms = String::new();
    registry::visit(|metric| match metric {
        Snapshot::Counter(name, c) => {
            if !counters.is_empty() {
                counters.push_str(",\n");
            }
            counters.push_str("    ");
            push_json_string(&mut counters, name);
            write!(counters, ": {}", c.get()).expect("write to string");
        }
        Snapshot::Gauge(name, g) => {
            if !gauges.is_empty() {
                gauges.push_str(",\n");
            }
            gauges.push_str("    ");
            push_json_string(&mut gauges, name);
            gauges.push_str(": ");
            push_f64(&mut gauges, g.get());
        }
        Snapshot::Histogram(name, h) => {
            if !histograms.is_empty() {
                histograms.push_str(",\n");
            }
            histograms.push_str("    ");
            push_json_string(&mut histograms, name);
            write!(
                histograms,
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count(),
                h.sum(),
                h.min().map_or_else(|| "null".into(), |v| v.to_string()),
                h.max().map_or_else(|| "null".into(), |v| v.to_string()),
            )
            .expect("write to string");
            for (i, (bucket, n)) in h.nonzero_buckets().into_iter().enumerate() {
                if i > 0 {
                    histograms.push_str(", ");
                }
                write!(histograms, "[{bucket}, {n}]").expect("write to string");
            }
            histograms.push_str("]}");
        }
    });
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"enabled\": {},\n  \"counters\": {{\n{counters}\n  }},\n  \"gauges\": {{\n{gauges}\n  }},\n  \"histograms\": {{\n{histograms}\n  }}\n}}\n",
        crate::enabled()
    )
}

/// Renders the registry as an aligned human-readable table (the
/// `--metrics` summary). Histogram sums and extrema of `*_ns` metrics are
/// shown in milliseconds.
pub fn summary_table() -> String {
    let mut out = String::from("metric                                    value\n");
    let ns_ms = |name: &str, v: u64| {
        if name.ends_with("_ns") {
            format!("{:.3}ms", v as f64 / 1e6)
        } else {
            v.to_string()
        }
    };
    registry::visit(|metric| match metric {
        Snapshot::Counter(name, c) => {
            writeln!(out, "{name:<40} {}", c.get()).expect("write to string");
        }
        Snapshot::Gauge(name, g) => {
            writeln!(out, "{name:<40} {}", g.get()).expect("write to string");
        }
        Snapshot::Histogram(name, h) => {
            let detail = match (h.min(), h.max()) {
                (Some(min), Some(max)) if h.count() > 1 => format!(
                    "  (mean {}, min {}, max {})",
                    ns_ms(name, h.sum() / h.count()),
                    ns_ms(name, min),
                    ns_ms(name, max)
                ),
                _ => String::new(),
            };
            writeln!(
                out,
                "{name:<40} n={} sum={}{detail}",
                h.count(),
                ns_ms(name, h.sum()),
            )
            .expect("write to string");
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\u000ad\"");
    }

    #[test]
    fn floats_render_as_json_numbers() {
        let mut s = String::new();
        push_f64(&mut s, 1.5);
        s.push(' ');
        push_f64(&mut s, 3.0);
        s.push(' ');
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "1.5 3.0 null");
    }
}
