//! The global metric registry: counters, gauges, and histograms, addressed
//! by `&'static str` names.
//!
//! Registration takes a lock on a sorted map; recording is a handful of
//! atomic operations on the metric itself. Every recording entry point
//! checks [`crate::enabled`] first, so with observability disabled (the
//! default) the cost of an instrumentation point is one relaxed atomic
//! load and a predictable branch — cheap enough to leave in hot paths
//! permanently.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating-point level (stored as bits in an atomic).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Raises the gauge to `value` if it is above the current reading
    /// (a lock-free high-water mark; concurrent raisers never lower it).
    pub fn raise(&self, value: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        while value > f64::from_bits(current) {
            match self.bits.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// Number of fixed log-2 buckets: bucket `i` counts values `v` with
/// `floor(log2(v)) == i` (value 0 lands in bucket 0), so the top bucket
/// covers the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A histogram over `u64` observations (typically nanoseconds) with fixed
/// log-2 buckets plus running count, sum, min, and max.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        let bucket = (63 - value.max(1).leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation, if any were recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest observation, if any were recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// `(bucket_index, count)` for every non-empty bucket, in index order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// One registry per metric kind; `BTreeMap` keeps export order (and thus
/// the JSON schema snapshot) deterministic.
#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    gauges: BTreeMap<&'static str, &'static Gauge>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
        histograms: BTreeMap::new(),
    });
    &REGISTRY
}

fn intern<T: Default>(
    map: &mut BTreeMap<&'static str, &'static T>,
    name: &'static str,
) -> &'static T {
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// The counter registered under `name`, creating it on first use.
pub fn counter(name: &'static str) -> &'static Counter {
    intern(&mut registry().lock().expect("obs registry").counters, name)
}

/// The gauge registered under `name`, creating it on first use.
pub fn gauge(name: &'static str) -> &'static Gauge {
    intern(&mut registry().lock().expect("obs registry").gauges, name)
}

/// The histogram registered under `name`, creating it on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    intern(
        &mut registry().lock().expect("obs registry").histograms,
        name,
    )
}

/// Zeroes every registered metric (registrations are kept, so metric
/// identity and export order survive a reset). Used by the bins between
/// measurement phases and by tests.
pub fn reset_metrics() {
    let reg = registry().lock().expect("obs registry");
    for c in reg.counters.values() {
        c.reset();
    }
    for g in reg.gauges.values() {
        g.reset();
    }
    for h in reg.histograms.values() {
        h.reset();
    }
}

/// Calls `f` with every registered metric, in name order per kind.
pub(crate) fn visit<F>(mut f: F)
where
    F: FnMut(Snapshot<'_>),
{
    let reg = registry().lock().expect("obs registry");
    for (&name, c) in &reg.counters {
        f(Snapshot::Counter(name, c));
    }
    for (&name, g) in &reg.gauges {
        f(Snapshot::Gauge(name, g));
    }
    for (&name, h) in &reg.histograms {
        f(Snapshot::Histogram(name, h));
    }
}

/// A visited metric during export.
pub(crate) enum Snapshot<'a> {
    Counter(&'static str, &'a Counter),
    Gauge(&'static str, &'a Gauge),
    Histogram(&'static str, &'a Histogram),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::default();
        h.observe(0); // bucket 0 (clamped)
        h.observe(1); // bucket 0
        h.observe(2); // bucket 1
        h.observe(3); // bucket 1
        h.observe(1024); // bucket 10
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        assert_eq!(h.nonzero_buckets(), vec![(0, 2), (1, 2), (10, 1)]);
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = Histogram::default();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(h.nonzero_buckets().is_empty());
    }
}
