//! The whole-system configuration (paper Table 1 by default).

use softwatt_cpu::{MipsyConfig, MxsConfig};
use softwatt_disk::{DiskConfig, DiskPolicy};
use softwatt_mem::MemConfig;
use softwatt_os::OsConfig;
use softwatt_power::PowerParams;
use softwatt_stats::Clocking;

/// Which CPU timing model to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuModel {
    /// The in-order R4000-like model (memory-system profiles, Figure 3).
    Mipsy,
    /// The 4-wide out-of-order R10000-like model (everything else).
    Mxs,
    /// MXS narrowed to single issue (Figure 3's third panel).
    MxsSingleIssue,
}

impl CpuModel {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CpuModel::Mipsy => "mipsy",
            CpuModel::Mxs => "mxs",
            CpuModel::MxsSingleIssue => "mxs-1wide",
        }
    }

    /// Stable short name used by CLIs and the serving API (the inverse of
    /// [`CpuModel::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            CpuModel::Mipsy => "mipsy",
            CpuModel::Mxs => "mxs",
            CpuModel::MxsSingleIssue => "mxs1",
        }
    }

    /// Parses a model name as used by `simulate --cpu` and the serving
    /// API; the display label `mxs-1wide` is accepted as an alias.
    pub fn from_name(name: &str) -> Option<CpuModel> {
        match name {
            "mipsy" => Some(CpuModel::Mipsy),
            "mxs" => Some(CpuModel::Mxs),
            "mxs1" | "mxs-1wide" => Some(CpuModel::MxsSingleIssue),
            _ => None,
        }
    }
}

/// How disk-blocked idle stretches are handled by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IdleHandling {
    /// Execute the busy-waiting idle loop cycle by cycle (the faithful
    /// full-system behavior; slowest).
    #[default]
    Simulate,
    /// The paper's §3.3 acceleration: skip *deep* blocked stretches by
    /// synthesizing idle events at measured per-cycle rates, still
    /// simulating the shallow head/tail of each stretch.
    FastForward,
    /// Account for *every* blocked stretch analytically: the CPU never
    /// executes idle-loop instructions; gaps are patched into the log
    /// arithmetically. Makes the work stream disk-policy-independent,
    /// which is what the trace-replay engine relies on (`DESIGN.md`).
    Analytic,
}

/// Full machine + methodology configuration.
///
/// Defaults reproduce the paper's Table 1 system at a time scale of 2000×
/// (see `DESIGN.md` §2 for the scaling substitution).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// CPU timing model.
    pub cpu: CpuModel,
    /// Memory-hierarchy configuration.
    pub mem: MemConfig,
    /// Out-of-order core configuration (used by `Mxs*` models).
    pub mxs: MxsConfig,
    /// In-order core configuration (used by `Mipsy`).
    pub mipsy: MipsyConfig,
    /// Disk model configuration.
    pub disk: DiskConfig,
    /// OS model configuration (the workload's `cacheflush` rate overrides
    /// [`OsConfig::cacheflush_per_kinstr`] at run time).
    pub os: OsConfig,
    /// Core clock frequency in Hz.
    pub freq_hz: f64,
    /// Time-scale factor: all paper-time durations shrink by this much.
    pub time_scale: f64,
    /// Sampling window of the simulation log, in cycles.
    pub sample_interval_cycles: u64,
    /// Master seed (workload and OS randomness derive from it).
    pub seed: u64,
    /// How disk-blocked idle stretches are handled (§3.3).
    pub idle: IdleHandling,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cpu: CpuModel::Mxs,
            mem: MemConfig::default(),
            mxs: MxsConfig::default(),
            mipsy: MipsyConfig::default(),
            disk: DiskConfig::new(DiskPolicy::Conventional),
            os: OsConfig::default(),
            freq_hz: 200.0e6,
            time_scale: 2000.0,
            sample_interval_cycles: 2000,
            seed: 0xB0A7,
            idle: IdleHandling::Simulate,
        }
    }
}

impl SystemConfig {
    /// The clocking implied by frequency and time scale.
    pub fn clocking(&self) -> Clocking {
        Clocking::scaled(self.freq_hz, self.time_scale)
    }

    /// Structural power-model parameters matching this machine.
    pub fn power_params(&self) -> PowerParams {
        let base = PowerParams {
            il1: self.mem.il1,
            dl1: self.mem.dl1,
            l2: self.mem.l2,
            tlb: self.mem.tlb_entries,
            ..PowerParams::default()
        };
        match self.cpu {
            CpuModel::Mxs => PowerParams {
                fetch_width: self.mxs.fetch_width,
                decode_width: self.mxs.decode_width,
                issue_width: self.mxs.issue_width,
                mem_ports: self.mxs.mem_ports,
                int_units: self.mxs.int_units,
                fp_units: self.mxs.fp_units,
                window: self.mxs.window_size,
                lsq: self.mxs.lsq_size,
                bht: self.mxs.bht_entries,
                btb: self.mxs.btb_entries,
                ras: self.mxs.ras_entries,
                ..base
            },
            CpuModel::MxsSingleIssue => {
                let narrow = MxsConfig::single_issue();
                PowerParams {
                    fetch_width: narrow.fetch_width,
                    decode_width: narrow.decode_width,
                    issue_width: narrow.issue_width,
                    mem_ports: narrow.mem_ports,
                    int_units: narrow.int_units,
                    fp_units: narrow.fp_units,
                    window: narrow.window_size,
                    lsq: narrow.lsq_size,
                    bht: narrow.bht_entries,
                    btb: narrow.btb_entries,
                    ras: narrow.ras_entries,
                    ..base
                }
            }
            // Mipsy: a simple scalar pipeline with no OoO structures; the
            // structures still exist physically but see no events.
            CpuModel::Mipsy => PowerParams {
                fetch_width: 1,
                decode_width: 1,
                issue_width: 1,
                mem_ports: 1,
                int_units: 1,
                fp_units: 1,
                ..base
            },
        }
    }

    /// Validates cross-cutting constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field combination.
    pub fn validate(&self) -> Result<(), String> {
        // NaN must fail too, so compare through partial_cmp.
        let positive = |v: f64| v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive(self.freq_hz) || !positive(self.time_scale) {
            return Err("frequency and time scale must be positive".into());
        }
        if self.sample_interval_cycles == 0 {
            return Err("sample interval must be positive".into());
        }
        self.mxs.validate().map_err(|e| e.to_string())?;
        self.os.validate().map_err(|e| e.to_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softwatt_disk::DiskPolicy;

    #[test]
    fn default_matches_table1() {
        let c = SystemConfig::default();
        c.validate().unwrap();
        assert_eq!(c.freq_hz, 200.0e6);
        assert_eq!(c.mem.il1.size_bytes(), 32 * 1024);
        assert_eq!(c.mem.il1.line_bytes(), 64);
        assert_eq!(c.mem.il1.assoc(), 2);
        assert_eq!(c.mem.l2.size_bytes(), 1024 * 1024);
        assert_eq!(c.mem.l2.line_bytes(), 128);
        assert_eq!(c.mem.tlb_entries, 64);
        assert_eq!(c.mem.memory_mb, 128);
        assert_eq!(c.mxs.fetch_width, 4);
        assert_eq!(c.mxs.window_size, 64);
        assert_eq!(c.mxs.lsq_size, 32);
        assert_eq!(c.mxs.int_units, 2);
        assert_eq!(c.mxs.fp_units, 2);
        assert_eq!(c.mxs.bht_entries, 1024);
        assert_eq!(c.mxs.btb_entries, 1024);
        assert_eq!(c.mxs.ras_entries, 32);
        assert!(matches!(c.disk.policy, DiskPolicy::Conventional));
    }

    #[test]
    fn power_params_follow_cpu_model() {
        let mut c = SystemConfig {
            cpu: CpuModel::Mxs,
            ..SystemConfig::default()
        };
        assert_eq!(c.power_params().fetch_width, 4);
        c.cpu = CpuModel::MxsSingleIssue;
        assert_eq!(c.power_params().fetch_width, 1);
        assert_eq!(c.power_params().window, 64, "single-issue keeps the window");
        c.cpu = CpuModel::Mipsy;
        assert_eq!(c.power_params().fetch_width, 1);
    }

    #[test]
    fn validation_catches_bad_scale() {
        let c = SystemConfig {
            time_scale: 0.0,
            ..SystemConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn clocking_uses_scale() {
        let c = SystemConfig::default();
        assert_eq!(
            c.clocking().paper_secs_to_cycles(1.0),
            (200.0e6 / c.time_scale) as u64
        );
    }
}
