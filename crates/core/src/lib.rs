//! # SoftWatt — complete-machine simulation for software power estimation
//!
//! A from-scratch Rust reproduction of *"Using Complete Machine Simulation
//! for Software Power Estimation: The SoftWatt Approach"* (Gurumurthi et
//! al., HPCA 2002). This crate is the facade tying the substrate crates
//! into the paper's full system:
//!
//! - [`SystemConfig`]: the machine description (defaults = the paper's
//!   Table 1: 4-wide R10000-like core, 32 KB split L1s, 1 MB L2, 64-entry
//!   software-managed TLB, 128 MB memory, 0.35 µm / 3.3 V / 200 MHz);
//! - [`Simulator`]: boots the OS model over a workload, runs the selected
//!   CPU model cycle by cycle, and collects the sampled simulation log,
//!   kernel-service profile, and online disk-energy accounting;
//! - [`softwatt_power::PowerModel`]: post-processes the log into Watts;
//! - [`experiments`]: one entry point per table and figure of the paper's
//!   evaluation (see `DESIGN.md` §5 for the experiment index);
//! - the six SPEC JVM98-like workloads re-exported as [`Benchmark`].
//!
//! # Quickstart
//!
//! ```
//! use softwatt::{Benchmark, Simulator, SystemConfig};
//! use softwatt_power::PowerModel;
//!
//! // Shrink the run for doc-test speed; default scale is 2000.
//! let mut config = SystemConfig::default();
//! config.time_scale = 50_000.0;
//!
//! let sim = Simulator::new(config.clone())?;
//! let run = sim.run_benchmark(Benchmark::Jess);
//! let model = PowerModel::new(&config.power_params());
//! let budget = softwatt::budget::system_budget(&model, &run);
//! assert!(budget.total_w() > 1.0, "a running machine burns watts");
//! # Ok::<(), String>(())
//! ```

pub mod budget;
pub mod config;
pub mod experiments;
pub mod json;
pub mod model_store;
pub mod report;
pub mod sim;
pub mod store;

pub use budget::{system_budget, SystemBudget};
pub use config::{CpuModel, IdleHandling, SystemConfig};
pub use experiments::{ExperimentSuite, Fidelity, RunKey, RunOutcome, WorkloadKey};
pub use model_store::{ModelKey, ModelStore};
pub use sim::{RunResult, Simulator};
pub use store::{PeerSource, TraceKey, TraceStore};

// The public API surface re-exports the pieces users need.
pub use softwatt_disk::{DiskConfig, DiskPolicy};
pub use softwatt_power::{GroupPower, PowerModel, PowerParams, UnitGroup};
pub use softwatt_stats::{Clocking, Mode, SimLog};
pub use softwatt_workloads::{Benchmark, BenchmarkSpec, IoBurst, PhaseSpec, SyscallRates};
