//! The full-system simulator driver.

use softwatt_cpu::{Cpu, MipsyCpu, MxsConfig, MxsCpu};
use softwatt_disk::{replay_requests, Disk, DiskReport};
use softwatt_isa::InstrSource;
use softwatt_mem::MemHierarchy;
use softwatt_os::{IdleLoop, KernelService, OsConfig, SystemOs};
use softwatt_power::PowerModel;
use softwatt_stats::{Mode, PerfTrace, ServiceProfiler, SimLog, StatsCollector, UnitEvent};
use softwatt_workloads::{Benchmark, BenchmarkSpec, Workload};

use crate::config::{CpuModel, IdleHandling, SystemConfig};

/// Everything a run produces: the sampled log (for power post-processing),
/// the kernel-service profile, the disk's online energy report, and
/// headline counters.
#[derive(Debug)]
pub struct RunResult {
    /// Benchmark that was run, if a named one.
    pub benchmark: Option<Benchmark>,
    /// CPU model used.
    pub cpu: CpuModel,
    /// The sampled simulation log.
    pub log: SimLog,
    /// Kernel-service attribution profile.
    pub services: ServiceProfiler,
    /// Disk activity and energy report.
    pub disk: DiskReport,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// User instructions delivered by the workload.
    pub user_instrs: u64,
    /// Run duration in paper-time seconds.
    pub duration_s: f64,
}

impl RunResult {
    /// Commit IPC over the run.
    pub fn ipc(&self) -> f64 {
        self.committed as f64 / self.cycles.max(1) as f64
    }

    /// Cycles attributed to `mode`.
    pub fn mode_cycles(&self, mode: Mode) -> u64 {
        self.log.mode_cycles(mode)
    }
}

/// Per-cycle event rates of the idle loop, measured once and reused for
/// fast-forwarding (the paper found idle behavior workload-independent and
/// predictable — §3.3).
#[derive(Debug, Clone)]
struct IdleRates {
    per_cycle: Vec<(UnitEvent, f64)>,
}

/// The simulator: assembles CPU, memory, OS, disk, and stats, and drives
/// the cycle loop. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SystemConfig,
}

impl Simulator {
    /// Creates a simulator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first configuration problem found.
    pub fn new(config: SystemConfig) -> Result<Simulator, String> {
        config.validate()?;
        Ok(Simulator { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn make_cpu(&self) -> Box<dyn Cpu> {
        match self.config.cpu {
            CpuModel::Mipsy => Box::new(MipsyCpu::new(self.config.mipsy)),
            CpuModel::Mxs => Box::new(MxsCpu::new(self.config.mxs)),
            CpuModel::MxsSingleIssue => Box::new(MxsCpu::new(MxsConfig {
                bht_entries: self.config.mxs.bht_entries,
                btb_entries: self.config.mxs.btb_entries,
                ras_entries: self.config.mxs.ras_entries,
                window_size: self.config.mxs.window_size,
                lsq_size: self.config.mxs.lsq_size,
                ..MxsConfig::single_issue()
            })),
        }
    }

    /// Runs one of the named benchmarks.
    pub fn run_benchmark(&self, benchmark: Benchmark) -> RunResult {
        self.run_benchmark_inner(benchmark, false).0
    }

    /// Runs one of the named benchmarks under analytic idle handling while
    /// capturing a [`PerfTrace`]: the policy-independent record of the run
    /// (sampled log split at request boundaries, the disk request stream in
    /// work-relative time, idle event rates, and the kernel-service
    /// profile). The trace can then be replayed through any disk
    /// configuration with [`Simulator::replay_trace`], reproducing a direct
    /// simulation exactly — see `DESIGN.md` "Two-phase architecture".
    pub fn run_benchmark_traced(&self, benchmark: Benchmark) -> (RunResult, PerfTrace) {
        let (result, trace) = self.run_benchmark_inner(benchmark, true);
        (result, trace.expect("capture mode always yields a trace"))
    }

    /// Runs a benchmark through the persistent trace store: a stored trace
    /// is replayed through this simulator's disk configuration; on a miss
    /// the run is captured and persisted for every later process. Either
    /// way the result is exactly what [`Simulator::run_benchmark`] produces
    /// under [`IdleHandling::Analytic`] — callers forcing results through
    /// the store should set that idle handling so a cold and a warm run
    /// agree bit for bit.
    pub fn run_benchmark_stored(
        &self,
        benchmark: Benchmark,
        store: &crate::store::TraceStore,
    ) -> RunResult {
        let key = crate::store::TraceKey::derive(&self.config, benchmark, self.config.cpu);
        if let Some(trace) = store.load(&key) {
            let mut run = self.replay_trace(&trace);
            run.benchmark = Some(benchmark);
            return run;
        }
        let (run, trace) = self.run_benchmark_traced(benchmark);
        store.store(&key, &trace);
        run
    }

    /// Runs an arbitrary [`BenchmarkSpec`] through the persistent trace
    /// store, exactly as [`Simulator::run_benchmark_stored`] does for the
    /// canned six: the spec's content hash keys the entry, so identical
    /// specs share one capture across processes while distinct specs can
    /// never collide with each other or with a canned benchmark.
    ///
    /// # Panics
    ///
    /// As [`Simulator::run_spec`], for specs that fail
    /// [`BenchmarkSpec::validate`] or whose instruction budget is not
    /// representable at this configuration's clocking.
    pub fn run_spec_stored(
        &self,
        spec: &BenchmarkSpec,
        store: &crate::store::TraceStore,
    ) -> RunResult {
        let key =
            crate::store::TraceKey::derive_spec(&self.config, spec.content_hash(), self.config.cpu);
        if let Some(trace) = store.load(&key) {
            return self.replay_trace(&trace);
        }
        let (run, trace) = self.run_spec_traced(spec);
        store.store(&key, &trace);
        run
    }

    fn run_benchmark_inner(
        &self,
        benchmark: Benchmark,
        capture: bool,
    ) -> (RunResult, Option<PerfTrace>) {
        let (mut result, trace) = self.run_spec_inner(&benchmark.spec(), capture);
        result.benchmark = Some(benchmark);
        softwatt_obs::obs_event!(
            softwatt_obs::Level::Debug,
            "sim",
            "{benchmark} on {:?} finished: {} cycles, {} disk requests{}",
            self.config.cpu,
            result.cycles,
            result.disk.requests,
            if capture { " (trace captured)" } else { "" }
        );
        (result, trace)
    }

    /// Runs an arbitrary [`BenchmarkSpec`] — the same codepath the canned
    /// benchmarks take, so a spec equal to `benchmark.spec()` produces a
    /// bit-identical run (modulo the `benchmark` name tag, which stays
    /// `None` here).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`BenchmarkSpec::validate`] or cannot size
    /// an instruction budget at this configuration's clocking. Callers
    /// holding untrusted specs must gate on those first (the experiment
    /// suite's `register_spec` does).
    pub fn run_spec(&self, spec: &BenchmarkSpec) -> RunResult {
        self.run_spec_inner(spec, false).0
    }

    /// [`Simulator::run_spec`] while capturing a [`PerfTrace`], the spec
    /// analogue of [`Simulator::run_benchmark_traced`].
    ///
    /// # Panics
    ///
    /// As [`Simulator::run_spec`].
    pub fn run_spec_traced(&self, spec: &BenchmarkSpec) -> (RunResult, PerfTrace) {
        let (result, trace) = self.run_spec_inner(spec, true);
        (result, trace.expect("capture mode always yields a trace"))
    }

    fn run_spec_inner(
        &self,
        spec: &BenchmarkSpec,
        capture: bool,
    ) -> (RunResult, Option<PerfTrace>) {
        let clocking = self.config.clocking();
        let workload = Workload::new(spec.clone(), clocking, self.config.seed);
        let warm = workload.warm_files();
        let premap = workload.premap_regions();
        let cacheflush_rate = workload.spec().cacheflush_per_kinstr;
        self.run_source_inner(
            Box::new(workload),
            &warm,
            &premap,
            OsConfig {
                cacheflush_per_kinstr: cacheflush_rate,
                seed: self.config.seed ^ 0x5EED,
                ..self.config.os
            },
            capture,
        )
    }

    /// Runs an arbitrary instruction source under the OS model.
    pub fn run_source(
        &self,
        user: Box<dyn InstrSource>,
        warm_files: &[(softwatt_isa::FileRef, u64)],
        premap: &[(u64, u64)],
        os_config: OsConfig,
    ) -> RunResult {
        self.run_source_inner(user, warm_files, premap, os_config, false)
            .0
    }

    fn run_source_inner(
        &self,
        user: Box<dyn InstrSource>,
        warm_files: &[(softwatt_isa::FileRef, u64)],
        premap: &[(u64, u64)],
        os_config: OsConfig,
        capture: bool,
    ) -> (RunResult, Option<PerfTrace>) {
        softwatt_obs::count(
            if capture {
                "sim.capture_runs"
            } else {
                "sim.full_runs"
            },
            1,
        );
        let _span = softwatt_obs::span(if capture {
            "sim.capture_ns"
        } else {
            "sim.full_sim_ns"
        });
        let clocking = self.config.clocking();
        let model = PowerModel::new(&self.config.power_params());
        let mut stats = StatsCollector::with_weights(
            clocking,
            self.config.sample_interval_cycles,
            model.energy_weights(),
        );
        let disk = Disk::new(self.config.disk, clocking);
        let mut os = SystemOs::new(os_config, clocking, disk, user);
        for &(file, bytes) in warm_files {
            os.warm_file(file, bytes);
        }
        for &(base, bytes) in premap {
            os.premap_region(base, bytes);
        }
        let mut mem = MemHierarchy::new(self.config.mem);
        let mut cpu = self.make_cpu();

        // Trace capture needs every blocked stretch handled analytically —
        // that is what makes the captured work stream policy-independent.
        let handling = if capture {
            IdleHandling::Analytic
        } else {
            self.config.idle
        };
        let idle_rates = (handling != IdleHandling::Simulate).then(|| self.measure_idle_rates());
        let analytic = handling == IdleHandling::Analytic;
        os.set_analytic_idle(analytic);
        if capture {
            os.start_request_capture();
        }
        // Sample-index boundaries (before, after) of each analytic gap, for
        // splitting the log into policy-independent work segments.
        let mut marks: Vec<(usize, usize)> = Vec::new();

        // Safety net: a run that exceeds this is a livelock, not a workload.
        let cycle_cap = 400_000_000u64;
        // Per-stage wall-clock accumulators for `bench_simulator --profile`:
        // checked once per cycle, flushed into obs counters after the loop
        // (per-cycle obs counter updates would distort what is measured).
        let profiling = softwatt_obs::stage_timing();
        let mut os_ns = 0u64;
        let mut stats_ns = 0u64;
        loop {
            let out = cpu.cycle(&mut *os_as_source(&mut os), &mut mem, &mut stats);
            let mut t = profiling.then(std::time::Instant::now);
            if let Some(event) = out.event {
                os.handle_event(event, &mut stats);
            }
            os.apply_deferred(&mut mem, &mut stats);
            if let Some(t0) = t {
                let now = std::time::Instant::now();
                os_ns += now.duration_since(t0).as_nanos() as u64;
                t = Some(now);
            }
            stats.tick();
            if let Some(t0) = t {
                stats_ns += t0.elapsed().as_nanos() as u64;
            }
            if out.program_exited && os.finished() {
                break;
            }
            match (&idle_rates, os.blocked_until()) {
                // Analytic idle handling: account for the whole blocked
                // stretch arithmetically, flushing the sample window at the
                // request boundary even when the gap is empty (the gap
                // length is the only policy-dependent quantity, so samples
                // must never straddle a boundary).
                (Some(rates), Some(until)) if analytic => {
                    let now = stats.cycle();
                    let gap = until.saturating_sub(now);
                    stats.flush_window();
                    let before = stats.samples_emitted();
                    stats.skip_idle_gap(gap, &rates.per_cycle, KernelService::IdleProcess.id());
                    os.complete_block(gap);
                    if capture {
                        marks.push((before, stats.samples_emitted()));
                    }
                }
                // Legacy §3.3 acceleration: skip only *deep* stretches, and
                // keep simulating their head and tail.
                (Some(rates), Some(until)) => {
                    let now = stats.cycle();
                    if until > now + 5_000 {
                        let gap = until - now - 500;
                        let prev_mode = stats.mode();
                        stats.set_mode(Mode::Idle);
                        for &(ev, rate) in &rates.per_cycle {
                            stats.record_n(ev, (rate * gap as f64) as u64);
                        }
                        stats.tick_n(gap);
                        stats.set_mode(prev_mode);
                    }
                }
                _ => {}
            }
            assert!(stats.cycle() < cycle_cap, "runaway simulation");
        }

        if profiling {
            cpu.flush_stage_timing();
            softwatt_obs::count("sim.stage.os_ns", os_ns);
            softwatt_obs::count("sim.stage.stats_ns", stats_ns);
        }
        let cycles = stats.cycle();
        let work_cycles = stats.work_cycle();
        let committed = cpu.committed_instructions();
        let user_instrs = os.user_instructions();
        let requests = os.take_request_log();
        let (log, services) = stats.finish_with_services();
        let disk_report = os.into_disk().report(cycles);
        let trace = capture.then(|| {
            let samples = log.samples();
            let mut segments = Vec::with_capacity(marks.len() + 1);
            let mut start = 0usize;
            for &(before, after) in &marks {
                segments.push(samples[start..before].to_vec());
                start = after;
            }
            segments.push(samples[start..].to_vec());
            let mut work_services: Vec<_> = services
                .aggregates()
                .iter()
                .filter(|(&id, _)| id != KernelService::IdleProcess.id())
                .map(|(&id, agg)| (id, agg.clone()))
                .collect();
            work_services.sort_by_key(|&(id, _)| id);
            let trace = PerfTrace {
                clocking,
                sample_interval: self.config.sample_interval_cycles,
                segments,
                requests,
                idle_rates: idle_rates
                    .as_ref()
                    .map(|r| r.per_cycle.clone())
                    .unwrap_or_default(),
                work_services,
                work_cycles,
                committed,
                user_instrs,
            };
            trace.validate().expect("captured trace is well-formed");
            trace
        });
        let result = RunResult {
            benchmark: None,
            cpu: self.config.cpu,
            log,
            services,
            disk: disk_report,
            cycles,
            committed,
            user_instrs,
            duration_s: clocking.cycles_to_paper_secs(cycles),
        };
        (result, trace)
    }

    /// Replays a captured [`PerfTrace`] through this simulator's disk
    /// configuration without re-simulating the CPU: the request stream is
    /// re-run through a fresh disk state machine, blocked gaps are
    /// recomputed, and the log/profile are reconstructed by replaying the
    /// trace's work segments and patching each gap with the same idle-event
    /// machinery a direct analytic simulation uses. The result is exactly
    /// (bit-for-bit) what [`Simulator::run_benchmark`] produces under
    /// [`IdleHandling::Analytic`] for the same configuration.
    ///
    /// Only the disk configuration may differ from the capture run; the
    /// CPU, memory, clocking, and workload are baked into the trace.
    pub fn replay_trace(&self, trace: &PerfTrace) -> RunResult {
        softwatt_obs::count("sim.replay_runs", 1);
        let _span = softwatt_obs::span("sim.replay_ns");
        trace.validate().expect("valid trace");
        let clocking = self.config.clocking();
        let model = PowerModel::new(&self.config.power_params());
        let timeline = replay_requests(
            self.config.disk,
            clocking,
            &trace.requests,
            trace.work_cycles,
        );
        // O(segments + samples), not O(cycles): the capture invariants let
        // the replay copy work samples and synthesize gap windows directly
        // instead of ticking a collector through every cycle. Bit-identical
        // to the collector-driven path (pinned by the stats crate's
        // equivalence tests and `tests/replay_equivalence.rs`).
        let (log, mut services) = trace.fast_replay(
            &timeline.gaps,
            model.energy_weights(),
            KernelService::IdleProcess.id(),
        );
        let cycles = log.total_cycles();
        debug_assert_eq!(cycles, timeline.total_cycles);
        for (service, aggregate) in &trace.work_services {
            services.merge_aggregate(*service, aggregate);
        }
        RunResult {
            benchmark: None,
            cpu: self.config.cpu,
            log,
            services,
            disk: timeline.report,
            cycles,
            committed: trace.committed,
            user_instrs: trace.user_instrs,
            duration_s: clocking.cycles_to_paper_secs(cycles),
        }
    }

    /// Measures the idle loop's per-cycle event rates with a short
    /// standalone simulation (warm caches, steady state).
    fn measure_idle_rates(&self) -> IdleRates {
        let _span = softwatt_obs::span("sim.idle_rate_measure_ns");
        let mut cpu = self.make_cpu();
        let mut mem = MemHierarchy::new(self.config.mem);
        let mut stats = StatsCollector::new(self.config.clocking(), 1_000_000);
        let mut idle = IdleSource(IdleLoop::new());
        // Warm up, then measure.
        for _ in 0..2_000 {
            cpu.cycle(&mut idle, &mut mem, &mut stats);
            stats.tick();
        }
        let warm_snapshot = stats.combined().clone();
        let warm_cycle = stats.cycle();
        for _ in 0..4_000 {
            cpu.cycle(&mut idle, &mut mem, &mut stats);
            stats.tick();
        }
        let delta = stats.combined().delta_since(&warm_snapshot);
        let cycles = (stats.cycle() - warm_cycle) as f64;
        IdleRates {
            per_cycle: delta
                .iter()
                .filter(|(_, n)| *n > 0)
                .map(|(ev, n)| (ev, n as f64 / cycles))
                .collect(),
        }
    }
}

/// Adapter: `SystemOs` already implements `InstrSource`; this keeps the
/// call site readable under the borrow checker.
fn os_as_source(os: &mut SystemOs) -> &mut SystemOs {
    os
}

struct IdleSource(IdleLoop);

impl InstrSource for IdleSource {
    fn next_instr(&mut self, _stats: &mut StatsCollector) -> Option<softwatt_isa::Instr> {
        Some(self.0.next_instr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SystemConfig {
        SystemConfig {
            time_scale: 40_000.0,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn jess_runs_to_completion_on_mxs() {
        let sim = Simulator::new(quick_config()).unwrap();
        let run = sim.run_benchmark(Benchmark::Jess);
        assert!(run.cycles > 5_000);
        assert_eq!(run.benchmark, Some(Benchmark::Jess));
        assert!(run.ipc() > 0.3 && run.ipc() < 4.0, "IPC {:.2}", run.ipc());
        assert!(run.mode_cycles(Mode::User) > 0);
        assert!(run.mode_cycles(Mode::KernelInstr) > 0);
        assert!(run.mode_cycles(Mode::Idle) > 0, "class loading must idle");
        assert!(run.disk.requests > 0);
    }

    #[test]
    fn mipsy_model_also_completes() {
        let mut config = quick_config();
        config.cpu = CpuModel::Mipsy;
        let sim = Simulator::new(config).unwrap();
        let run = sim.run_benchmark(Benchmark::Db);
        assert!(
            run.ipc() <= 1.0,
            "Mipsy cannot exceed one IPC, got {:.2}",
            run.ipc()
        );
        assert!(run.cycles > 5_000);
    }

    #[test]
    fn single_issue_is_slower_than_wide() {
        let wide = Simulator::new(quick_config())
            .unwrap()
            .run_benchmark(Benchmark::Db);
        let mut narrow_cfg = quick_config();
        narrow_cfg.cpu = CpuModel::MxsSingleIssue;
        let narrow = Simulator::new(narrow_cfg)
            .unwrap()
            .run_benchmark(Benchmark::Db);
        assert!(
            narrow.cycles > wide.cycles,
            "narrow {} vs wide {}",
            narrow.cycles,
            wide.cycles
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let sim = Simulator::new(quick_config()).unwrap();
        let a = sim.run_benchmark(Benchmark::Jess);
        let b = sim.run_benchmark(Benchmark::Jess);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.log.total_events(), b.log.total_events());
        assert!((a.disk.energy_j - b.disk.energy_j).abs() < 1e-12);
    }

    #[test]
    fn fast_forward_preserves_results_approximately() {
        let slow = Simulator::new(quick_config())
            .unwrap()
            .run_benchmark(Benchmark::Jess);
        let mut ff_cfg = quick_config();
        ff_cfg.idle = IdleHandling::FastForward;
        let fast = Simulator::new(ff_cfg)
            .unwrap()
            .run_benchmark(Benchmark::Jess);
        // Same idle cycle total (time still passes), similar event totals.
        let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / (a.max(1) as f64);
        assert!(
            rel(slow.mode_cycles(Mode::Idle), fast.mode_cycles(Mode::Idle)) < 0.2,
            "idle cycles: {} vs {}",
            slow.mode_cycles(Mode::Idle),
            fast.mode_cycles(Mode::Idle)
        );
        assert!(rel(slow.cycles, fast.cycles) < 0.2);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = quick_config();
        config.sample_interval_cycles = 0;
        assert!(Simulator::new(config).is_err());
    }
}
