//! Whole-system power budgets: processor/memory groups plus the disk
//! (Figures 5 and 7).

use std::fmt;

use softwatt_power::{GroupPower, PowerModel, UnitGroup};

use crate::sim::RunResult;

/// The system-wide average-power budget of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemBudget {
    /// Processor + memory-subsystem average power per group (W).
    pub groups: GroupPower,
    /// Disk average power over the run (W).
    pub disk_w: f64,
}

impl SystemBudget {
    /// Total system power (W).
    pub fn total_w(&self) -> f64 {
        self.groups.total() + self.disk_w
    }

    /// The disk's share of the budget, in percent (the paper's headline:
    /// 34% conventional, 23% with the IDLE-capable disk). A zero-power
    /// budget (empty trace, degenerate config) has no shares: every
    /// percentage is 0, never NaN.
    pub fn disk_pct(&self) -> f64 {
        Self::share_pct(self.disk_w, self.total_w())
    }

    /// One group's share of the budget, in percent (0 when the budget
    /// itself is zero).
    pub fn group_pct(&self, group: UnitGroup) -> f64 {
        Self::share_pct(self.groups.get(group), self.total_w())
    }

    fn share_pct(part: f64, total: f64) -> f64 {
        if total > 0.0 {
            100.0 * part / total
        } else {
            0.0
        }
    }

    /// Averages several budgets (the paper averages over all benchmarks).
    /// Returns `None` for an empty slice — an empty benchmark selection is
    /// a caller error to surface, not a panic.
    pub fn mean_of(budgets: &[SystemBudget]) -> Option<SystemBudget> {
        if budgets.is_empty() {
            return None;
        }
        let n = budgets.len() as f64;
        let mut groups = GroupPower::new();
        let mut disk_w = 0.0;
        for b in budgets {
            groups.merge(&b.groups);
            disk_w += b.disk_w;
        }
        Some(SystemBudget {
            groups: groups.scaled(1.0 / n),
            disk_w: disk_w / n,
        })
    }
}

impl fmt::Display for SystemBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (g, w) in self.groups.iter() {
            writeln!(
                f,
                "{:<12} {:7.3} W  {:5.1}%",
                g.label(),
                w,
                self.group_pct(g)
            )?;
        }
        writeln!(
            f,
            "{:<12} {:7.3} W  {:5.1}%",
            "Disk",
            self.disk_w,
            self.disk_pct()
        )?;
        write!(f, "{:<12} {:7.3} W", "Total", self.total_w())
    }
}

/// Computes a run's system budget: processor/memory power from the log via
/// the analytical models, disk power from its online energy accounting.
pub fn system_budget(model: &PowerModel, run: &RunResult) -> SystemBudget {
    let table = model.mode_table(&run.log);
    SystemBudget {
        groups: table.overall_average_power_w(),
        disk_w: if run.duration_s > 0.0 {
            run.disk.energy_j / run.duration_s
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(l1i: f64, disk: f64) -> SystemBudget {
        let mut groups = GroupPower::new();
        groups.add(UnitGroup::L1I, l1i);
        SystemBudget {
            groups,
            disk_w: disk,
        }
    }

    #[test]
    fn percentages_sum_to_one_hundred() {
        let b = budget(6.0, 4.0);
        let sum: f64 = UnitGroup::ALL.iter().map(|&g| b.group_pct(g)).sum::<f64>() + b.disk_pct();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!((b.disk_pct() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn mean_averages_componentwise() {
        let m = SystemBudget::mean_of(&[budget(2.0, 4.0), budget(4.0, 2.0)]).unwrap();
        assert!((m.groups.get(UnitGroup::L1I) - 3.0).abs() < 1e-12);
        assert!((m.disk_w - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert!(SystemBudget::mean_of(&[]).is_none());
    }

    #[test]
    fn zero_power_budget_has_zero_percentages_not_nan() {
        let b = budget(0.0, 0.0);
        assert_eq!(b.total_w(), 0.0);
        assert_eq!(b.disk_pct(), 0.0);
        for g in UnitGroup::ALL {
            assert_eq!(b.group_pct(g), 0.0, "{}", g.label());
        }
        // The Display impl must render without NaN poisoning the report.
        let rendered = format!("{b}");
        assert!(!rendered.contains("NaN"), "{rendered}");
    }
}
