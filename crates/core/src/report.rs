//! Paper reference values and small formatting helpers.
//!
//! The benchmark harness prints every regenerated table/figure next to the
//! numbers the paper reports; those paper-side numbers live here so
//! `EXPERIMENTS.md` and the harness stay consistent.

/// Values transcribed from the paper.
pub mod paper {
    /// §2: SoftWatt's modeled maximum CPU power for the Table 1 R10000
    /// configuration.
    pub const MAX_POWER_W: f64 = 25.3;
    /// §2: the R10000 data sheet's maximum power dissipation.
    pub const DATASHEET_MAX_POWER_W: f64 = 30.0;

    /// Figure 5: the conventional disk's share of system average power.
    pub const FIG5_DISK_PCT: f64 = 34.0;
    /// Figure 5 shares: (Datapath, L1D, L1I, Clock) percent.
    pub const FIG5_SHARES_PCT: [(&str, f64); 4] = [
        ("Datapath", 15.0),
        ("L1 D-Cache", 6.0),
        ("L1 I-Cache", 22.0),
        ("Clock", 22.0),
    ];
    /// Figure 7: the IDLE-capable disk's share.
    pub const FIG7_DISK_PCT: f64 = 23.0;
    /// Figure 7 shares: (Datapath, L1D, L1I, Clock) percent.
    pub const FIG7_SHARES_PCT: [(&str, f64); 4] = [
        ("Datapath", 17.0),
        ("L1 D-Cache", 8.0),
        ("L1 I-Cache", 26.0),
        ("Clock", 26.0),
    ];

    /// Table 2: (benchmark, % cycles per mode, % energy per mode) with
    /// modes ordered user / kernel / sync / idle.
    pub const TABLE2: [(&str, [f64; 4], [f64; 4]); 6] = [
        (
            "compress",
            [88.24, 7.95, 0.20, 3.61],
            [93.74, 4.18, 0.14, 1.94],
        ),
        (
            "jess",
            [63.69, 24.57, 0.86, 10.88],
            [77.15, 15.12, 0.68, 7.05],
        ),
        ("db", [66.10, 24.28, 0.75, 8.87], [81.19, 13.22, 0.54, 5.05]),
        (
            "javac",
            [64.20, 27.54, 0.55, 7.71],
            [78.47, 15.98, 0.44, 5.11],
        ),
        (
            "mtrt",
            [80.62, 14.80, 0.26, 4.32],
            [90.07, 7.44, 0.17, 2.32],
        ),
        (
            "jack",
            [69.02, 27.91, 0.63, 2.44],
            [81.36, 16.43, 0.51, 1.70],
        ),
    ];

    /// Table 3: (benchmark, iL1 refs/cycle per mode, dL1 refs/cycle per
    /// mode), modes ordered user / kernel / sync / idle.
    pub const TABLE3: [(&str, [f64; 4], [f64; 4]); 6] = [
        (
            "compress",
            [2.0088, 1.1203, 1.5560, 0.7612],
            [0.6833, 0.2080, 0.1745, 0.3546],
        ),
        (
            "jess",
            [1.9861, 1.1143, 1.5956, 0.8267],
            [0.6217, 0.2164, 0.1775, 0.3851],
        ),
        (
            "db",
            [2.0911, 1.0602, 1.5240, 0.7244],
            [0.6699, 0.1892, 0.1832, 0.3375],
        ),
        (
            "javac",
            [1.9685, 1.0346, 1.5355, 0.8110],
            [0.5604, 0.1835, 0.1720, 0.3778],
        ),
        (
            "mtrt",
            [2.1105, 1.0850, 1.5177, 0.7524],
            [0.6473, 0.1908, 0.1697, 0.3505],
        ),
        (
            "jack",
            [1.8465, 1.0410, 1.5585, 0.8718],
            [0.5869, 0.1931, 0.1708, 0.4061],
        ),
    ];

    /// §3.2: ALU uses per cycle per mode (user/kernel/sync/idle).
    pub const ALU_PER_CYCLE: [f64; 4] = [0.76, 0.42, 0.59, 0.26];

    /// Table 4: utlb's share of kernel cycles / kernel energy per
    /// benchmark (the dominant row of each benchmark's table).
    pub const TABLE4_UTLB: [(&str, f64, f64); 6] = [
        ("compress", 76.29, 64.30),
        ("jess", 64.82, 53.71),
        ("db", 75.66, 66.64),
        ("javac", 78.78, 71.67),
        ("mtrt", 81.31, 72.20),
        ("jack", 71.01, 64.05),
    ];

    /// Table 5: (service, mean energy per invocation J, coefficient of
    /// deviation %).
    pub const TABLE5: [(&str, f64, f64); 6] = [
        ("utlb", 2.1276e-7, 0.13971),
        ("demand_zero", 5.408e-5, 1.4927),
        ("cacheflush", 2.1606e-5, 2.4698),
        ("read", 4.8894e-5, 6.615),
        ("write", 2.5351e-4, 10.6632),
        ("open", 1.5586e-4, 10.0714),
    ];

    /// §5: kernel instructions + sync account for up to ~17% of
    /// processor/memory energy (jack), ~15% on average.
    pub const KERNEL_ENERGY_SHARE_MAX_PCT: f64 = 17.0;
    /// §5: over 5% of system energy goes to the idle process.
    pub const IDLE_ENERGY_SHARE_PCT: f64 = 5.0;
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}

/// Formats Watts with three decimals.
pub fn watts(x: f64) -> String {
    format!("{x:7.3} W")
}

/// Formats Joules with engineering-style scaling.
pub fn joules(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:8.2} J")
    } else if x >= 1.0e-3 {
        format!("{:8.2} mJ", x * 1.0e3)
    } else if x >= 1.0e-6 {
        format!("{:8.2} uJ", x * 1.0e6)
    } else {
        format!("{:8.2} nJ", x * 1.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_rows_sum_to_one_hundred() {
        for (name, cycles, energy) in paper::TABLE2 {
            let c: f64 = cycles.iter().sum();
            let e: f64 = energy.iter().sum();
            assert!((c - 100.0).abs() < 0.5, "{name} cycles sum {c}");
            assert!((e - 100.0).abs() < 0.5, "{name} energy sum {e}");
        }
    }

    #[test]
    fn paper_user_energy_share_exceeds_cycle_share() {
        // The paper's observation that user mode is the power-hungriest.
        for (name, cycles, energy) in paper::TABLE2 {
            assert!(energy[0] > cycles[0], "{name}");
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.256), " 25.6%");
        assert!(joules(2.0).contains('J'));
        assert!(joules(5.0e-5).contains("uJ"));
        assert!(joules(2.0e-7).contains("nJ"));
        assert!(watts(1.5).contains('W'));
    }
}
