//! The persistent surrogate-model store: pay for a calibration once per
//! machine, not once per process.
//!
//! A [`ModelStore`] is a content-addressed cache directory of `swmodel-v1`
//! files (see `softwatt_power::surrogate`) colocated with the trace store.
//! Entries are keyed by a [`ModelKey`]: a stable 64-bit hash of the
//! *grid-independent* configuration identity — every [`SystemConfig`]
//! field that can change training data or predictions (time scale, seed,
//! memory geometry, core widths, OS parameters, sampling interval, ...).
//! The CPU field, idle handling, and disk policy are normalized out: one
//! model covers every CPU (it carries per-CPU weights) and every disk
//! policy (cells are keyed by disk setup inside the model).
//!
//! The store inherits the [`crate::store::TraceStore`] failure-mode
//! contract verbatim — it is a cache, never a source of truth:
//!
//! - lookups that find nothing are misses (the caller refits);
//! - entries that fail to parse (bad magic, truncation, checksum or
//!   key-descriptor mismatch, stale format version) are counted as
//!   corrupt, logged, deleted, and treated as misses;
//! - writes are crash-safe (temp file in the same directory, fsync,
//!   atomic rename) and best-effort.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use softwatt_power::surrogate::SWMODEL_VERSION;
use softwatt_power::SurrogateModel;
use softwatt_stats::hash::fnv1a;

use crate::config::{IdleHandling, SystemConfig};

/// The content address of one stored surrogate model.
///
/// The descriptor string is the full human-readable identity (it rides
/// along inside the entry as the annotation, so a hash collision or a
/// config drift is detected on load); the hash names the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelKey {
    descriptor: String,
    hash: u64,
}

impl ModelKey {
    /// Derives the key for a configuration's surrogate model.
    ///
    /// Grid-dimension fields are normalized before hashing: the CPU field
    /// to its default (weights are per-CPU inside the model), idle
    /// handling to [`IdleHandling::Analytic`] (the mode training runs are
    /// captured under), and the disk *policy* to conventional (cells are
    /// keyed by disk setup inside the model). Every other field
    /// participates via the config's `Debug` rendering, whose f64
    /// formatting is shortest-round-trip and therefore exact. The
    /// `swmodel` format version is folded in so a codec change
    /// invalidates every old entry at once.
    pub fn derive(config: &SystemConfig) -> ModelKey {
        let mut canonical = config.clone();
        canonical.cpu = SystemConfig::default().cpu;
        canonical.idle = IdleHandling::Analytic;
        canonical.disk.policy = softwatt_disk::DiskPolicy::Conventional;
        let descriptor = format!("swmodel-v{SWMODEL_VERSION}|{canonical:?}");
        let hash = fnv1a(descriptor.as_bytes());
        ModelKey { descriptor, hash }
    }

    /// The full identity string (stored inside the entry as its
    /// annotation).
    pub fn descriptor(&self) -> &str {
        &self.descriptor
    }

    /// The stable 64-bit content hash (names the cache file).
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

/// A content-addressed on-disk cache of fitted [`SurrogateModel`]s. See
/// the module docs for the failure-mode contract.
#[derive(Debug, Clone)]
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ModelStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ModelStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry for `key` lives at.
    pub fn entry_path(&self, key: &ModelKey) -> PathBuf {
        self.dir.join(format!("{:016x}.swmodel", key.hash))
    }

    /// Whether an entry file exists for `key`, without reading it.
    pub fn contains(&self, key: &ModelKey) -> bool {
        self.entry_path(key).exists()
    }

    /// Looks `key` up, returning the stored model on a hit.
    ///
    /// Never errors: a missing entry is a miss; an unreadable or corrupt
    /// entry (bad magic, truncation, checksum mismatch, stale format
    /// version, annotation that does not match the key descriptor) is
    /// counted, logged, *deleted*, and reported as a miss. The caller's
    /// only fallback is a fresh calibration either way.
    pub fn load(&self, key: &ModelKey) -> Option<SurrogateModel> {
        let path = self.entry_path(key);
        let file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    softwatt_obs::obs_event!(
                        softwatt_obs::Level::Warn,
                        "store",
                        "cannot open model cache entry {}: {e}",
                        path.display()
                    );
                }
                softwatt_obs::count("model_store.misses", 1);
                return None;
            }
        };
        let _span = softwatt_obs::span("model_store.load_ns");
        let parsed =
            SurrogateModel::from_binary(io::BufReader::new(file)).and_then(|(model, note)| {
                if note == key.descriptor.as_bytes() {
                    Ok(model)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "entry annotation does not match the key descriptor \
                         (hash collision or config drift)",
                    ))
                }
            });
        match parsed {
            Ok(model) => {
                softwatt_obs::count("model_store.hits", 1);
                model
            }
            Err(e) => {
                softwatt_obs::count("model_store.corrupt", 1);
                softwatt_obs::count("model_store.misses", 1);
                softwatt_obs::obs_event!(
                    softwatt_obs::Level::Warn,
                    "store",
                    "corrupt model cache entry {} ({e}); deleting and refitting",
                    path.display()
                );
                self.evict(&path);
                return None;
            }
        }
        .into()
    }

    /// Persists `model` under `key`, crash-safely: the bytes land in a
    /// temp file in the store directory, are fsynced, and are renamed
    /// over the final name, so concurrent readers and a crash mid-write
    /// can never observe a partial entry.
    ///
    /// Best-effort: failures are logged as obs events and swallowed — the
    /// caller already has the model, and the store is only a cache.
    pub fn store(&self, key: &ModelKey, model: &SurrogateModel) {
        let _span = softwatt_obs::span("model_store.write_ns");
        let tmp = self.dir.join(format!(
            ".tmp-model-{:016x}-{}",
            key.hash,
            std::process::id()
        ));
        match self.write_entry(key, model, &tmp) {
            Ok(()) => softwatt_obs::count("model_store.writes", 1),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                softwatt_obs::obs_event!(
                    softwatt_obs::Level::Warn,
                    "store",
                    "cannot persist model cache entry {} ({e}); continuing without it",
                    self.entry_path(key).display()
                );
            }
        }
    }

    fn write_entry(&self, key: &ModelKey, model: &SurrogateModel, tmp: &Path) -> io::Result<()> {
        let mut file = fs::File::create(tmp)?;
        model.to_binary(&mut file, key.descriptor.as_bytes())?;
        file.flush()?;
        file.sync_all()?;
        drop(file);
        fs::rename(tmp, self.entry_path(key))
    }

    /// Deletes every `.swmodel` entry in the store, returning how many
    /// were removed.
    ///
    /// # Errors
    ///
    /// Returns the first directory-listing or deletion error.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0;
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "swmodel") {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    fn evict(&self, path: &Path) {
        match fs::remove_file(path) {
            Ok(()) => softwatt_obs::count("model_store.evictions", 1),
            // Already gone is fine — another process may have evicted it.
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => softwatt_obs::obs_event!(
                softwatt_obs::Level::Warn,
                "store",
                "cannot delete corrupt model cache entry {}: {e}",
                path.display()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuModel;
    use softwatt_power::SurrogateTrainer;
    use softwatt_power::{PowerModel, PowerParams};
    use softwatt_workloads::Benchmark;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swmodelstore-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn quick_config() -> SystemConfig {
        SystemConfig {
            time_scale: 50_000.0,
            idle: IdleHandling::Analytic,
            ..SystemConfig::default()
        }
    }

    fn fitted_model(config: &SystemConfig) -> SurrogateModel {
        let sim = crate::sim::Simulator::new(config.clone()).unwrap();
        let run = sim.run_benchmark(Benchmark::Jess);
        let model = PowerModel::new(&PowerParams::default());
        let mut trainer = SurrogateTrainer::new();
        trainer.add_run(
            "jess",
            "mxs",
            "conv",
            &run.log,
            &model,
            run.duration_s,
            run.committed,
            run.user_instrs,
            run.disk.energy_j,
            model.mode_table(&run.log).total_energy_j(),
        );
        trainer.fit().unwrap()
    }

    #[test]
    fn key_ignores_grid_dimension_fields() {
        let config = quick_config();
        let base = ModelKey::derive(&config);

        let mut variant = config.clone();
        variant.cpu = CpuModel::Mipsy;
        variant.idle = IdleHandling::Simulate;
        variant.disk.policy = softwatt_disk::DiskPolicy::Standby { threshold_s: 2.0 };
        assert_eq!(
            ModelKey::derive(&variant),
            base,
            "cpu, idle handling, and disk policy must not change the key"
        );

        let mut scaled = config.clone();
        scaled.time_scale = 60_000.0;
        assert_ne!(ModelKey::derive(&scaled), base);
        let mut seeded = config.clone();
        seeded.seed ^= 1;
        assert_ne!(ModelKey::derive(&seeded), base);
    }

    #[test]
    fn store_round_trips_a_fitted_model() {
        let dir = test_dir("roundtrip");
        let store = ModelStore::open(&dir).unwrap();
        let config = quick_config();
        let model = fitted_model(&config);
        let key = ModelKey::derive(&config);

        assert!(store.load(&key).is_none(), "store starts empty");
        store.store(&key, &model);
        assert_eq!(store.load(&key).as_ref(), Some(&model));

        // A different key misses even though the file for `key` exists.
        let mut other_config = config.clone();
        other_config.seed ^= 1;
        assert!(store.load(&ModelKey::derive(&other_config)).is_none());

        assert_eq!(store.clear().unwrap(), 1);
        assert!(store.load(&key).is_none(), "clear removed the entry");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_deleted_and_misses() {
        let dir = test_dir("corrupt");
        let store = ModelStore::open(&dir).unwrap();
        let config = quick_config();
        let model = fitted_model(&config);
        let key = ModelKey::derive(&config);
        store.store(&key, &model);

        let path = store.entry_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        assert!(store.load(&key).is_none(), "corrupt entry must miss");
        assert!(!path.exists(), "corrupt entry must be deleted");
        assert!(store.load(&key).is_none(), "second lookup is a plain miss");
        let _ = fs::remove_dir_all(&dir);
    }
}
