//! One entry point per table and figure of the paper's evaluation.
//!
//! [`ExperimentSuite`] memoizes work at two levels. A full simulation runs
//! once per distinct (benchmark, CPU model) pair and captures a
//! policy-independent [`PerfTrace`]; every (benchmark, CPU, disk policy)
//! bundle is then *derived* from that trace by replaying the disk request
//! stream through the requested policy ([`Simulator::replay_trace`]) —
//! exactly reproducing what a direct simulation would have produced, at a
//! fraction of the cost. `DESIGN.md` §5 maps each method here to its paper
//! artifact; `EXPERIMENTS.md` records paper-vs-measured values.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use softwatt_disk::{DiskConfig, DiskMode, DiskPolicy, DiskPowerTable};
use softwatt_os::KernelService;
use softwatt_power::{
    GroupPower, PowerModel, SurrogateEstimate, SurrogateModel, SurrogateTrainer, UnitGroup,
};
use softwatt_stats::{Mode, PerfTrace};
use softwatt_workloads::{Benchmark, BenchmarkSpec};

use crate::budget::{system_budget, SystemBudget};
use crate::config::{CpuModel, IdleHandling, SystemConfig};
use crate::model_store::{ModelKey, ModelStore};
use crate::report::{joules, pct};
use crate::sim::{RunResult, Simulator};
use crate::store::{PeerSource, TraceKey, TraceStore};

/// Discrete disk configurations of the Section 4 study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskSetup {
    /// Configuration 1: conventional (always ACTIVE).
    Conventional,
    /// Configuration 2: IDLE after each request.
    IdleOnly,
    /// Configuration 3: 2 s spin-down threshold.
    Standby2s,
    /// Configuration 4: 4 s spin-down threshold.
    Standby4s,
    /// Extension (not in the paper's four): 2 s spin-down plus a SLEEP
    /// command after 10 further seconds in STANDBY.
    SleepExt,
}

impl DiskSetup {
    /// The four configurations in paper order.
    pub const ALL: [DiskSetup; 4] = [
        DiskSetup::Conventional,
        DiskSetup::IdleOnly,
        DiskSetup::Standby2s,
        DiskSetup::Standby4s,
    ];

    /// The disk policy this setup selects.
    pub fn policy(self) -> DiskPolicy {
        match self {
            DiskSetup::Conventional => DiskPolicy::Conventional,
            DiskSetup::IdleOnly => DiskPolicy::IdleWhenNotBusy,
            DiskSetup::Standby2s => DiskPolicy::Standby { threshold_s: 2.0 },
            DiskSetup::Standby4s => DiskPolicy::Standby { threshold_s: 4.0 },
            DiskSetup::SleepExt => DiskPolicy::Sleep {
                threshold_s: 2.0,
                sleep_after_s: 10.0,
            },
        }
    }

    /// Stable short name used by CLIs and the serving API (the inverse of
    /// [`DiskSetup::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            DiskSetup::Conventional => "conv",
            DiskSetup::IdleOnly => "idle",
            DiskSetup::Standby2s => "standby2",
            DiskSetup::Standby4s => "standby4",
            DiskSetup::SleepExt => "sleep",
        }
    }

    /// Parses a [`DiskSetup::name`]; `None` for an unknown name.
    pub fn from_name(name: &str) -> Option<DiskSetup> {
        match name {
            "conv" => Some(DiskSetup::Conventional),
            "idle" => Some(DiskSetup::IdleOnly),
            "standby2" => Some(DiskSetup::Standby2s),
            "standby4" => Some(DiskSetup::Standby4s),
            "sleep" => Some(DiskSetup::SleepExt),
            _ => None,
        }
    }

    /// Display label (paper legend).
    pub fn label(self) -> &'static str {
        match self {
            DiskSetup::Conventional => "Baseline",
            DiskSetup::IdleOnly => "Without Spindowns",
            DiskSetup::Standby2s => "With 2 Sec. Spindown",
            DiskSetup::Standby4s => "With 4 Sec. Spindown",
            DiskSetup::SleepExt => "With SLEEP (ext.)",
        }
    }
}

/// The answer-quality tier a caller asks for. Orthogonal to the memo
/// identity ([`RunKey`]): all three tiers answer the *same* question about
/// the same machine setup, at different cost/accuracy points, and only the
/// two exact tiers ever enter the run/trace memos — a surrogate answer can
/// never poison them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Microsecond counter-surrogate estimate
    /// ([`ExperimentSuite::surrogate_estimate`]), with an explicit error
    /// bound; falls back to the exact tiers when no model covers the key.
    Surrogate,
    /// The default exact tier: memo → trace replay → full simulation.
    #[default]
    Replay,
    /// Exact, forcing a full simulation on a memo miss (never replay).
    /// Bit-identical to [`Fidelity::Replay`] — replay equivalence is a
    /// repo invariant — so it exists for A/B auditing, not accuracy.
    Full,
}

impl Fidelity {
    /// Stable short name used by CLIs and the serving API (the inverse of
    /// [`Fidelity::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Surrogate => "surrogate",
            Fidelity::Replay => "replay",
            Fidelity::Full => "full",
        }
    }

    /// Parses a [`Fidelity::name`]; `None` for an unknown name.
    pub fn from_name(name: &str) -> Option<Fidelity> {
        match name {
            "surrogate" => Some(Fidelity::Surrogate),
            "replay" => Some(Fidelity::Replay),
            "full" => Some(Fidelity::Full),
            _ => None,
        }
    }
}

/// The workload half of a [`RunKey`]: one of the six canned paper
/// benchmarks, or a user-supplied [`BenchmarkSpec`] addressed by its
/// [`BenchmarkSpec::content_hash`]. Both variants are `Copy` so the key
/// stays cheap; the spec body itself lives in the suite's registry
/// ([`ExperimentSuite::register_spec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKey {
    /// A canned paper benchmark, addressed by name.
    Canned(Benchmark),
    /// A registered user spec, addressed by content hash.
    Spec(u64),
}

impl WorkloadKey {
    /// The canned benchmark, if this is one.
    pub fn canned(self) -> Option<Benchmark> {
        match self {
            WorkloadKey::Canned(b) => Some(b),
            WorkloadKey::Spec(_) => None,
        }
    }

    /// Stable label: the benchmark name for canned workloads,
    /// `spec:<16-hex-digit content hash>` for registered specs. This is
    /// the string surrogate models and API clients see.
    pub fn label(self) -> String {
        match self {
            WorkloadKey::Canned(b) => b.name().to_string(),
            WorkloadKey::Spec(hash) => format!("spec:{hash:016x}"),
        }
    }

    /// Parses a [`WorkloadKey::label`]; `None` for an unknown name or a
    /// malformed `spec:` hash.
    pub fn from_label(label: &str) -> Option<WorkloadKey> {
        if let Some(hex) = label.strip_prefix("spec:") {
            if hex.len() != 16 {
                return None;
            }
            return u64::from_str_radix(hex, 16).ok().map(WorkloadKey::Spec);
        }
        Benchmark::from_name(label).map(WorkloadKey::Canned)
    }
}

impl From<Benchmark> for WorkloadKey {
    fn from(b: Benchmark) -> WorkloadKey {
        WorkloadKey::Canned(b)
    }
}

impl fmt::Display for WorkloadKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One machine setup the suite can simulate: the memoization key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Workload: canned benchmark or registered spec.
    pub workload: WorkloadKey,
    /// CPU model.
    pub cpu: CpuModel,
    /// Disk power-management configuration.
    pub disk: DiskSetup,
}

impl RunKey {
    /// The key for a canned paper benchmark.
    pub fn canned(benchmark: Benchmark, cpu: CpuModel, disk: DiskSetup) -> RunKey {
        RunKey {
            workload: WorkloadKey::Canned(benchmark),
            cpu,
            disk,
        }
    }
}

/// A memoized run plus the power model it should be post-processed with.
#[derive(Debug)]
pub struct RunBundle {
    /// The simulation outcome.
    pub run: RunResult,
    /// The matching analytical power model.
    pub model: PowerModel,
}

/// What [`ExperimentSuite::run_at`] produced for a key: a shared exact
/// bundle, or a counter-surrogate estimate carrying its error bound.
#[derive(Debug)]
pub enum RunOutcome {
    /// An exact answer from the memo/replay/full tiers.
    Exact(Arc<RunBundle>),
    /// A microsecond surrogate estimate.
    Estimate(SurrogateEstimate),
}

/// A memo slot: either the finished value, or a ticket other threads
/// wait on while the claiming thread computes it.
#[derive(Debug)]
enum Slot<T> {
    Ready(Arc<T>),
    Pending(Arc<InFlight<T>>),
}

/// Completion ticket for an in-flight computation.
#[derive(Debug)]
struct InFlight<T> {
    done: Mutex<Option<Arc<T>>>,
    cv: Condvar,
}

impl<T> Default for InFlight<T> {
    fn default() -> Self {
        InFlight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

/// Counter names one memo map reports under (cache outcome telemetry for
/// the `softwatt-obs` registry).
struct MemoMetrics {
    hit: &'static str,
    miss: &'static str,
    wait: &'static str,
}

/// The (benchmark, CPU, policy) → bundle memo.
const BUNDLE_MEMO: MemoMetrics = MemoMetrics {
    hit: "suite.bundle.cache_hits",
    miss: "suite.bundle.cache_misses",
    wait: "suite.bundle.inflight_waits",
};

/// The (benchmark, CPU) → captured-trace memo.
const TRACE_MEMO: MemoMetrics = MemoMetrics {
    hit: "suite.trace.cache_hits",
    miss: "suite.trace.cache_misses",
    wait: "suite.trace.inflight_waits",
};

/// Claims `key` in `map` and computes it with `build`, or waits for (and
/// shares) the result another thread is already computing. `build` runs
/// outside the map lock, so distinct keys proceed in parallel.
fn memoize<K, T>(
    map: &Mutex<HashMap<K, Slot<T>>>,
    key: K,
    metrics: &MemoMetrics,
    build: impl FnOnce() -> T,
) -> Arc<T>
where
    K: Eq + Hash + Copy,
{
    let ticket = {
        let mut slots = map.lock().expect("memo lock");
        match slots.get(&key) {
            Some(Slot::Ready(value)) => {
                softwatt_obs::count(metrics.hit, 1);
                return Arc::clone(value);
            }
            Some(Slot::Pending(inflight)) => Some(Arc::clone(inflight)),
            None => {
                slots.insert(key, Slot::Pending(Arc::new(InFlight::default())));
                None
            }
        }
    };

    if let Some(inflight) = ticket {
        // Another thread is computing this key; wait for its result.
        softwatt_obs::count(metrics.wait, 1);
        let _wait_span = softwatt_obs::span("suite.inflight_wait_ns");
        let mut done = inflight.done.lock().expect("inflight lock");
        while done.is_none() {
            done = inflight.cv.wait(done).expect("inflight wait");
        }
        return Arc::clone(done.as_ref().expect("completed value"));
    }
    softwatt_obs::count(metrics.miss, 1);

    let value = Arc::new(build());
    let mut slots = map.lock().expect("memo lock");
    let Some(Slot::Pending(inflight)) = slots.insert(key, Slot::Ready(Arc::clone(&value))) else {
        unreachable!("claimed slot must still be pending");
    };
    drop(slots);
    *inflight.done.lock().expect("inflight lock") = Some(Arc::clone(&value));
    inflight.cv.notify_all();
    value
}

// Everything the worker threads exchange must stay shareable; a field
// regressing to `Rc`/`RefCell` should fail here, not at a call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RunBundle>();
    assert_send_sync::<RunResult>();
    assert_send_sync::<PowerModel>();
    assert_send_sync::<softwatt_stats::SimLog>();
    assert_send_sync::<PerfTrace>();
};

/// The experiment driver. See the module docs.
///
/// Thread-safe: any number of threads may call [`ExperimentSuite::run`]
/// concurrently. Each distinct [`RunKey`] is simulated exactly once — a
/// thread requesting a key another thread is already simulating blocks
/// until that simulation finishes and then shares the same bundle.
#[derive(Debug)]
pub struct ExperimentSuite {
    config: SystemConfig,
    runs: Mutex<HashMap<RunKey, Slot<RunBundle>>>,
    traces: Mutex<HashMap<(WorkloadKey, CpuModel), Slot<PerfTrace>>>,
    specs: RwLock<HashMap<u64, Arc<BenchmarkSpec>>>,
    replay_enabled: bool,
    store: Option<TraceStore>,
    peers: Option<Arc<dyn PeerSource>>,
    /// Where each memoized trace came from (`"local"` store hit, `"peer"`
    /// fetch, `"sim"` capture), for the `X-Softwatt-Source` header.
    trace_sources: Mutex<HashMap<(WorkloadKey, CpuModel), &'static str>>,
    model_store: Option<ModelStore>,
    surrogate: RwLock<Option<Arc<SurrogateModel>>>,
    executed: AtomicUsize,
    replays: AtomicUsize,
    store_loads: AtomicUsize,
    peer_loads: AtomicUsize,
    surrogate_served: AtomicUsize,
}

impl ExperimentSuite {
    /// Creates a suite over a base configuration (CPU model and disk
    /// policy fields are overridden per experiment).
    ///
    /// All runs use [`IdleHandling::Analytic`], which makes the simulated
    /// work stream independent of the disk policy; the suite exploits that
    /// by fully simulating each (benchmark, CPU) pair once and deriving
    /// every disk-policy variant by trace replay.
    ///
    /// # Errors
    ///
    /// Returns the first configuration problem found.
    pub fn new(config: SystemConfig) -> Result<ExperimentSuite, String> {
        Self::with_replay(config, true)
    }

    /// Like [`ExperimentSuite::new`], but every bundle comes from a direct
    /// full simulation — no trace capture, no replay. Exists for A/B
    /// benchmarking and for the replay-equivalence tests; results are
    /// bit-identical to the replaying suite's.
    ///
    /// # Errors
    ///
    /// Returns the first configuration problem found.
    pub fn with_full_simulation(config: SystemConfig) -> Result<ExperimentSuite, String> {
        Self::with_replay(config, false)
    }

    fn with_replay(config: SystemConfig, replay_enabled: bool) -> Result<ExperimentSuite, String> {
        config.validate()?;
        Ok(ExperimentSuite {
            config,
            runs: Mutex::new(HashMap::new()),
            traces: Mutex::new(HashMap::new()),
            specs: RwLock::new(HashMap::new()),
            replay_enabled,
            store: None,
            peers: None,
            trace_sources: Mutex::new(HashMap::new()),
            model_store: None,
            surrogate: RwLock::new(None),
            executed: AtomicUsize::new(0),
            replays: AtomicUsize::new(0),
            store_loads: AtomicUsize::new(0),
            peer_loads: AtomicUsize::new(0),
            surrogate_served: AtomicUsize::new(0),
        })
    }

    /// Attaches a persistent [`TraceStore`], adding a third tier to trace
    /// lookup: memory memo → disk store → full simulation. Traces captured
    /// by this suite are persisted to the store; traces found in the store
    /// are replayed instead of simulated, which is bit-identical (see
    /// `tests/trace_store.rs`).
    ///
    /// Has no effect on a [`ExperimentSuite::with_full_simulation`] suite,
    /// which by definition never touches traces.
    #[must_use]
    pub fn with_trace_store(mut self, store: TraceStore) -> ExperimentSuite {
        // Surrogate models are cached next to the traces they are fitted
        // from; a store failure only disables model persistence.
        self.model_store = ModelStore::open(store.dir()).ok();
        self.store = Some(store);
        self
    }

    /// The attached persistent trace store, if any.
    pub fn trace_store(&self) -> Option<&TraceStore> {
        self.store.as_ref()
    }

    /// Attaches a [`PeerSource`], adding the peer-fetch tier to trace
    /// lookup: memo → store → **peer fetch** → capture. On a local store
    /// miss the key's owning peer is asked for its `swtrace-v1` bytes;
    /// verified bytes are persisted locally and replayed, anything else
    /// (owner down, truncated stream, checksum or descriptor mismatch)
    /// degrades to the capture tier with a warning. Requires replay — a
    /// full-simulation suite never touches traces, peer or local.
    #[must_use]
    pub fn with_peer_source(mut self, peers: Arc<dyn PeerSource>) -> ExperimentSuite {
        self.peers = Some(peers);
        self
    }

    /// How many traces were loaded from the persistent store instead of
    /// being captured by a full simulation.
    pub fn store_loads(&self) -> usize {
        self.store_loads.load(Ordering::Acquire)
    }

    /// How many traces were fetched from cluster peers instead of being
    /// captured by a full simulation.
    pub fn peer_loads(&self) -> usize {
        self.peer_loads.load(Ordering::Acquire)
    }

    /// Where the memoized trace behind (`workload`, `cpu`) came from:
    /// `"local"` (persistent store), `"peer"` (fetched over the fabric),
    /// or `"sim"` (captured by a full simulation here). `None` until some
    /// tier has actually produced the trace.
    pub fn trace_source(&self, workload: WorkloadKey, cpu: CpuModel) -> Option<&'static str> {
        self.trace_sources
            .lock()
            .expect("trace source lock")
            .get(&(workload, cpu))
            .copied()
    }

    fn note_trace_source(&self, workload: WorkloadKey, cpu: CpuModel, source: &'static str) {
        self.trace_sources
            .lock()
            .expect("trace source lock")
            .insert((workload, cpu), source);
    }

    /// The base configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// How many *full* simulations have actually executed. With replay
    /// enabled this is the number of distinct (benchmark, CPU) pairs
    /// requested — not the number of distinct keys — no matter how many
    /// threads race on the same keys.
    pub fn runs_executed(&self) -> usize {
        self.executed.load(Ordering::Acquire)
    }

    /// How many bundles were derived by trace replay instead of a full
    /// simulation.
    pub fn replays_derived(&self) -> usize {
        self.replays.load(Ordering::Acquire)
    }

    /// How many requests were answered by the counter surrogate instead
    /// of an exact tier.
    pub fn surrogate_served(&self) -> usize {
        self.surrogate_served.load(Ordering::Acquire)
    }

    /// Runs (or returns the memoized) simulation for one machine setup.
    pub fn run(&self, benchmark: Benchmark, cpu: CpuModel, disk: DiskSetup) -> Arc<RunBundle> {
        self.run_key(RunKey::canned(benchmark, cpu, disk))
    }

    /// Validates and registers a user-supplied spec, returning the
    /// [`WorkloadKey`] that addresses it in every later call. Registering
    /// the same spec twice (by content) is idempotent and returns the same
    /// key, so concurrent posts of one spec dedup to one simulation.
    ///
    /// This is the single gate between untrusted spec data and the
    /// simulator: a key this returns can always be simulated without
    /// panicking, because both [`BenchmarkSpec::validate`] and the
    /// instruction-budget sizing at this suite's clocking have passed.
    ///
    /// # Errors
    ///
    /// The first validation problem found, suitable for a 400 response.
    pub fn register_spec(&self, spec: BenchmarkSpec) -> Result<WorkloadKey, String> {
        spec.validate()?;
        spec.user_instr_budget(self.config.clocking())?;
        let hash = spec.content_hash();
        let mut specs = self.specs.write().expect("spec registry lock");
        specs.entry(hash).or_insert_with(|| Arc::new(spec));
        Ok(WorkloadKey::Spec(hash))
    }

    /// The registered spec behind a [`WorkloadKey::Spec`] key; `None` for
    /// canned workloads and unregistered hashes.
    pub fn spec_for(&self, workload: WorkloadKey) -> Option<Arc<BenchmarkSpec>> {
        match workload {
            WorkloadKey::Canned(_) => None,
            WorkloadKey::Spec(hash) => self
                .specs
                .read()
                .expect("spec registry lock")
                .get(&hash)
                .cloned(),
        }
    }

    /// Registers `spec` and runs it on the given machine setup — the
    /// inline-spec analogue of [`ExperimentSuite::run`], with the same
    /// memo → trace-store → full-simulation tiering.
    ///
    /// # Errors
    ///
    /// The first validation problem found.
    pub fn run_spec(
        &self,
        spec: BenchmarkSpec,
        cpu: CpuModel,
        disk: DiskSetup,
    ) -> Result<Arc<RunBundle>, String> {
        let workload = self.register_spec(spec)?;
        Ok(self.run_key(RunKey {
            workload,
            cpu,
            disk,
        }))
    }

    /// [`ExperimentSuite::run`] addressed by key.
    pub fn run_key(&self, key: RunKey) -> Arc<RunBundle> {
        memoize(&self.runs, key, &BUNDLE_MEMO, || self.execute(key))
    }

    /// The memoized bundle for `key`, if one is already finished — a
    /// non-blocking peek that never simulates and never waits on an
    /// in-flight computation. This is what lets a serving layer answer
    /// warm hits inline (microseconds) and route everything else to a
    /// worker by cost.
    pub fn bundle_if_ready(&self, key: RunKey) -> Option<Arc<RunBundle>> {
        let slots = self.runs.lock().expect("memo lock");
        match slots.get(&key) {
            Some(Slot::Ready(bundle)) => {
                softwatt_obs::count(BUNDLE_MEMO.hit, 1);
                Some(Arc::clone(bundle))
            }
            _ => None,
        }
    }

    /// The persistent-store key for one (workload, CPU) pair: the canned
    /// derivation for benchmarks (whose descriptors — and so on-disk
    /// entries — are unchanged by the spec feature), the content-hash
    /// derivation for registered specs. Public so the serving layer can
    /// authenticate `/v1/traces/{hash}` requests against the key a peer
    /// *should* be asking for.
    pub fn trace_key(&self, workload: WorkloadKey, cpu: CpuModel) -> TraceKey {
        match workload {
            WorkloadKey::Canned(b) => TraceKey::derive(&self.config, b, cpu),
            WorkloadKey::Spec(hash) => TraceKey::derive_spec(&self.config, hash, cpu),
        }
    }

    /// Whether deriving `key`'s bundle would be a cheap replay rather
    /// than a full simulation: the (workload, CPU) trace is already in
    /// the memory memo (finished *or* being captured by another thread —
    /// either way this key will not start a second simulation), or the
    /// persistent store has an entry for it. A suite without replay
    /// always answers `false` (every miss is a full simulation).
    ///
    /// The store probe is an existence check only; a corrupt entry later
    /// turns the predicted replay into a simulation. Misclassification is
    /// a latency blip, not an error.
    pub fn trace_ready(&self, workload: WorkloadKey, cpu: CpuModel) -> bool {
        if !self.replay_enabled {
            return false;
        }
        if self
            .traces
            .lock()
            .expect("memo lock")
            .contains_key(&(workload, cpu))
        {
            return true;
        }
        match &self.store {
            Some(store) => store.contains(&self.trace_key(workload, cpu)),
            None => false,
        }
    }

    /// The captured trace for one (workload, CPU) pair: from the memory
    /// memo, else the persistent store (when attached), else the owning
    /// cluster peer (when a [`PeerSource`] is attached), else a full
    /// simulation (persisted to the store afterwards).
    fn trace_for(&self, workload: WorkloadKey, cpu: CpuModel) -> Arc<PerfTrace> {
        memoize(&self.traces, (workload, cpu), &TRACE_MEMO, || {
            self.trace_miss(workload, cpu, true)
        })
    }

    /// The memo-miss path behind [`ExperimentSuite::trace_for`].
    /// `use_peers = false` is the re-entrancy guard for requests arriving
    /// *from* a peer: the owner must answer from its own tiers, never by
    /// bouncing the key back onto the fabric.
    fn trace_miss(&self, workload: WorkloadKey, cpu: CpuModel, use_peers: bool) -> PerfTrace {
        let Some(store) = &self.store else {
            self.note_trace_source(workload, cpu, "sim");
            return self.capture_trace(workload, cpu);
        };
        let key = self.trace_key(workload, cpu);
        if let Some(trace) = store.load(&key) {
            self.store_loads.fetch_add(1, Ordering::AcqRel);
            self.note_trace_source(workload, cpu, "local");
            return trace;
        }
        if use_peers {
            if let Some(trace) = self.peer_fetch(&key, workload, cpu) {
                self.note_trace_source(workload, cpu, "peer");
                return trace;
            }
        }
        self.note_trace_source(workload, cpu, "sim");
        let trace = self.capture_trace(workload, cpu);
        store.store(&key, &trace);
        trace
    }

    /// The peer-fetch tier: asks the key's owner (through the attached
    /// [`PeerSource`]) for its `swtrace-v1` bytes, then parses,
    /// checksum-verifies, and descriptor-matches them before persisting
    /// locally. Every failure mode — no peer source, owner down, a
    /// truncated or corrupt stream, a descriptor mismatch — returns
    /// `None`, which the caller treats as "capture it locally"; a peer
    /// problem is never an error, only a lost optimization.
    fn peer_fetch(
        &self,
        key: &TraceKey,
        workload: WorkloadKey,
        cpu: CpuModel,
    ) -> Option<PerfTrace> {
        let peers = self.peers.as_ref()?;
        let _span = softwatt_obs::span("trace_store.peer_fetch_ns");
        let Some(bytes) = peers.fetch(key, &workload.label(), cpu.name()) else {
            softwatt_obs::count("trace_store.peer_misses", 1);
            return None;
        };
        match PerfTrace::from_binary(&bytes[..]) {
            Ok((trace, note)) if note == key.descriptor().as_bytes() => {
                softwatt_obs::count("trace_store.peer_hits", 1);
                softwatt_obs::count("trace_store.peer_bytes", bytes.len() as u64);
                self.peer_loads.fetch_add(1, Ordering::AcqRel);
                if let Some(store) = &self.store {
                    store.store_raw(key, &bytes);
                }
                Some(trace)
            }
            Ok(_) => {
                softwatt_obs::count("trace_store.peer_errors", 1);
                softwatt_obs::obs_event!(
                    softwatt_obs::Level::Warn,
                    "suite",
                    "peer trace for {workload} on {cpu:?} has a mismatched descriptor \
                     (config drift between peers?); simulating locally"
                );
                None
            }
            Err(e) => {
                softwatt_obs::count("trace_store.peer_errors", 1);
                softwatt_obs::obs_event!(
                    softwatt_obs::Level::Warn,
                    "suite",
                    "peer trace for {workload} on {cpu:?} failed verification ({e}); \
                     simulating locally"
                );
                None
            }
        }
    }

    /// The `swtrace-v1` bytes for one (workload, CPU) pair, for serving
    /// to a fetching peer. Resolves through the *local* tiers only —
    /// memo, store, capture — never a peer fetch of its own, so two nodes
    /// with disagreeing ring views can bounce a key at most one hop. A
    /// store miss simulates right here (and persists), which is what
    /// makes N simultaneous cluster-wide misses for an owned key cost
    /// exactly one simulation: non-owners fetch, the owner's memo
    /// single-flights the capture.
    pub fn trace_share_bytes(&self, workload: WorkloadKey, cpu: CpuModel) -> Vec<u8> {
        let key = self.trace_key(workload, cpu);
        let trace = memoize(&self.traces, (workload, cpu), &TRACE_MEMO, || {
            self.trace_miss(workload, cpu, false)
        });
        let mut out = Vec::new();
        trace
            .to_binary(&mut out, key.descriptor().as_bytes())
            .expect("encoding to a Vec cannot fail");
        out
    }

    /// Captures a trace by full simulation (the bottom tier).
    fn capture_trace(&self, workload: WorkloadKey, cpu: CpuModel) -> PerfTrace {
        let mut config = self.config.clone();
        config.cpu = cpu;
        config.idle = IdleHandling::Analytic;
        // The capture run uses the suite's base disk config; the trace
        // it produces is disk-policy-independent.
        let sim = Simulator::new(config).expect("validated config");
        self.executed.fetch_add(1, Ordering::AcqRel);
        // Counted in the registry too (not just the suite-local atomic) so
        // cluster tooling can sum full simulations across processes from
        // `/metrics` alone.
        softwatt_obs::count("suite.captures", 1);
        let span = softwatt_obs::span("suite.trace_capture_ns");
        let trace = match workload {
            WorkloadKey::Canned(benchmark) => sim.run_benchmark_traced(benchmark).1,
            WorkloadKey::Spec(_) => {
                let spec = self.spec_for(workload).expect("registered spec");
                sim.run_spec_traced(&spec).1
            }
        };
        if let Some(ns) = span.finish() {
            softwatt_obs::obs_event!(
                softwatt_obs::Level::Debug,
                "suite",
                "captured trace for {workload} on {cpu:?} in {:.1}ms",
                ns as f64 / 1e6
            );
        }
        trace
    }

    /// Loads whatever traces the persistent store already has for the
    /// distinct (workload, CPU) pairs of `keys` into the memory memo,
    /// *without ever simulating*. Returns how many traces were loaded.
    ///
    /// This is the cheap half of a warm start (`softwatt-serve` runs it
    /// before accepting connections): entries the store has make every
    /// later request for that pair a replay; entries it lacks are left to
    /// be simulated on first demand.
    pub fn prewarm_from_store(&self, keys: &[RunKey]) -> usize {
        let Some(store) = &self.store else { return 0 };
        let mut pairs: Vec<(WorkloadKey, CpuModel)> = Vec::new();
        for key in keys {
            if !pairs.contains(&(key.workload, key.cpu)) {
                pairs.push((key.workload, key.cpu));
            }
        }
        let mut loaded = 0;
        for (workload, cpu) in pairs {
            if self
                .traces
                .lock()
                .expect("memo lock")
                .contains_key(&(workload, cpu))
            {
                continue;
            }
            let key = self.trace_key(workload, cpu);
            let Some(trace) = store.load(&key) else {
                continue;
            };
            // Only fill a still-vacant slot: a concurrent caller may have
            // claimed the pair between the peek above and this insert, and
            // its result (simulated or loaded) is just as good.
            let mut slots = self.traces.lock().expect("memo lock");
            if let std::collections::hash_map::Entry::Vacant(slot) = slots.entry((workload, cpu)) {
                slot.insert(Slot::Ready(Arc::new(trace)));
                self.store_loads.fetch_add(1, Ordering::AcqRel);
                drop(slots);
                self.note_trace_source(workload, cpu, "local");
                loaded += 1;
            }
        }
        loaded
    }

    /// Produces one bundle (always a memo miss): by trace replay when
    /// enabled, by direct full simulation otherwise.
    fn execute(&self, key: RunKey) -> RunBundle {
        self.execute_with(key, self.replay_enabled)
    }

    fn execute_with(&self, key: RunKey, use_replay: bool) -> RunBundle {
        let mut config = self.config.clone();
        config.cpu = key.cpu;
        config.disk = DiskConfig {
            policy: key.disk.policy(),
            ..self.config.disk
        };
        config.idle = IdleHandling::Analytic;
        let sim = Simulator::new(config.clone()).expect("validated config");
        let run = if use_replay {
            let trace = self.trace_for(key.workload, key.cpu);
            self.replays.fetch_add(1, Ordering::AcqRel);
            softwatt_obs::count("suite.replays", 1);
            let _span = softwatt_obs::span("suite.replay_ns");
            let mut run = sim.replay_trace(&trace);
            run.benchmark = key.workload.canned();
            run
        } else {
            self.executed.fetch_add(1, Ordering::AcqRel);
            softwatt_obs::count("suite.full_sims", 1);
            let _span = softwatt_obs::span("suite.full_sim_ns");
            match key.workload {
                WorkloadKey::Canned(benchmark) => sim.run_benchmark(benchmark),
                WorkloadKey::Spec(_) => {
                    let spec = self.spec_for(key.workload).expect("registered spec");
                    sim.run_spec(&spec)
                }
            }
        };
        RunBundle {
            run,
            model: PowerModel::new(&config.power_params()),
        }
    }

    // ----- The surrogate fidelity tier -----------------------------------

    /// Answers `key` at the requested [`Fidelity`].
    ///
    /// `Surrogate` tries the calibrated counter model first and falls back
    /// to the exact replay tier when no model covers the key, so the call
    /// always produces an answer. `Replay` is [`ExperimentSuite::run_key`];
    /// `Full` forces a memo miss to execute as a full simulation (the
    /// memoized value is bit-identical either way, so exact memo entries
    /// stay interchangeable across fidelities).
    pub fn run_at(&self, key: RunKey, fidelity: Fidelity) -> RunOutcome {
        match fidelity {
            Fidelity::Surrogate => match self.surrogate_estimate(key) {
                Some(est) => RunOutcome::Estimate(est),
                None => RunOutcome::Exact(self.run_key(key)),
            },
            Fidelity::Replay => RunOutcome::Exact(self.run_key(key)),
            Fidelity::Full => RunOutcome::Exact(memoize(&self.runs, key, &BUNDLE_MEMO, || {
                self.execute_with(key, false)
            })),
        }
    }

    /// The currently installed surrogate model, if any.
    pub fn surrogate_model(&self) -> Option<Arc<SurrogateModel>> {
        self.surrogate.read().expect("surrogate lock").clone()
    }

    /// A microsecond estimate for `key` from the calibrated counter
    /// surrogate: `None` when no model is installed or the model has no
    /// cell for the key. Never touches the run/trace memos, never
    /// simulates, never blocks on in-flight work — exact-tier state is
    /// byte-identical with and without surrogate traffic.
    pub fn surrogate_estimate(&self, key: RunKey) -> Option<SurrogateEstimate> {
        let model = self.surrogate_model()?;
        let est = model.estimate(&key.workload.label(), key.cpu.name(), key.disk.name())?;
        self.surrogate_served.fetch_add(1, Ordering::AcqRel);
        softwatt_obs::count("suite.surrogate_served", 1);
        Some(est)
    }

    /// Keys whose bundles are finished in the memory memo, in a stable
    /// order — the harvestable training set for a refit.
    fn memoized_run_keys(&self) -> Vec<RunKey> {
        let slots = self.runs.lock().expect("memo lock");
        let mut keys: Vec<RunKey> = slots
            .iter()
            .filter_map(|(key, slot)| matches!(slot, Slot::Ready(_)).then_some(*key))
            .collect();
        keys.sort_by_key(|k| (k.workload.label(), k.cpu.name(), k.disk.name()));
        keys
    }

    /// Refits the surrogate from every run currently memoized and installs
    /// the new model, returning it; `None` (leaving any existing model in
    /// place) when nothing is memoized yet. Deterministic: the same set of
    /// memoized runs produces a bit-identical model regardless of the
    /// order they landed in.
    pub fn refit_surrogate(&self) -> Option<Arc<SurrogateModel>> {
        let _span = softwatt_obs::span("suite.surrogate_refit_ns");
        let mut trainer = SurrogateTrainer::new();
        for key in self.memoized_run_keys() {
            let Some(bundle) = self.bundle_if_ready(key) else {
                continue;
            };
            let exact = bundle.model.mode_table(&bundle.run.log).total_energy_j();
            trainer.add_run(
                &key.workload.label(),
                key.cpu.name(),
                key.disk.name(),
                &bundle.run.log,
                &bundle.model,
                bundle.run.duration_s,
                bundle.run.committed,
                bundle.run.user_instrs,
                bundle.run.disk.energy_j,
                exact,
            );
        }
        let model = Arc::new(trainer.fit()?);
        *self.surrogate.write().expect("surrogate lock") = Some(Arc::clone(&model));
        softwatt_obs::count("suite.surrogate_refits", 1);
        Some(model)
    }

    /// Ensures a surrogate model is installed and returns it: the already
    /// installed model, else the persistent model store's entry, else a
    /// fresh calibration — prewarm the paper grid on up to `jobs` threads,
    /// refit, and persist the result for the next process.
    pub fn calibrate_surrogate(&self, jobs: usize) -> Arc<SurrogateModel> {
        if let Some(model) = self.surrogate_model() {
            return model;
        }
        if let Some(store) = &self.model_store {
            if let Some(model) = store.load(&ModelKey::derive(&self.config)) {
                let model = Arc::new(model);
                *self.surrogate.write().expect("surrogate lock") = Some(Arc::clone(&model));
                return model;
            }
        }
        let _span = softwatt_obs::span("suite.surrogate_calibrate_ns");
        self.prewarm(&self.paper_grid(), jobs);
        let model = self
            .refit_surrogate()
            .expect("the prewarmed paper grid is non-empty training data");
        if let Some(store) = &self.model_store {
            store.store(&ModelKey::derive(&self.config), &model);
        }
        model
    }

    /// Every distinct machine setup the full paper evaluation touches.
    ///
    /// Prewarming this grid makes all subsequent table/figure methods pure
    /// memo lookups (except [`ExperimentSuite::ext_kernel_energy_estimate`],
    /// whose reference runs use a different seed and so a nested suite).
    pub fn paper_grid(&self) -> Vec<RunKey> {
        let mut keys = Vec::new();
        for &benchmark in Benchmark::ALL.iter() {
            for disk in DiskSetup::ALL {
                keys.push(RunKey::canned(benchmark, CpuModel::Mxs, disk));
            }
            keys.push(RunKey::canned(
                benchmark,
                CpuModel::Mxs,
                DiskSetup::SleepExt,
            ));
            keys.push(RunKey::canned(
                benchmark,
                CpuModel::MxsSingleIssue,
                DiskSetup::Conventional,
            ));
        }
        keys.push(RunKey::canned(
            Benchmark::Jess,
            CpuModel::Mipsy,
            DiskSetup::Conventional,
        ));
        keys
    }

    /// Simulates the given keys on up to `jobs` worker threads.
    ///
    /// Results land in the memo, so later [`ExperimentSuite::run`] calls
    /// are lookups. Runs are seeded per-configuration and mutually
    /// independent, so the memoized results are bit-identical to a serial
    /// pass regardless of `jobs`.
    pub fn prewarm(&self, keys: &[RunKey], jobs: usize) {
        let jobs = jobs.clamp(1, keys.len().max(1));
        if jobs == 1 {
            for &key in keys {
                self.run_key(key);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&key) = keys.get(i) else { break };
                    self.run_key(key);
                });
            }
        });
    }

    /// Prewarms the whole paper grid on up to `jobs` threads.
    pub fn run_all(&self, jobs: usize) {
        self.prewarm(&self.paper_grid(), jobs);
    }

    fn baseline_runs(&self) -> Vec<Arc<RunBundle>> {
        Benchmark::ALL
            .iter()
            .map(|&b| self.run(b, CpuModel::Mxs, DiskSetup::Conventional))
            .collect()
    }

    // ----- V1: §2 validation ---------------------------------------------

    /// The max-power validation experiment (paper: 25.3 W modeled vs the
    /// R10000 data sheet's 30 W).
    pub fn validation(&self) -> ValidationResult {
        let model = PowerModel::new(&self.config.power_params());
        ValidationResult {
            breakdown: model.max_power(),
        }
    }

    // ----- F2: disk mode table -------------------------------------------

    /// Figure 2's operating-mode power values.
    pub fn disk_modes(&self) -> Vec<(DiskMode, f64)> {
        let table = DiskPowerTable::default();
        DiskMode::ALL.iter().map(|&m| (m, table.watts(m))).collect()
    }

    // ----- F3/F4: jess time profiles -------------------------------------

    /// Figure 3: jess memory-system behavior — execution-time and
    /// memory-subsystem power profiles on Mipsy, and the processor profile
    /// on the single-issue configuration.
    pub fn fig3_jess_memory(&self) -> MemoryProfiles {
        let mipsy = self.run(Benchmark::Jess, CpuModel::Mipsy, DiskSetup::Conventional);
        let narrow = self.run(
            Benchmark::Jess,
            CpuModel::MxsSingleIssue,
            DiskSetup::Conventional,
        );
        MemoryProfiles {
            mipsy: profile_series(&mipsy),
            single_issue: profile_series(&narrow),
        }
    }

    /// Figure 4: jess processor behavior on the 4-wide MXS model.
    pub fn fig4_jess_processor(&self) -> ProfileSeries {
        let run = self.run(Benchmark::Jess, CpuModel::Mxs, DiskSetup::Conventional);
        profile_series(&run)
    }

    // ----- F5/F7: budgets -------------------------------------------------

    /// Figure 5: overall power budget with the conventional disk, averaged
    /// over all benchmarks.
    pub fn fig5_budget_conventional(&self) -> SystemBudget {
        self.mean_budget(DiskSetup::Conventional)
    }

    /// Figure 7: the budget with the IDLE-capable disk.
    pub fn fig7_budget_lowpower(&self) -> SystemBudget {
        self.mean_budget(DiskSetup::IdleOnly)
    }

    fn mean_budget(&self, disk: DiskSetup) -> SystemBudget {
        let budgets: Vec<SystemBudget> = Benchmark::ALL
            .iter()
            .map(|&b| {
                let bundle = self.run(b, CpuModel::Mxs, disk);
                system_budget(&bundle.model, &bundle.run)
            })
            .collect();
        SystemBudget::mean_of(&budgets).expect("Benchmark::ALL is non-empty")
    }

    // ----- F6: average power per mode -------------------------------------

    /// Figure 6: average power per software mode (averaged over all
    /// benchmarks), per component group.
    pub fn fig6_mode_power(&self) -> ModePowerFigure {
        let runs = self.baseline_runs();
        let mut per_mode = [GroupPower::new(); Mode::COUNT];
        let mut counts = [0usize; Mode::COUNT];
        for bundle in &runs {
            let table = bundle.model.mode_table(&bundle.run.log);
            for mode in Mode::ALL {
                if table.mode_cycles[mode.index()] > 0 {
                    per_mode[mode.index()].merge(&table.average_power_w(mode));
                    counts[mode.index()] += 1;
                }
            }
        }
        for mode in Mode::ALL {
            let n = counts[mode.index()].max(1) as f64;
            per_mode[mode.index()] = per_mode[mode.index()].scaled(1.0 / n);
        }
        ModePowerFigure { per_mode }
    }

    // ----- F8: kernel-service power ---------------------------------------

    /// Figure 8: average power of the four key kernel services, averaged
    /// over all invocations and benchmarks.
    pub fn fig8_service_power(&self) -> Vec<ServicePowerRow> {
        let merged = self.merged_service_aggregates();
        [
            KernelService::Utlb,
            KernelService::Read,
            KernelService::DemandZero,
            KernelService::CacheFlush,
        ]
        .iter()
        .filter_map(|&svc| {
            let agg = merged.get(&svc)?;
            if agg.cycles == 0 {
                return None;
            }
            let model = PowerModel::new(&self.config.power_params());
            Some(ServicePowerRow {
                service: svc,
                invocations: agg.invocations,
                power_w: model.window_power_w(&agg.events, agg.cycles),
            })
        })
        .collect()
    }

    // ----- F9: the disk power-management study -----------------------------

    /// Figure 9: disk energy and total idle cycles for the four disk
    /// configurations, per benchmark.
    pub fn fig9_disk_study(&self) -> Vec<Fig9Row> {
        Benchmark::ALL
            .iter()
            .map(|&b| {
                let cells = DiskSetup::ALL.map(|setup| {
                    let bundle = self.run(b, CpuModel::Mxs, setup);
                    DiskStudyCell {
                        setup,
                        disk_energy_j: bundle.run.disk.energy_j,
                        idle_cycles: bundle.run.mode_cycles(Mode::Idle),
                        total_cycles: bundle.run.cycles,
                        spinups: bundle.run.disk.spinups,
                        spindowns: bundle.run.disk.spindowns,
                    }
                });
                Fig9Row {
                    benchmark: b,
                    cells,
                }
            })
            .collect()
    }

    // ----- T2/T3/T4/T5 ------------------------------------------------------

    /// Table 2: percentage breakdown of cycles and energy per mode.
    pub fn table2_mode_breakdown(&self) -> Vec<Table2Row> {
        self.baseline_runs()
            .iter()
            .map(|bundle| {
                let table = bundle.model.mode_table(&bundle.run.log);
                Table2Row {
                    benchmark: bundle.run.benchmark.expect("named run"),
                    cycles_pct: Mode::ALL.map(|m| 100.0 * table.cycle_fraction(m)),
                    energy_pct: Mode::ALL.map(|m| 100.0 * table.energy_fraction(m)),
                }
            })
            .collect()
    }

    /// Table 3: L1 cache references per cycle, per mode.
    pub fn table3_cache_refs(&self) -> Vec<Table3Row> {
        self.baseline_runs()
            .iter()
            .map(|bundle| {
                let events = bundle.run.log.total_events();
                let il1 = Mode::ALL.map(|m| {
                    let cycles = bundle.run.log.mode_cycles(m).max(1) as f64;
                    events.mode(m).get(softwatt_stats::UnitEvent::IcacheAccess) as f64 / cycles
                });
                let dl1 = Mode::ALL.map(|m| {
                    let cycles = bundle.run.log.mode_cycles(m).max(1) as f64;
                    let e = events.mode(m);
                    (e.get(softwatt_stats::UnitEvent::DcacheRead)
                        + e.get(softwatt_stats::UnitEvent::DcacheWrite)) as f64
                        / cycles
                });
                Table3Row {
                    benchmark: bundle.run.benchmark.expect("named run"),
                    il1_per_cycle: il1,
                    dl1_per_cycle: dl1,
                }
            })
            .collect()
    }

    /// Table 4: per-benchmark kernel-service breakdown (invocations, share
    /// of kernel cycles, share of kernel energy), sorted by cycle share.
    pub fn table4_kernel_services(&self) -> Vec<Table4Row> {
        self.baseline_runs()
            .iter()
            .map(|bundle| {
                let aggs = bundle.run.services.aggregates();
                let total_cycles: u64 = KernelService::ALL
                    .iter()
                    .filter_map(|s| aggs.get(&s.id()))
                    .map(|a| a.cycles)
                    .sum();
                let total_energy: f64 = KernelService::ALL
                    .iter()
                    .filter_map(|s| aggs.get(&s.id()))
                    .map(|a| a.energy_sum_j)
                    .sum();
                let mut entries: Vec<Table4Entry> = KernelService::ALL
                    .iter()
                    .filter_map(|&svc| {
                        let agg = aggs.get(&svc.id())?;
                        (agg.invocations > 0).then(|| Table4Entry {
                            service: svc,
                            invocations: agg.invocations,
                            cycles_pct: 100.0 * agg.cycles as f64 / total_cycles.max(1) as f64,
                            energy_pct: 100.0 * agg.energy_sum_j / total_energy.max(1e-30),
                        })
                    })
                    .collect();
                entries.sort_by(|a, b| b.cycles_pct.total_cmp(&a.cycles_pct));
                Table4Row {
                    benchmark: bundle.run.benchmark.expect("named run"),
                    entries,
                }
            })
            .collect()
    }

    /// Table 5: per-invocation energy variation of key services, pooled
    /// over all benchmarks.
    pub fn table5_service_variation(&self) -> Vec<Table5Row> {
        let merged = self.merged_service_aggregates();
        [
            KernelService::Utlb,
            KernelService::DemandZero,
            KernelService::CacheFlush,
            KernelService::Read,
            KernelService::Write,
            KernelService::Open,
        ]
        .iter()
        .filter_map(|&svc| {
            let agg = merged.get(&svc)?;
            Some(Table5Row {
                service: svc,
                invocations: agg.invocations,
                mean_energy_j: agg.mean_energy_j()?,
                cod_pct: agg.coefficient_of_deviation_pct()?,
            })
        })
        .collect()
    }

    // ----- Extensions beyond the paper's figures --------------------------

    /// §3.2's superscalar observation: kernel activity's share of cycles
    /// rises from the single-issue to the 4-wide machine (paper: 14.28% to
    /// 21.02% on average) because kernel code has lower ILP and worse
    /// branch behavior.
    pub fn ext_kernel_share_by_width(&self) -> Vec<KernelShareRow> {
        Benchmark::ALL
            .iter()
            .map(|&b| {
                let share = |cpu: CpuModel| {
                    let bundle = self.run(b, cpu, DiskSetup::Conventional);
                    let kernel = bundle.run.mode_cycles(Mode::KernelInstr)
                        + bundle.run.mode_cycles(Mode::KernelSync);
                    100.0 * kernel as f64 / bundle.run.cycles.max(1) as f64
                };
                KernelShareRow {
                    benchmark: b,
                    single_issue_pct: share(CpuModel::MxsSingleIssue),
                    superscalar_pct: share(CpuModel::Mxs),
                }
            })
            .collect()
    }

    /// §3.3/§5's acceleration claim: kernel energy can be estimated from
    /// service invocation counts times per-invocation mean energies
    /// (obtained from a *different* run) with roughly 10% error, without
    /// detailed simulation of the services.
    pub fn ext_kernel_energy_estimate(&self) -> Vec<KernelEstimateRow> {
        // Reference means come from a run with a different seed. The nested
        // suite inherits the persistent store so the reference runs are
        // also paid for only once per machine.
        let mut reference = self.config.clone();
        reference.seed ^= 0xDEAD_BEEF;
        let mut ref_suite = ExperimentSuite::new(reference).expect("valid config");
        ref_suite.store.clone_from(&self.store);
        Benchmark::ALL
            .iter()
            .map(|&b| {
                let bundle = self.run(b, CpuModel::Mxs, DiskSetup::Conventional);
                let ref_bundle = ref_suite.run(b, CpuModel::Mxs, DiskSetup::Conventional);
                let aggs = bundle.run.services.aggregates();
                let ref_aggs = ref_bundle.run.services.aggregates();
                let full: f64 = KernelService::ALL
                    .iter()
                    .filter_map(|svc| aggs.get(&svc.id()))
                    .map(|a| a.energy_sum_j)
                    .sum();
                let estimated: f64 = KernelService::ALL
                    .iter()
                    .filter_map(|svc| {
                        let n = aggs.get(&svc.id())?.invocations as f64;
                        let mean = ref_aggs.get(&svc.id())?.mean_energy_j()?;
                        Some(n * mean)
                    })
                    .sum();
                KernelEstimateRow {
                    benchmark: b,
                    full_j: full,
                    estimated_j: estimated,
                }
            })
            .collect()
    }

    /// Whole-run power metrics per benchmark: average and peak power,
    /// total energy, and the paper's EDP metric (§3.1).
    pub fn ext_power_metrics(&self) -> Vec<PowerMetricsRow> {
        self.baseline_runs()
            .iter()
            .map(|bundle| {
                let table = bundle.model.mode_table(&bundle.run.log);
                let profile = bundle.model.profile(&bundle.run.log);
                let (peak_w, peak_at_s) = profile.peak_power_w().unwrap_or((0.0, 0.0));
                PowerMetricsRow {
                    benchmark: bundle.run.benchmark.expect("named run"),
                    average_w: table.overall_average_power_w().total(),
                    peak_w,
                    peak_at_s,
                    energy_j: table.total_energy_j(),
                    edp_js: table.energy_delay_product(),
                }
            })
            .collect()
    }

    /// Extension: the SLEEP-capable policy versus the paper's 2 s standby
    /// configuration (disk energy only).
    pub fn ext_sleep_study(&self) -> Vec<SleepStudyRow> {
        Benchmark::ALL
            .iter()
            .map(|&b| {
                let standby = self.run(b, CpuModel::Mxs, DiskSetup::Standby2s);
                let sleep = self.run(b, CpuModel::Mxs, DiskSetup::SleepExt);
                SleepStudyRow {
                    benchmark: b,
                    standby_j: standby.run.disk.energy_j,
                    sleep_j: sleep.run.disk.energy_j,
                    sleep_idle_cycles: sleep.run.mode_cycles(Mode::Idle),
                    standby_idle_cycles: standby.run.mode_cycles(Mode::Idle),
                }
            })
            .collect()
    }

    /// Extension: policy crossover sweep. For a single pair of requests
    /// separated by an idle gap, which policy minimizes disk energy? This
    /// quantifies the paper's §4 rule ("spin down only if the gap is much
    /// larger than the spin-down + spin-up time") without a workload in
    /// the loop.
    pub fn ext_policy_crossover(&self) -> Vec<CrossoverRow> {
        use softwatt_disk::Disk;
        let clocking = self.config.clocking();
        let policies = [
            DiskPolicy::IdleWhenNotBusy,
            DiskPolicy::Standby { threshold_s: 2.0 },
            DiskPolicy::Standby { threshold_s: 4.0 },
            DiskPolicy::Sleep {
                threshold_s: 2.0,
                sleep_after_s: 5.0,
            },
        ];
        [4.0, 8.0, 12.0, 16.0, 24.0, 48.0, 96.0]
            .iter()
            .map(|&gap_s| {
                let energies = policies.map(|policy| {
                    let mut disk = Disk::new(
                        DiskConfig {
                            policy,
                            ..self.config.disk
                        },
                        clocking,
                    );
                    let first_done = disk.submit(0, 8192);
                    let second_at = first_done + clocking.paper_secs_to_cycles(gap_s);
                    let second_done = disk.submit(second_at, 8192);
                    let report = disk.report(second_done);
                    (policy, report.energy_j, report.spinups)
                });
                CrossoverRow { gap_s, energies }
            })
            .collect()
    }

    /// Extension: the same run post-processed under Wattch's three
    /// conditional-clocking styles. The paper's "simple conditional
    /// clocking" is the fully-gated style; this quantifies how much that
    /// modeling choice matters.
    pub fn ext_gating_study(&self) -> Vec<GatingRow> {
        use softwatt_power::{ClockGating, PowerParams};
        let bundle = self.run(Benchmark::Jess, CpuModel::Mxs, DiskSetup::Conventional);
        let base = self.config.power_params();
        [
            ("CC1 always-on", ClockGating::AlwaysOn),
            ("CC2 gated (paper)", ClockGating::Gated),
            ("CC3 residual 10%", ClockGating::GatedWithResidual(0.10)),
            ("CC3 residual 25%", ClockGating::GatedWithResidual(0.25)),
        ]
        .map(|(label, gating)| {
            let model = PowerModel::new(&PowerParams { gating, ..base });
            let table = model.mode_table(&bundle.run.log);
            GatingRow {
                label,
                average_w: table.overall_average_power_w().total(),
                energy_j: table.total_energy_j(),
            }
        })
        .to_vec()
    }

    /// Extension: design-space sweep over the L1 instruction-cache size —
    /// the kind of architectural exploration the paper built SoftWatt for.
    /// Bigger L1I means fewer L2 refills but a higher per-access cost.
    pub fn ext_l1i_sweep(&self) -> Vec<SweepRow> {
        use softwatt_mem::CacheGeometry;
        [8u64, 16, 32, 64, 128]
            .iter()
            .map(|&kb| {
                let mut config = self.config.clone();
                config.mem.il1 = CacheGeometry::new(kb * 1024, 64, 2);
                let sim = Simulator::new(config.clone()).expect("valid config");
                let run = sim.run_benchmark(Benchmark::Jess);
                let model = PowerModel::new(&config.power_params());
                let budget = system_budget(&model, &run);
                let table = model.mode_table(&run.log);
                SweepRow {
                    l1i_kb: kb,
                    cycles: run.cycles,
                    l1i_w: budget.groups.get(UnitGroup::L1I),
                    l2i_w: budget.groups.get(UnitGroup::L2I),
                    total_w: budget.total_w(),
                    edp_js: table.energy_delay_product(),
                }
            })
            .collect()
    }

    /// Extension: first-order technology projection — re-post-process the
    /// same jess run with the reference constants scaled to later nodes
    /// (constant-field scaling), showing where the budget would move.
    pub fn ext_technology_projection(&self) -> Vec<TechRow> {
        use softwatt_power::PowerParams;
        let bundle = self.run(Benchmark::Jess, CpuModel::Mxs, DiskSetup::Conventional);
        let base = self.config.power_params();
        [
            ("0.35um / 3.3V / 200MHz (paper)", 0.35, 3.3, 200.0e6),
            ("0.25um / 2.5V / 300MHz", 0.25, 2.5, 300.0e6),
            ("0.18um / 1.8V / 450MHz", 0.18, 1.8, 450.0e6),
        ]
        .map(|(label, um, vdd, hz)| {
            let tech = base.tech.scaled_to(um, vdd, hz);
            let model = PowerModel::new(&PowerParams { tech, ..base });
            let table = model.mode_table(&bundle.run.log);
            TechRow {
                label,
                cpu_mem_w: table.overall_average_power_w().total(),
                max_w: model.max_power().total(),
            }
        })
        .to_vec()
    }

    fn merged_service_aggregates(
        &self,
    ) -> HashMap<KernelService, softwatt_stats::ServiceAggregate> {
        let mut merged: HashMap<KernelService, softwatt_stats::ServiceAggregate> = HashMap::new();
        for bundle in self.baseline_runs() {
            for &svc in &KernelService::ALL {
                if let Some(agg) = bundle.run.services.aggregates().get(&svc.id()) {
                    merged
                        .entry(svc)
                        .or_insert_with(softwatt_stats::ServiceAggregate::empty)
                        .merge(agg);
                }
            }
        }
        merged
    }
}

// ---------------------------------------------------------------------------
// Result row types.
// ---------------------------------------------------------------------------

/// V1 result: the modeled maximum-power configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationResult {
    /// Per-group maximum power (W).
    pub breakdown: GroupPower,
}

impl ValidationResult {
    /// Modeled total maximum power (W).
    pub fn modeled_w(&self) -> f64 {
        self.breakdown.total()
    }
}

impl fmt::Display for ValidationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "max CPU power: modeled {:.1} W (paper model {:.1} W, R10000 data sheet {:.1} W)",
            self.modeled_w(),
            crate::report::paper::MAX_POWER_W,
            crate::report::paper::DATASHEET_MAX_POWER_W
        )?;
        write!(f, "{}", self.breakdown)
    }
}

/// One point of a rendered execution/power profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Window end, paper-time seconds.
    pub t_s: f64,
    /// Share of the window per mode (user/kernel/sync/idle), in percent.
    pub mode_pct: [f64; Mode::COUNT],
    /// Memory-subsystem power contribution per mode (W, stacked).
    pub mem_w: [f64; Mode::COUNT],
    /// Processor (datapath) power contribution per mode (W, stacked;
    /// clock excluded, as in the paper's profiles).
    pub proc_w: [f64; Mode::COUNT],
}

/// A full time series for one run (Figures 3/4).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSeries {
    /// Benchmark profiled.
    pub benchmark: Benchmark,
    /// CPU model used.
    pub cpu: CpuModel,
    /// Points in time order.
    pub rows: Vec<ProfileRow>,
}

impl ProfileSeries {
    /// Run-average memory-subsystem power (W).
    pub fn avg_memory_w(&self) -> f64 {
        average_of(&self.rows, |r| r.mem_w.iter().sum())
    }

    /// Run-average processor (datapath) power (W).
    pub fn avg_processor_w(&self) -> f64 {
        average_of(&self.rows, |r| r.proc_w.iter().sum())
    }
}

fn average_of(rows: &[ProfileRow], f: impl Fn(&ProfileRow) -> f64) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(f).sum::<f64>() / rows.len() as f64
}

/// Figure 3's three panels come from two machine configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryProfiles {
    /// Mipsy run (execution-time + memory-power panels).
    pub mipsy: ProfileSeries,
    /// Single-issue MXS run (processor-power panel).
    pub single_issue: ProfileSeries,
}

fn profile_series(bundle: &RunBundle) -> ProfileSeries {
    let profile = bundle.model.profile(&bundle.run.log);
    let rows = profile
        .points
        .iter()
        .map(|p| {
            let mode_pct = Mode::ALL.map(|m| 100.0 * p.mode_share(m));
            let mem_w =
                Mode::ALL.map(|m| p.mode_power_w[m.index()].memory_subsystem() * p.mode_share(m));
            let proc_w = Mode::ALL
                .map(|m| p.mode_power_w[m.index()].get(UnitGroup::Datapath) * p.mode_share(m));
            ProfileRow {
                t_s: p.t_end_s,
                mode_pct,
                mem_w,
                proc_w,
            }
        })
        .collect();
    ProfileSeries {
        benchmark: bundle.run.benchmark.expect("named run"),
        cpu: bundle.run.cpu,
        rows,
    }
}

/// Figure 6 data: per-mode average power, per group.
#[derive(Debug, Clone, PartialEq)]
pub struct ModePowerFigure {
    /// Average power while executing in each mode (W per group).
    pub per_mode: [GroupPower; Mode::COUNT],
}

impl ModePowerFigure {
    /// Total average power of one mode (W).
    pub fn total_w(&self, mode: Mode) -> f64 {
        self.per_mode[mode.index()].total()
    }
}

impl fmt::Display for ModePowerFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>8} {:>8} {:>8} {:>8}",
            "group", "user", "kernel", "sync", "idle"
        )?;
        for g in UnitGroup::ALL {
            writeln!(
                f,
                "{:<10} {:8.3} {:8.3} {:8.3} {:8.3}",
                g.label(),
                self.per_mode[0].get(g),
                self.per_mode[1].get(g),
                self.per_mode[2].get(g),
                self.per_mode[3].get(g),
            )?;
        }
        write!(
            f,
            "{:<10} {:8.3} {:8.3} {:8.3} {:8.3}",
            "Total",
            self.total_w(Mode::User),
            self.total_w(Mode::KernelInstr),
            self.total_w(Mode::KernelSync),
            self.total_w(Mode::Idle),
        )
    }
}

/// Figure 8 row: one kernel service's average power breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ServicePowerRow {
    /// The service.
    pub service: KernelService,
    /// Invocations pooled.
    pub invocations: u64,
    /// Average power while executing the service (W per group).
    pub power_w: GroupPower,
}

impl fmt::Display for ServicePowerRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:8.3} W over {} invocations",
            self.service.name(),
            self.power_w.total(),
            self.invocations
        )
    }
}

/// One cell of the Figure 9 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskStudyCell {
    /// Disk configuration.
    pub setup: DiskSetup,
    /// Disk energy over the run (paper-time J).
    pub disk_energy_j: f64,
    /// Total idle cycles of the execution profile.
    pub idle_cycles: u64,
    /// Total run cycles.
    pub total_cycles: u64,
    /// Spin-ups performed.
    pub spinups: u64,
    /// Spin-downs completed.
    pub spindowns: u64,
}

/// Figure 9 row: one benchmark across the four disk configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Cells in [`DiskSetup::ALL`] order.
    pub cells: [DiskStudyCell; 4],
}

impl Fig9Row {
    /// The cell for one setup.
    pub fn cell(&self, setup: DiskSetup) -> &DiskStudyCell {
        self.cells
            .iter()
            .find(|c| c.setup == setup)
            .expect("all setups present")
    }
}

impl fmt::Display for Fig9Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.benchmark)?;
        for c in &self.cells {
            writeln!(
                f,
                "  {:<22} {}  idle {:>10} cyc  (spinups {}, spindowns {})",
                c.setup.label(),
                joules(c.disk_energy_j),
                c.idle_cycles,
                c.spinups,
                c.spindowns
            )?;
        }
        Ok(())
    }
}

/// Table 2 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Percent of cycles per mode (user/kernel/sync/idle).
    pub cycles_pct: [f64; Mode::COUNT],
    /// Percent of energy per mode.
    pub energy_pct: [f64; Mode::COUNT],
}

impl fmt::Display for Table2Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} cycles {} {} {} {}  energy {} {} {} {}",
            self.benchmark,
            pct(self.cycles_pct[0] / 100.0),
            pct(self.cycles_pct[1] / 100.0),
            pct(self.cycles_pct[2] / 100.0),
            pct(self.cycles_pct[3] / 100.0),
            pct(self.energy_pct[0] / 100.0),
            pct(self.energy_pct[1] / 100.0),
            pct(self.energy_pct[2] / 100.0),
            pct(self.energy_pct[3] / 100.0),
        )
    }
}

/// Table 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// iL1 references per cycle per mode.
    pub il1_per_cycle: [f64; Mode::COUNT],
    /// dL1 references per cycle per mode.
    pub dl1_per_cycle: [f64; Mode::COUNT],
}

impl fmt::Display for Table3Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} iL1 {:5.2} {:5.2} {:5.2} {:5.2}  dL1 {:5.2} {:5.2} {:5.2} {:5.2}",
            self.benchmark,
            self.il1_per_cycle[0],
            self.il1_per_cycle[1],
            self.il1_per_cycle[2],
            self.il1_per_cycle[3],
            self.dl1_per_cycle[0],
            self.dl1_per_cycle[1],
            self.dl1_per_cycle[2],
            self.dl1_per_cycle[3],
        )
    }
}

/// Table 4 entry: one service of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Entry {
    /// The service.
    pub service: KernelService,
    /// Invocations observed (time-scaled counts; see `EXPERIMENTS.md`).
    pub invocations: u64,
    /// Percent of kernel-service cycles.
    pub cycles_pct: f64,
    /// Percent of kernel-service energy.
    pub energy_pct: f64,
}

/// Table 4 row: one benchmark's service breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Entries sorted by descending cycle share.
    pub entries: Vec<Table4Entry>,
}

impl Table4Row {
    /// A service's entry, if it was invoked.
    pub fn entry(&self, service: KernelService) -> Option<&Table4Entry> {
        self.entries.iter().find(|e| e.service == service)
    }
}

impl fmt::Display for Table4Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.benchmark)?;
        for e in &self.entries {
            writeln!(
                f,
                "  {:<12} n={:<8} cycles {:6.2}%  energy {:6.2}%",
                e.service.name(),
                e.invocations,
                e.cycles_pct,
                e.energy_pct
            )?;
        }
        Ok(())
    }
}

/// Table 5 row: per-invocation energy variation of one service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table5Row {
    /// The service.
    pub service: KernelService,
    /// Pooled invocations.
    pub invocations: u64,
    /// Mean per-invocation energy (J).
    pub mean_energy_j: f64,
    /// Coefficient of deviation, percent.
    pub cod_pct: f64,
}

impl fmt::Display for Table5Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} mean {}  CoD {:6.2}%  (n={})",
            self.service.name(),
            joules(self.mean_energy_j),
            self.cod_pct,
            self.invocations
        )
    }
}

/// Extension row: kernel share on the single-issue vs superscalar machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelShareRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Kernel (+sync) share of cycles on the single-issue machine, %.
    pub single_issue_pct: f64,
    /// Kernel (+sync) share on the 4-wide machine, %.
    pub superscalar_pct: f64,
}

impl fmt::Display for KernelShareRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} single-issue {:5.1}%  ->  4-wide {:5.1}%",
            self.benchmark, self.single_issue_pct, self.superscalar_pct
        )
    }
}

/// Extension row: count-based kernel-energy estimation vs full simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelEstimateRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Kernel energy from full per-invocation attribution (J).
    pub full_j: f64,
    /// Kernel energy estimated from counts x cross-run means (J).
    pub estimated_j: f64,
}

impl KernelEstimateRow {
    /// Signed estimation error in percent.
    pub fn error_pct(&self) -> f64 {
        100.0 * (self.estimated_j - self.full_j) / self.full_j.max(1e-30)
    }
}

impl fmt::Display for KernelEstimateRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} full {}  estimate {}  error {:+.1}%",
            self.benchmark,
            joules(self.full_j),
            joules(self.estimated_j),
            self.error_pct()
        )
    }
}

/// Extension row: whole-run power metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerMetricsRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Run-average processor+memory power (W).
    pub average_w: f64,
    /// Peak sampling-window power (W).
    pub peak_w: f64,
    /// When the peak occurred (paper-time seconds).
    pub peak_at_s: f64,
    /// Total processor+memory energy (J, machine time).
    pub energy_j: f64,
    /// Energy-delay product (J*s).
    pub edp_js: f64,
}

impl fmt::Display for PowerMetricsRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} avg {:5.2} W  peak {:5.2} W (at {:6.2}s)  E {}  EDP {:9.3e} J.s",
            self.benchmark,
            self.average_w,
            self.peak_w,
            self.peak_at_s,
            joules(self.energy_j),
            self.edp_js
        )
    }
}

/// Extension row: SLEEP-capable policy vs the 2 s standby configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepStudyRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Disk energy under the 2 s standby policy (J).
    pub standby_j: f64,
    /// Disk energy under the SLEEP-capable policy (J).
    pub sleep_j: f64,
    /// Idle cycles under the SLEEP-capable policy.
    pub sleep_idle_cycles: u64,
    /// Idle cycles under the standby policy.
    pub standby_idle_cycles: u64,
}

impl fmt::Display for SleepStudyRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} standby-2s {}  sleep {}  ({:+.1}% energy, idle {} -> {})",
            self.benchmark,
            joules(self.standby_j),
            joules(self.sleep_j),
            100.0 * (self.sleep_j - self.standby_j) / self.standby_j.max(1e-30),
            self.standby_idle_cycles,
            self.sleep_idle_cycles,
        )
    }
}

/// Extension row: disk energy for one inter-request gap under each policy.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverRow {
    /// Idle gap between the two requests, paper-time seconds.
    pub gap_s: f64,
    /// `(policy, total energy J, spin-ups)` per candidate policy.
    pub energies: [(DiskPolicy, f64, u64); 4],
}

impl CrossoverRow {
    /// The policy with the lowest energy for this gap.
    pub fn winner(&self) -> DiskPolicy {
        self.energies
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty")
            .0
    }
}

impl fmt::Display for CrossoverRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gap {:5.0}s:", self.gap_s)?;
        for (policy, j, _) in &self.energies {
            write!(f, "  {}={:6.2}J", policy.label(), j)?;
        }
        write!(f, "  -> winner: {}", self.winner().label())
    }
}

/// Extension row: one conditional-clocking style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatingRow {
    /// Style label.
    pub label: &'static str,
    /// Run-average processor+memory power (W).
    pub average_w: f64,
    /// Total processor+memory energy (J).
    pub energy_j: f64,
}

impl fmt::Display for GatingRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} avg {:6.2} W  energy {}",
            self.label,
            self.average_w,
            joules(self.energy_j)
        )
    }
}

/// Extension row: one point of the L1I design sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRow {
    /// L1 instruction-cache capacity (KiB).
    pub l1i_kb: u64,
    /// Run length in cycles (performance side).
    pub cycles: u64,
    /// L1I average power (W).
    pub l1i_w: f64,
    /// Instruction-side L2 average power (W).
    pub l2i_w: f64,
    /// Whole-system average power (W).
    pub total_w: f64,
    /// Energy-delay product (J*s).
    pub edp_js: f64,
}

impl fmt::Display for SweepRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1I {:>4} KiB: {:>9} cycles  L1I {:5.2} W  L2I {:6.3} W  total {:5.2} W  EDP {:9.3e}",
            self.l1i_kb, self.cycles, self.l1i_w, self.l2i_w, self.total_w, self.edp_js
        )
    }
}

/// Extension row: one technology projection point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechRow {
    /// Node label.
    pub label: &'static str,
    /// Processor+memory average power on the jess run (W).
    pub cpu_mem_w: f64,
    /// Maximum-activity power at this node (W).
    pub max_w: f64,
}

impl fmt::Display for TechRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<32} avg {:6.2} W  max {:6.2} W",
            self.label, self.cpu_mem_w, self.max_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TraceStore;

    /// A canned [`PeerSource`] that always answers with the same bytes
    /// (or a miss), standing in for every fabric failure mode: owner
    /// down (`None`), a mid-stream disconnect (truncated bytes), a
    /// corrupt cache (garbage bytes), config drift (another key's
    /// bytes).
    #[derive(Debug)]
    struct StaticPeer {
        bytes: Option<Vec<u8>>,
    }

    impl PeerSource for StaticPeer {
        fn fetch(&self, _key: &TraceKey, _workload: &str, _cpu: &str) -> Option<Vec<u8>> {
            self.bytes.clone()
        }
    }

    fn quick_config() -> SystemConfig {
        SystemConfig {
            time_scale: 50_000.0,
            idle: IdleHandling::Analytic,
            ..SystemConfig::default()
        }
    }

    fn peered_suite(name: &str, bytes: Option<Vec<u8>>) -> ExperimentSuite {
        let dir = std::env::temp_dir().join(format!("swpeer-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ExperimentSuite::new(quick_config())
            .unwrap()
            .with_trace_store(TraceStore::open(dir).unwrap())
            .with_peer_source(Arc::new(StaticPeer { bytes }))
    }

    /// Valid `swtrace-v1` bytes for jess/Mxs under [`quick_config`],
    /// captured by an isolated donor suite (no store, no peers).
    fn donor_bytes(workload: WorkloadKey, cpu: CpuModel) -> Vec<u8> {
        let donor = ExperimentSuite::new(quick_config()).unwrap();
        donor.trace_share_bytes(workload, cpu)
    }

    /// Every degraded fetch must end in a local simulation that is
    /// persisted to the store — a broken peer is a lost optimization,
    /// never an error.
    fn assert_degrades_to_sim(name: &str, bytes: Option<Vec<u8>>) {
        let suite = peered_suite(name, bytes);
        let workload = WorkloadKey::Canned(Benchmark::Jess);
        let trace = suite.trace_for(workload, CpuModel::Mxs);
        assert!(trace.work_cycles > 0, "{name}: usable trace");
        assert_eq!(suite.trace_source(workload, CpuModel::Mxs), Some("sim"));
        assert_eq!(suite.peer_loads(), 0, "{name}: nothing trusted");
        assert_eq!(suite.runs_executed(), 1, "{name}: exactly one capture");
        let key = suite.trace_key(workload, CpuModel::Mxs);
        assert!(
            suite.trace_store().unwrap().contains(&key),
            "{name}: fallback capture persists locally"
        );
    }

    #[test]
    fn dead_owner_degrades_to_local_sim() {
        assert_degrades_to_sim("down", None);
    }

    #[test]
    fn corrupt_peer_bytes_degrade_to_local_sim() {
        assert_degrades_to_sim("corrupt", Some(b"not a swtrace-v1 stream".to_vec()));
    }

    #[test]
    fn truncated_peer_stream_degrades_to_local_sim() {
        let good = donor_bytes(WorkloadKey::Canned(Benchmark::Jess), CpuModel::Mxs);
        assert!(good.len() > 64);
        assert_degrades_to_sim("truncated", Some(good[..good.len() / 2].to_vec()));
    }

    #[test]
    fn mismatched_descriptor_degrades_to_local_sim() {
        // A healthy stream for the *wrong* key (config drift between
        // peers): checksum passes, descriptor comparison must not.
        let other = donor_bytes(WorkloadKey::Canned(Benchmark::Db), CpuModel::Mxs);
        assert_degrades_to_sim("drift", Some(other));
    }

    #[test]
    fn verified_peer_bytes_replace_the_simulation() {
        let good = donor_bytes(WorkloadKey::Canned(Benchmark::Jess), CpuModel::Mxs);
        let suite = peered_suite("good", Some(good));
        let workload = WorkloadKey::Canned(Benchmark::Jess);
        let trace = suite.trace_for(workload, CpuModel::Mxs);
        assert!(trace.work_cycles > 0);
        assert_eq!(suite.trace_source(workload, CpuModel::Mxs), Some("peer"));
        assert_eq!(suite.peer_loads(), 1);
        assert_eq!(suite.runs_executed(), 0, "no local simulation");
        let key = suite.trace_key(workload, CpuModel::Mxs);
        assert!(
            suite.trace_store().unwrap().contains(&key),
            "fetched trace persists locally"
        );
    }

    #[test]
    fn share_path_never_consults_peers() {
        // The serving path must resolve locally even with a peer source
        // attached — this is the re-entrancy guard that bounds any
        // disagreeing ring views to one hop.
        #[derive(Debug)]
        struct Exploding;
        impl PeerSource for Exploding {
            fn fetch(&self, _: &TraceKey, _: &str, _: &str) -> Option<Vec<u8>> {
                panic!("trace_share_bytes must not reach the fabric");
            }
        }
        let dir = std::env::temp_dir().join(format!("swpeer-{}-share", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let suite = ExperimentSuite::new(quick_config())
            .unwrap()
            .with_trace_store(TraceStore::open(dir).unwrap())
            .with_peer_source(Arc::new(Exploding));
        let bytes = suite.trace_share_bytes(WorkloadKey::Canned(Benchmark::Jess), CpuModel::Mxs);
        assert!(!bytes.is_empty());
        assert_eq!(suite.runs_executed(), 1, "captured locally");
    }
}
