//! The persistent trace store: pay for each full simulation once per
//! machine, not once per process.
//!
//! A [`TraceStore`] is a content-addressed cache directory of `swtrace-v1`
//! files (see `softwatt_stats::swtrace`). Entries are keyed by a
//! [`TraceKey`]: a stable 64-bit hash of the *policy-independent* run
//! identity — benchmark, CPU model, and every [`SystemConfig`] field that
//! can change the captured work stream (time scale, seed, memory geometry,
//! core widths, OS parameters, sampling interval, ...). Disk policy and
//! idle handling are deliberately normalized out: a captured trace replays
//! through any disk policy, so one entry serves every policy variant.
//!
//! The store is a *cache*, never a source of truth, so every failure mode
//! degrades to "simulate it again":
//!
//! - lookups that find nothing are misses;
//! - entries that fail to parse (bad magic, truncation, checksum or
//!   key-descriptor mismatch, stale format version) are counted as corrupt,
//!   logged, deleted, and treated as misses;
//! - writes are crash-safe (temp file in the same directory, fsync, atomic
//!   rename) and best-effort — a full disk loses the cache entry, not the
//!   run.
//!
//! Atomic renames also make concurrent use by multiple processes safe: a
//! reader sees either the complete old entry or the complete new one, and
//! two writers racing on the same key both produce identical bytes (runs
//! are deterministic), so either winner is correct.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use softwatt_stats::hash::fnv1a;
use softwatt_stats::swtrace::SWTRACE_VERSION;
use softwatt_stats::PerfTrace;
use softwatt_workloads::Benchmark;

use crate::config::{CpuModel, IdleHandling, SystemConfig};

/// The content address of one stored trace.
///
/// The descriptor string is the full human-readable identity (it rides
/// along inside the entry as the annotation, so a hash collision or a
/// config drift is detected on load); the hash names the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceKey {
    descriptor: String,
    hash: u64,
}

impl TraceKey {
    /// Derives the key for one (config, benchmark, CPU) run.
    ///
    /// Policy-dependent fields are normalized before hashing: the CPU field
    /// is set to `cpu`, idle handling to [`IdleHandling::Analytic`] (the
    /// only mode traces are captured under), and the disk *policy* to
    /// conventional — the captured work stream does not depend on it. Every
    /// other field participates via the config's `Debug` rendering, whose
    /// f64 formatting is shortest-round-trip and therefore exact. The
    /// `swtrace` format version is folded in so a codec change invalidates
    /// every old entry at once.
    pub fn derive(config: &SystemConfig, benchmark: Benchmark, cpu: CpuModel) -> TraceKey {
        let mut canonical = config.clone();
        canonical.cpu = cpu;
        canonical.idle = IdleHandling::Analytic;
        canonical.disk.policy = softwatt_disk::DiskPolicy::Conventional;
        let descriptor = format!("swtrace-v{SWTRACE_VERSION}|{benchmark}|{canonical:?}");
        let hash = fnv1a(descriptor.as_bytes());
        TraceKey { descriptor, hash }
    }

    /// Derives the key for a user-supplied spec, addressed by its
    /// [`BenchmarkSpec::content_hash`]. The benchmark slot of the
    /// descriptor carries a `spec:<16-hex-digit hash>` token instead of a
    /// benchmark name — `spec:` is not a valid benchmark name, so spec
    /// entries can never collide with canned ones, and the canned
    /// descriptors (and so every existing on-disk entry) are unchanged.
    ///
    /// [`BenchmarkSpec::content_hash`]: softwatt_workloads::BenchmarkSpec::content_hash
    pub fn derive_spec(config: &SystemConfig, spec_hash: u64, cpu: CpuModel) -> TraceKey {
        let mut canonical = config.clone();
        canonical.cpu = cpu;
        canonical.idle = IdleHandling::Analytic;
        canonical.disk.policy = softwatt_disk::DiskPolicy::Conventional;
        let descriptor = format!("swtrace-v{SWTRACE_VERSION}|spec:{spec_hash:016x}|{canonical:?}");
        let hash = fnv1a(descriptor.as_bytes());
        TraceKey { descriptor, hash }
    }

    /// The full identity string (stored inside the entry as its
    /// annotation).
    pub fn descriptor(&self) -> &str {
        &self.descriptor
    }

    /// The stable 64-bit content hash (names the cache file).
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

/// A source of `swtrace-v1` bytes from cluster peers.
///
/// The suite's trace lookup grows a fourth tier through this hook
/// (memo → store → **peer fetch** → capture) without `softwatt` itself
/// learning any networking: the `softwatt-fabric` crate implements it
/// over the peer protocol, and the suite stays testable with an in-memory
/// fake. Implementations decide ownership (consistent-hash ring) and
/// return `None` for keys this node owns, keys no peer can serve, or any
/// transport failure — every `None` degrades to a local simulation.
pub trait PeerSource: Send + Sync + std::fmt::Debug {
    /// Raw `swtrace-v1` bytes for `key` from its owning peer, or `None`.
    ///
    /// `workload` and `cpu` are the wire labels (`jess`, `spec:ab12…` /
    /// `mxs`, `mipsy`) the owner needs to capture the trace on demand;
    /// the returned bytes are *untrusted* until the caller parses,
    /// checksum-verifies, and descriptor-matches them against `key`.
    fn fetch(&self, key: &TraceKey, workload: &str, cpu: &str) -> Option<Vec<u8>>;
}

/// A content-addressed on-disk cache of captured [`PerfTrace`]s. See the
/// module docs for the failure-mode contract.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
    /// Soft byte cap on the directory's `.swtrace` total; `None` = no cap.
    max_bytes: Option<u64>,
}

impl TraceStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<TraceStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(TraceStore {
            dir,
            max_bytes: None,
        })
    }

    /// Sets a soft cap on the directory's total `.swtrace` bytes.
    ///
    /// Enforced after every write by evicting oldest-mtime entries first
    /// (never the entry just written, so a single oversized trace still
    /// caches and replays). Soft: concurrent writers can overshoot by a
    /// few entries between enforcement passes — eviction is disk hygiene,
    /// not an accounting invariant, and every evicted entry is just a
    /// future cache miss.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> TraceStore {
        self.max_bytes = max_bytes;
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry for `key` lives at.
    pub fn entry_path(&self, key: &TraceKey) -> PathBuf {
        self.dir.join(format!("{:016x}.swtrace", key.hash))
    }

    /// Whether an entry file exists for `key`, without reading it.
    ///
    /// A cheap existence probe for admission decisions: a `true` here can
    /// still turn into a load-time miss if the entry is corrupt (the
    /// loader deletes it and the caller simulates), so treat the answer
    /// as a cost hint, not a guarantee.
    pub fn contains(&self, key: &TraceKey) -> bool {
        self.entry_path(key).exists()
    }

    /// Looks `key` up, returning the stored trace on a hit.
    ///
    /// Never errors: a missing entry is a miss; an unreadable or corrupt
    /// entry (bad magic, truncation, checksum mismatch, stale format
    /// version, annotation that does not match the key descriptor) is
    /// counted, logged, *deleted*, and reported as a miss. The caller's
    /// only fallback is a fresh simulation either way.
    pub fn load(&self, key: &TraceKey) -> Option<PerfTrace> {
        let path = self.entry_path(key);
        let file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    softwatt_obs::obs_event!(
                        softwatt_obs::Level::Warn,
                        "store",
                        "cannot open trace cache entry {}: {e}",
                        path.display()
                    );
                }
                softwatt_obs::count("trace_store.misses", 1);
                return None;
            }
        };
        let _span = softwatt_obs::span("store.load_ns");
        let parsed = PerfTrace::from_binary(io::BufReader::new(file)).and_then(|(trace, note)| {
            if note == key.descriptor.as_bytes() {
                Ok(trace)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "entry annotation does not match the key descriptor \
                     (hash collision or config drift)",
                ))
            }
        });
        match parsed {
            Ok(trace) => {
                softwatt_obs::count("trace_store.hits", 1);
                trace
            }
            Err(e) => {
                softwatt_obs::count("trace_store.corrupt", 1);
                softwatt_obs::count("trace_store.misses", 1);
                softwatt_obs::obs_event!(
                    softwatt_obs::Level::Warn,
                    "store",
                    "corrupt trace cache entry {} ({e}); deleting and re-simulating",
                    path.display()
                );
                self.evict(&path);
                return None;
            }
        }
        .into()
    }

    /// Persists `trace` under `key`, crash-safely: the bytes land in a
    /// temp file in the store directory, are fsynced, and are renamed over
    /// the final name, so concurrent readers and a crash mid-write can
    /// never observe a partial entry.
    ///
    /// Best-effort: failures are logged as obs events and swallowed — the
    /// caller already has the trace, and the store is only a cache.
    pub fn store(&self, key: &TraceKey, trace: &PerfTrace) {
        let _span = softwatt_obs::span("store.write_ns");
        let tmp = self
            .dir
            .join(format!(".tmp-{:016x}-{}", key.hash, std::process::id()));
        match self.write_entry(key, trace, &tmp) {
            Ok(()) => {
                softwatt_obs::count("trace_store.writes", 1);
                self.enforce_cap(&self.entry_path(key));
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                softwatt_obs::obs_event!(
                    softwatt_obs::Level::Warn,
                    "store",
                    "cannot persist trace cache entry {} ({e}); continuing without it",
                    self.entry_path(key).display()
                );
            }
        }
    }

    fn write_entry(&self, key: &TraceKey, trace: &PerfTrace, tmp: &Path) -> io::Result<()> {
        let mut file = fs::File::create(tmp)?;
        trace.to_binary(&mut file, key.descriptor.as_bytes())?;
        file.flush()?;
        file.sync_all()?;
        drop(file);
        fs::rename(tmp, self.entry_path(key))
    }

    /// The raw `swtrace-v1` bytes of `key`'s entry, unvalidated — this is
    /// what a peer streams over the fabric. The *receiver* parses and
    /// checksum-verifies before trusting them, so a corrupt entry here
    /// costs the peer a fallback simulation, never a bad answer.
    pub fn load_raw(&self, key: &TraceKey) -> Option<Vec<u8>> {
        fs::read(self.entry_path(key)).ok()
    }

    /// Persists already-encoded `swtrace-v1` bytes under `key`, with the
    /// same crash-safe temp-file/fsync/rename dance as
    /// [`TraceStore::store`]. Callers must have validated the bytes (the
    /// peer-fetch tier parses and descriptor-checks before persisting);
    /// the store itself stays agnostic. Best-effort like every write.
    pub fn store_raw(&self, key: &TraceKey, bytes: &[u8]) {
        let _span = softwatt_obs::span("store.write_ns");
        let tmp = self
            .dir
            .join(format!(".tmp-{:016x}-{}", key.hash, std::process::id()));
        let write = || -> io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.flush()?;
            file.sync_all()?;
            drop(file);
            fs::rename(&tmp, self.entry_path(key))
        };
        match write() {
            Ok(()) => {
                softwatt_obs::count("trace_store.writes", 1);
                self.enforce_cap(&self.entry_path(key));
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                softwatt_obs::obs_event!(
                    softwatt_obs::Level::Warn,
                    "store",
                    "cannot persist trace cache entry {} ({e}); continuing without it",
                    self.entry_path(key).display()
                );
            }
        }
    }

    /// Brings the directory back under the soft byte cap (when one is
    /// set) by deleting oldest-mtime entries first. `just_written` is
    /// exempt — the entry that triggered enforcement always survives it.
    ///
    /// Races with concurrent writers are benign: sizes and mtimes are a
    /// snapshot, a doomed entry that another process re-renames is simply
    /// re-deleted (identical bytes), and a `NotFound` on delete means
    /// someone else already evicted it.
    fn enforce_cap(&self, just_written: &Path) {
        let Some(cap) = self.max_bytes else { return };
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut seen: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
        let mut total = 0u64;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "swtrace") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            total += meta.len();
            if path != just_written {
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                seen.push((mtime, meta.len(), path));
            }
        }
        if total <= cap {
            return;
        }
        // Oldest first; the path tie-break keeps eviction order
        // deterministic when a burst of writes lands within one mtime
        // granule.
        seen.sort();
        for (_, len, path) in seen {
            if total <= cap {
                break;
            }
            softwatt_obs::obs_event!(
                softwatt_obs::Level::Info,
                "store",
                "evicting {} ({len} bytes) to respect the {cap}-byte cache cap",
                path.display()
            );
            self.evict(&path);
            total = total.saturating_sub(len);
        }
    }

    /// Deletes every `.swtrace` entry in the store, returning how many
    /// were removed.
    ///
    /// # Errors
    ///
    /// Returns the first directory-listing or deletion error.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0;
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "swtrace") {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    fn evict(&self, path: &Path) {
        match fs::remove_file(path) {
            Ok(()) => softwatt_obs::count("trace_store.evictions", 1),
            // Already gone is fine — another process may have evicted it.
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => softwatt_obs::obs_event!(
                softwatt_obs::Level::Warn,
                "store",
                "cannot delete corrupt trace cache entry {}: {e}",
                path.display()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swstore-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn quick_config() -> SystemConfig {
        SystemConfig {
            time_scale: 50_000.0,
            idle: IdleHandling::Analytic,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn key_ignores_policy_dependent_fields() {
        let config = quick_config();
        let base = TraceKey::derive(&config, Benchmark::Jess, CpuModel::Mxs);

        let mut policy = config.clone();
        policy.disk.policy = softwatt_disk::DiskPolicy::Standby { threshold_s: 2.0 };
        policy.idle = IdleHandling::Simulate;
        assert_eq!(
            TraceKey::derive(&policy, Benchmark::Jess, CpuModel::Mxs),
            base,
            "disk policy and idle handling must not change the key"
        );

        let mut scaled = config.clone();
        scaled.time_scale = 60_000.0;
        let mut seeded = config.clone();
        seeded.seed ^= 1;
        for (what, other) in [
            (
                "benchmark",
                TraceKey::derive(&config, Benchmark::Db, CpuModel::Mxs),
            ),
            (
                "cpu model",
                TraceKey::derive(&config, Benchmark::Jess, CpuModel::Mipsy),
            ),
            (
                "time scale",
                TraceKey::derive(&scaled, Benchmark::Jess, CpuModel::Mxs),
            ),
            (
                "seed",
                TraceKey::derive(&seeded, Benchmark::Jess, CpuModel::Mxs),
            ),
        ] {
            assert_ne!(other, base, "{what} must change the key");
            assert_ne!(other.hash(), base.hash(), "{what} must change the hash");
        }
    }

    #[test]
    fn spec_keys_are_disjoint_from_canned_keys() {
        let config = quick_config();
        let canned = TraceKey::derive(&config, Benchmark::Jess, CpuModel::Mxs);
        let spec = TraceKey::derive_spec(&config, 0xabcd, CpuModel::Mxs);
        assert_ne!(spec, canned, "spec token must change the descriptor");
        assert!(spec.descriptor().contains("spec:000000000000abcd"));
        assert_ne!(
            TraceKey::derive_spec(&config, 0xabce, CpuModel::Mxs),
            spec,
            "content hash must change the key"
        );
        let mut other_cpu = config.clone();
        other_cpu.cpu = CpuModel::Mipsy;
        assert_eq!(
            TraceKey::derive_spec(&other_cpu, 0xabcd, CpuModel::Mxs),
            spec,
            "spec keys normalize policy-dependent fields like canned keys"
        );
    }

    #[test]
    fn store_round_trips_a_captured_trace() {
        let dir = test_dir("roundtrip");
        let store = TraceStore::open(&dir).unwrap();
        let config = quick_config();
        let sim = Simulator::new(config.clone()).unwrap();
        let trace = sim.run_benchmark_traced(Benchmark::Jess).1;
        let key = TraceKey::derive(&config, Benchmark::Jess, config.cpu);

        assert!(store.load(&key).is_none(), "store starts empty");
        store.store(&key, &trace);
        assert_eq!(store.load(&key).as_ref(), Some(&trace));

        // A different key misses even though the file for `key` exists.
        let other = TraceKey::derive(&config, Benchmark::Db, config.cpu);
        assert!(store.load(&other).is_none());

        assert_eq!(store.clear().unwrap(), 1);
        assert!(store.load(&key).is_none(), "clear removed the entry");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_cap_evicts_oldest_first_but_never_the_new_entry() {
        let dir = test_dir("cap");
        let store = TraceStore::open(&dir).unwrap();
        let config = quick_config();
        let sim = Simulator::new(config.clone()).unwrap();
        let trace = sim.run_benchmark_traced(Benchmark::Jess).1;
        // Spec-derived keys give unlimited distinct entries from one
        // captured trace; their descriptors (and so entry sizes) match to
        // the byte.
        let key = |i: u64| TraceKey::derive_spec(&config, i, config.cpu);

        store.store(&key(0), &trace);
        let entry_len = fs::metadata(store.entry_path(&key(0))).unwrap().len();
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.store(&key(1), &trace);
        std::thread::sleep(std::time::Duration::from_millis(20));

        // Room for two entries: writing a third must evict exactly the
        // oldest, and the entry just written must survive its own pass.
        let capped = store.clone().with_max_bytes(Some(entry_len * 2 + 1));
        capped.store(&key(2), &trace);
        assert!(!capped.contains(&key(0)), "oldest entry evicted by the cap");
        assert!(capped.contains(&key(1)), "newer entry kept");
        assert!(capped.contains(&key(2)), "just-written entry never evicted");

        // A cap smaller than one entry still keeps the fresh write (the
        // cap is soft) while sweeping everything else.
        let tiny = store.clone().with_max_bytes(Some(1));
        tiny.store(&key(3), &trace);
        assert!(tiny.contains(&key(3)), "fresh write survives a tiny cap");
        assert!(!tiny.contains(&key(1)), "everything else swept");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_cap_is_safe_under_concurrent_writers() {
        let dir = test_dir("cap-concurrent");
        let config = quick_config();
        let sim = Simulator::new(config.clone()).unwrap();
        let trace = std::sync::Arc::new(sim.run_benchmark_traced(Benchmark::Jess).1);
        let probe = TraceStore::open(&dir).unwrap();
        probe.store(&TraceKey::derive_spec(&config, 999, config.cpu), &trace);
        let entry_len =
            fs::metadata(probe.entry_path(&TraceKey::derive_spec(&config, 999, config.cpu)))
                .unwrap()
                .len();
        let cap = entry_len * 3;

        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let dir = dir.clone();
                let config = config.clone();
                let trace = std::sync::Arc::clone(&trace);
                std::thread::spawn(move || {
                    let store = TraceStore::open(&dir).unwrap().with_max_bytes(Some(cap));
                    for i in 0..8u64 {
                        store.store(
                            &TraceKey::derive_spec(&config, t * 100 + i, config.cpu),
                            &trace,
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("writer panicked");
        }

        // Soft cap: each enforcement pass exempts its own fresh entry, so
        // racing writers can overshoot by at most one entry each — but the
        // steady state lands at (cap + one entry) or below, and every
        // surviving entry still parses.
        let total: u64 = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "swtrace"))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(
            total <= cap + entry_len,
            "total {total} exceeds cap {cap} by more than one entry ({entry_len})"
        );
        let survivors: Vec<_> = (0..4u64)
            .flat_map(|t| (0..8u64).map(move |i| t * 100 + i))
            .map(|h| TraceKey::derive_spec(&config, h, config.cpu))
            .filter(|k| probe.contains(k))
            .collect();
        assert!(!survivors.is_empty(), "the cap left some entries behind");
        for key in survivors {
            assert!(probe.load(&key).is_some(), "survivor must parse cleanly");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn raw_bytes_round_trip_and_serve_peers() {
        let dir = test_dir("raw");
        let store = TraceStore::open(&dir).unwrap();
        let config = quick_config();
        let sim = Simulator::new(config.clone()).unwrap();
        let trace = sim.run_benchmark_traced(Benchmark::Jess).1;
        let key = TraceKey::derive(&config, Benchmark::Jess, config.cpu);

        assert!(store.load_raw(&key).is_none(), "no entry, no bytes");
        store.store(&key, &trace);
        let bytes = store.load_raw(&key).expect("raw bytes of the entry");
        let (parsed, note) =
            PerfTrace::from_binary(io::Cursor::new(&bytes)).expect("raw bytes parse");
        assert_eq!(parsed, trace);
        assert_eq!(note, key.descriptor().as_bytes());

        // store_raw persists pre-encoded bytes identically (the
        // peer-receive path).
        let other = TraceKey::derive_spec(&config, 7, config.cpu);
        let mut peer_bytes = Vec::new();
        trace
            .to_binary(&mut peer_bytes, other.descriptor().as_bytes())
            .unwrap();
        store.store_raw(&other, &peer_bytes);
        assert_eq!(store.load(&other).as_ref(), Some(&trace));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_deleted_and_misses() {
        let dir = test_dir("corrupt");
        let store = TraceStore::open(&dir).unwrap();
        let config = quick_config();
        let sim = Simulator::new(config.clone()).unwrap();
        let trace = sim.run_benchmark_traced(Benchmark::Jess).1;
        let key = TraceKey::derive(&config, Benchmark::Jess, config.cpu);
        store.store(&key, &trace);

        let path = store.entry_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        assert!(store.load(&key).is_none(), "corrupt entry must miss");
        assert!(!path.exists(), "corrupt entry must be deleted");
        assert!(store.load(&key).is_none(), "second lookup is a plain miss");
        let _ = fs::remove_dir_all(&dir);
    }
}
