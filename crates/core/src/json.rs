//! Serialize-free JSON emission for run bundles and paper artifacts.
//!
//! The serving layer (`softwatt-serve`) exposes the experiment suite over
//! HTTP; its response bodies are assembled here so that a response is
//! *byte-identical* to the same query rendered in-process (the
//! `crates/serve` integration tests pin that equivalence). Like the
//! `softwatt-obs` export, everything is hand-assembled — the workspace has
//! no serde — and floats use Rust's shortest round-trip representation so
//! identical results serialize to identical bytes.

use std::fmt::Write as _;

use softwatt_power::{SurrogateEstimate, UnitGroup};
use softwatt_stats::Mode;
use softwatt_workloads::BenchmarkSpec;

use crate::budget::{system_budget, SystemBudget};
use crate::experiments::{ExperimentSuite, RunBundle, RunKey};

/// The figure/table names [`figure`] understands, in presentation order.
pub const FIGURES: [&str; 7] = [
    "validation",
    "fig5",
    "fig6",
    "fig7",
    "fig9",
    "table2",
    "table4",
];

/// Appends `s` as a JSON string literal.
fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to string");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float as a JSON number (`{:?}` is the shortest representation
/// that round-trips, and is valid JSON for every finite value); non-finite
/// values become `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        write!(out, "{v:?}").expect("write to string");
    } else {
        out.push_str("null");
    }
}

fn push_key(out: &mut String, key: &str) {
    push_str_lit(out, key);
    out.push_str(": ");
}

fn push_budget(out: &mut String, budget: &SystemBudget) {
    out.push_str("{\"groups\": {");
    for (i, (g, w)) in budget.groups.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_key(out, g.label());
        push_f64(out, w);
    }
    out.push_str("}, \"disk_w\": ");
    push_f64(out, budget.disk_w);
    out.push_str(", \"total_w\": ");
    push_f64(out, budget.total_w());
    out.push_str(", \"disk_pct\": ");
    push_f64(out, budget.disk_pct());
    out.push('}');
}

/// Renders a [`RunKey`] as the object the serving API accepts back as a
/// query: `{"benchmark", "cpu", "disk"}` for canned workloads (bytes
/// unchanged from before specs existed), `{"workload": "spec:<hash>",
/// "cpu", "disk"}` for registered user specs.
pub fn run_key(key: RunKey) -> String {
    let mut out = String::new();
    match key.workload.canned() {
        Some(benchmark) => {
            out.push_str("{\"benchmark\": ");
            push_str_lit(&mut out, benchmark.name());
        }
        None => {
            out.push_str("{\"workload\": ");
            push_str_lit(&mut out, &key.workload.label());
        }
    }
    out.push_str(", \"cpu\": ");
    push_str_lit(&mut out, key.cpu.name());
    out.push_str(", \"disk\": ");
    push_str_lit(&mut out, key.disk.name());
    out.push('}');
    out
}

/// Renders a [`BenchmarkSpec`] in the canonical `softwatt-spec-v1` shape —
/// the same shape `softwatt-serve` parses back from `POST /v1/run` bodies,
/// so emit → parse → emit is byte-stable (the serve tests pin the round
/// trip).
pub fn benchmark_spec(spec: &BenchmarkSpec) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\": \"softwatt-spec-v1\", \"name\": ");
    push_str_lit(&mut out, &spec.name);
    out.push_str(", \"duration_s\": ");
    push_f64(&mut out, spec.duration_s);
    out.push_str(", \"assumed_ipc\": ");
    push_f64(&mut out, spec.assumed_ipc);
    write!(
        out,
        ", \"class_files\": {}, \"class_file_bytes\": {}",
        spec.class_files, spec.class_file_bytes
    )
    .expect("write to string");
    out.push_str(", \"startup_compute_frac\": ");
    push_f64(&mut out, spec.startup_compute_frac);
    out.push_str(", \"cacheflush_per_kinstr\": ");
    push_f64(&mut out, spec.cacheflush_per_kinstr);
    out.push_str(", \"phases\": [");
    for (i, p) in spec.phases.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"name\": ");
        push_str_lit(&mut out, &p.name);
        for (field, v) in [
            ("frac", p.frac),
            ("load", p.load),
            ("store", p.store),
            ("branch", p.branch),
            ("fp", p.fp),
            ("mul", p.mul),
            ("dep_prob", p.dep_prob),
            ("branch_stability", p.branch_stability),
            ("hot_frac", p.hot_frac),
        ] {
            out.push_str(", ");
            push_key(&mut out, field);
            push_f64(&mut out, v);
        }
        write!(
            out,
            ", \"hot_bytes\": {}, \"span_bytes\": {}, \"loop_len\": {}, \"n_loops\": {}, \"stay_per_loop\": {}",
            p.hot_bytes, p.span_bytes, p.loop_len, p.n_loops, p.stay_per_loop
        )
        .expect("write to string");
        out.push_str(", \"syscalls\": {");
        for (j, (field, v)) in [
            ("read", p.syscalls.read),
            ("write", p.syscalls.write),
            ("open", p.syscalls.open),
            ("xstat", p.syscalls.xstat),
            ("du_poll", p.syscalls.du_poll),
            ("bsd", p.syscalls.bsd),
        ]
        .into_iter()
        .enumerate()
        {
            if j > 0 {
                out.push_str(", ");
            }
            push_key(&mut out, field);
            push_f64(&mut out, v);
        }
        write!(out, "}}, \"io_bytes_mean\": {}", p.syscalls.io_bytes_mean)
            .expect("write to string");
        out.push_str(", \"fresh_per_kinstr\": ");
        push_f64(&mut out, p.fresh_per_kinstr);
        out.push('}');
    }
    out.push_str("], \"io_bursts\": [");
    for (i, b) in spec.io_bursts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"at_s\": ");
        push_f64(&mut out, b.at_s);
        write!(
            out,
            ", \"files\": {}, \"bytes_per_file\": {}}}",
            b.files, b.bytes_per_file
        )
        .expect("write to string");
    }
    out.push_str("]}");
    out
}

/// Renders one memoized run — counters, per-mode cycle shares, the system
/// power budget, and the disk report — as the `/v1/run` response body.
pub fn run_bundle(key: RunKey, bundle: &RunBundle) -> String {
    let run = &bundle.run;
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\": \"softwatt-run-v1\", \"key\": ");
    out.push_str(&run_key(key));
    write!(
        out,
        ", \"cycles\": {}, \"committed\": {}, \"user_instrs\": {}",
        run.cycles, run.committed, run.user_instrs
    )
    .expect("write to string");
    out.push_str(", \"duration_s\": ");
    push_f64(&mut out, run.duration_s);
    out.push_str(", \"ipc\": ");
    push_f64(&mut out, run.ipc());
    out.push_str(", \"modes\": {");
    for (i, mode) in Mode::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_key(&mut out, mode.label());
        let cycles = run.mode_cycles(mode);
        write!(out, "{{\"cycles\": {cycles}, \"pct\": ").expect("write to string");
        push_f64(&mut out, 100.0 * cycles as f64 / run.cycles.max(1) as f64);
        out.push('}');
    }
    out.push_str("}, \"budget\": ");
    push_budget(&mut out, &system_budget(&bundle.model, run));
    write!(
        out,
        ", \"disk\": {{\"requests\": {}, \"spinups\": {}, \"spindowns\": {}, \"energy_j\": ",
        run.disk.requests, run.disk.spinups, run.disk.spindowns
    )
    .expect("write to string");
    push_f64(&mut out, run.disk.energy_j);
    out.push_str("}}");
    out
}

/// Renders one surrogate estimate as the `/v1/run` response body at
/// `fidelity=surrogate`. Deliberately a distinct schema from the exact
/// [`run_bundle`] body: a surrogate answer carries predicted CPU power
/// and an error bound, not the exact tier's full counter detail, and a
/// client that pattern-matches on `softwatt-run-v1` never mistakes one
/// for the other.
pub fn surrogate_estimate(key: RunKey, est: &SurrogateEstimate) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"schema\": \"softwatt-surrogate-v1\", \"key\": ");
    out.push_str(&run_key(key));
    out.push_str(", \"fidelity\": \"surrogate\", \"cycles\": ");
    write!(out, "{}", est.cycles).expect("write to string");
    out.push_str(", \"duration_s\": ");
    push_f64(&mut out, est.duration_s);
    out.push_str(", \"groups\": {");
    for (i, (g, j)) in est.groups.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_key(&mut out, g.label());
        push_f64(&mut out, j);
    }
    out.push_str("}, \"total_energy_j\": ");
    push_f64(&mut out, est.total_energy_j);
    out.push_str(", \"avg_power_w\": ");
    push_f64(&mut out, est.avg_power_w);
    out.push_str(", \"disk_energy_j\": ");
    push_f64(&mut out, est.disk_energy_j);
    out.push_str(", \"error_bound_pct\": ");
    push_f64(&mut out, est.error_bound_pct);
    out.push('}');
    out
}

/// Renders one paper artifact by name (see [`FIGURES`]); `None` for an
/// unknown name. Computes through the suite memo, so repeated requests are
/// lookups.
pub fn figure(suite: &ExperimentSuite, name: &str) -> Option<String> {
    let mut out = String::with_capacity(1024);
    write!(
        out,
        "{{\"schema\": \"softwatt-figure-v1\", \"figure\": \"{name}\", \"rows\": "
    )
    .expect("write to string");
    match name {
        "validation" => {
            let v = suite.validation();
            out.push_str("{\"modeled_w\": ");
            push_f64(&mut out, v.modeled_w());
            out.push_str(", \"groups\": {");
            for (i, (g, w)) in v.breakdown.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_key(&mut out, g.label());
                push_f64(&mut out, w);
            }
            out.push_str("}}");
        }
        "fig5" | "fig7" => {
            let budget = if name == "fig5" {
                suite.fig5_budget_conventional()
            } else {
                suite.fig7_budget_lowpower()
            };
            push_budget(&mut out, &budget);
        }
        "fig6" => {
            let fig = suite.fig6_mode_power();
            out.push('{');
            for (i, mode) in Mode::ALL.into_iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_key(&mut out, mode.label());
                out.push('{');
                for (j, g) in UnitGroup::ALL.into_iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    push_key(&mut out, g.label());
                    push_f64(&mut out, fig.per_mode[mode.index()].get(g));
                }
                out.push_str(", \"total_w\": ");
                push_f64(&mut out, fig.total_w(mode));
                out.push('}');
            }
            out.push('}');
        }
        "fig9" => {
            out.push('[');
            for (i, row) in suite.fig9_disk_study().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"benchmark\": ");
                push_str_lit(&mut out, row.benchmark.name());
                out.push_str(", \"cells\": [");
                for (j, c) in row.cells.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str("{\"disk\": ");
                    push_str_lit(&mut out, c.setup.name());
                    out.push_str(", \"disk_energy_j\": ");
                    push_f64(&mut out, c.disk_energy_j);
                    write!(
                        out,
                        ", \"idle_cycles\": {}, \"total_cycles\": {}, \"spinups\": {}, \"spindowns\": {}}}",
                        c.idle_cycles, c.total_cycles, c.spinups, c.spindowns
                    )
                    .expect("write to string");
                }
                out.push_str("]}");
            }
            out.push(']');
        }
        "table2" => {
            out.push('[');
            for (i, row) in suite.table2_mode_breakdown().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"benchmark\": ");
                push_str_lit(&mut out, row.benchmark.name());
                for (field, values) in [
                    ("cycles_pct", &row.cycles_pct),
                    ("energy_pct", &row.energy_pct),
                ] {
                    out.push_str(", ");
                    push_key(&mut out, field);
                    out.push('{');
                    for (j, mode) in Mode::ALL.into_iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        push_key(&mut out, mode.label());
                        push_f64(&mut out, values[mode.index()]);
                    }
                    out.push('}');
                }
                out.push('}');
            }
            out.push(']');
        }
        "table4" => {
            out.push('[');
            for (i, row) in suite.table4_kernel_services().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"benchmark\": ");
                push_str_lit(&mut out, row.benchmark.name());
                out.push_str(", \"services\": [");
                for (j, e) in row.entries.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str("{\"service\": ");
                    push_str_lit(&mut out, e.service.name());
                    write!(
                        out,
                        ", \"invocations\": {}, \"cycles_pct\": ",
                        e.invocations
                    )
                    .expect("write to string");
                    push_f64(&mut out, e.cycles_pct);
                    out.push_str(", \"energy_pct\": ");
                    push_f64(&mut out, e.energy_pct);
                    out.push('}');
                }
                out.push_str("]}");
            }
            out.push(']');
        }
        _ => return None,
    }
    out.push('}');
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_literals_are_escaped() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\u000ad\"");
    }

    #[test]
    fn floats_render_as_json_numbers() {
        let mut s = String::new();
        push_f64(&mut s, 2.5);
        s.push(' ');
        push_f64(&mut s, 3.0);
        s.push(' ');
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "2.5 3.0 null");
    }

    #[test]
    fn unknown_figure_is_none() {
        let suite = ExperimentSuite::new(crate::SystemConfig {
            time_scale: 500_000.0,
            ..crate::SystemConfig::default()
        })
        .unwrap();
        assert!(figure(&suite, "fig42").is_none());
        // Every advertised name renders (cheap at this tiny scale thanks
        // to the memo: one trace per (benchmark, cpu) pair).
        for name in FIGURES {
            let body = figure(&suite, name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(
                body.starts_with('{') && body.ends_with('}'),
                "{name}: {body}"
            );
            assert!(body.contains("softwatt-figure-v1"), "{name}");
        }
    }
}
