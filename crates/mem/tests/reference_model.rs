//! Property tests pitting the cache and TLB against naive reference
//! models: for any access sequence, the optimized implementations must
//! produce exactly the same hit/miss behavior as an obviously-correct
//! recency-list implementation.

use proptest::prelude::*;

use softwatt_mem::{Cache, CacheGeometry, Tlb};

/// An obviously-correct set-associative LRU cache: per-set vector of tags
/// ordered most-recent-first.
struct ReferenceCache {
    geometry: CacheGeometry,
    sets: Vec<Vec<u64>>,
}

impl ReferenceCache {
    fn new(geometry: CacheGeometry) -> ReferenceCache {
        ReferenceCache {
            geometry,
            sets: vec![Vec::new(); geometry.sets() as usize],
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let set = &mut self.sets[self.geometry.set_index(addr) as usize];
        let tag = self.geometry.tag(addr);
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            set.remove(pos);
            set.insert(0, tag);
            true
        } else {
            set.insert(0, tag);
            set.truncate(self.geometry.assoc() as usize);
            false
        }
    }
}

/// An obviously-correct fully-associative LRU TLB.
struct ReferenceTlb {
    capacity: usize,
    entries: Vec<u64>, // most-recent-first
}

impl ReferenceTlb {
    fn lookup(&mut self, vpn: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|&v| v == vpn) {
            self.entries.remove(pos);
            self.entries.insert(0, vpn);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, vpn: u64) {
        if let Some(pos) = self.entries.iter().position(|&v| v == vpn) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, vpn);
        self.entries.truncate(self.capacity);
    }
}

fn small_geometries() -> impl Strategy<Value = CacheGeometry> {
    prop_oneof![
        Just(CacheGeometry::new(512, 64, 2)),
        Just(CacheGeometry::new(1024, 64, 4)),
        Just(CacheGeometry::new(2048, 32, 2)),
        Just(CacheGeometry::new(4096, 128, 1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_lru(
        geometry in small_geometries(),
        // Small address space so sets conflict often.
        addrs in prop::collection::vec(0u64..16_384, 1..400),
        writes in prop::collection::vec(any::<bool>(), 400),
    ) {
        let mut cache = Cache::new(geometry);
        let mut reference = ReferenceCache::new(geometry);
        for (i, &addr) in addrs.iter().enumerate() {
            let expected = reference.access(addr);
            let got = cache.access(addr, writes[i % writes.len()]).hit;
            prop_assert_eq!(got, expected, "access #{} to {:#x}", i, addr);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
    }

    #[test]
    fn tlb_matches_reference_lru(
        capacity in 1usize..16,
        ops in prop::collection::vec((any::<bool>(), 0u64..64), 1..300),
    ) {
        let mut tlb = Tlb::new(capacity);
        let mut reference = ReferenceTlb { capacity, entries: Vec::new() };
        for (i, &(is_insert, vpn)) in ops.iter().enumerate() {
            if is_insert {
                tlb.insert(vpn);
                reference.insert(vpn);
            } else {
                let expected = reference.lookup(vpn);
                let got = tlb.lookup(vpn);
                prop_assert_eq!(got, expected, "op #{} vpn {}", i, vpn);
            }
        }
    }

    #[test]
    fn cache_flush_restores_cold_state(
        geometry in small_geometries(),
        addrs in prop::collection::vec(0u64..8192, 1..100),
    ) {
        let mut cache = Cache::new(geometry);
        for &a in &addrs {
            cache.access(a, false);
        }
        cache.flush();
        for &a in &addrs {
            prop_assert!(!cache.probe(a), "{a:#x} survived a flush");
        }
    }
}
