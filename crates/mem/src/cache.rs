//! A set-associative cache timing model with true LRU replacement.

use crate::CacheGeometry;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    // Higher = more recently used.
    lru: u64,
}

impl Line {
    fn invalid() -> Line {
        Line {
            tag: 0,
            valid: false,
            dirty: false,
            lru: 0,
        }
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Line address of a dirty victim evicted to make room (write-back
    /// traffic), if any.
    pub writeback: Option<u64>,
}

/// A set-associative, write-back, write-allocate cache.
///
/// Stores tags only: SoftWatt needs hit/miss behavior and event counts, not
/// data. Starts cold (all lines invalid).
///
/// # Examples
///
/// ```
/// use softwatt_mem::{Cache, CacheGeometry};
///
/// let mut c = Cache::new(CacheGeometry::new(1024, 64, 2));
/// assert!(!c.access(0x40, false).hit); // cold miss
/// assert!(c.access(0x40, false).hit);  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    // All lines in one flat allocation: set `s` is the slice
    // `lines[s * assoc .. (s + 1) * assoc]`. One contiguous read per
    // lookup instead of a per-set Vec pointer chase; this is on the
    // per-fetch/per-load hot path of every simulated cycle.
    lines: Box<[Line]>,
    assoc: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cold cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Cache {
        let assoc = geometry.assoc() as usize;
        Cache {
            geometry,
            lines: vec![Line::invalid(); assoc * geometry.sets() as usize].into_boxed_slice(),
            assoc,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Accesses `addr`, allocating on miss. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        let set_index = self.geometry.set_index(addr) as usize;
        let tag = self.geometry.tag(addr);
        let tick = self.tick;
        let base = set_index * self.assoc;
        let set = &mut self.lines[base..base + self.assoc];

        // Tags are unique within a set and LRU ticks are unique per access,
        // so neither the hit scan order nor the victim choice depends on
        // slot order: outcomes are identical to the old per-set Vec model.
        let mut victim = 0;
        let mut victim_lru = u64::MAX;
        for (i, line) in set.iter_mut().enumerate() {
            if !line.valid {
                // Prefer filling an invalid way: never an eviction.
                victim = i;
                victim_lru = 0;
                continue;
            }
            if line.tag == tag {
                line.lru = tick;
                line.dirty |= write;
                self.hits += 1;
                return AccessOutcome {
                    hit: true,
                    writeback: None,
                };
            }
            if line.lru < victim_lru {
                victim = i;
                victim_lru = line.lru;
            }
        }

        self.misses += 1;
        let mut writeback = None;
        let line = &mut set[victim];
        if line.valid && line.dirty {
            let victim_addr = (line.tag * self.geometry.sets() + set_index as u64)
                * u64::from(self.geometry.line_bytes());
            writeback = Some(victim_addr);
        }
        *line = Line {
            tag,
            valid: true,
            dirty: write,
            lru: tick,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Whether the line containing `addr` is resident (no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let base = self.geometry.set_index(addr) as usize * self.assoc;
        let tag = self.geometry.tag(addr);
        self.lines[base..base + self.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the whole cache, discarding dirty state (the paper's
    /// `cacheflush` service). Returns how many lines were dropped.
    pub fn flush(&mut self) -> u64 {
        let mut dropped = 0;
        for line in &mut self.lines {
            dropped += u64::from(line.valid);
            line.valid = false;
            line.dirty = false;
        }
        dropped
    }

    /// Hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio in `[0, 1]`; `None` before any access.
    pub fn miss_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.misses as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64 B lines.
        Cache::new(CacheGeometry::new(512, 64, 2))
    }

    #[test]
    fn cold_then_warm() {
        let mut c = small();
        assert!(!c.access(0x0, false).hit);
        assert!(c.access(0x0, false).hit);
        assert!(c.access(0x3f, false).hit); // same line
        assert!(!c.access(0x40, false).hit); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        let stride = 64 * 4; // same set, different tags
        c.access(0, false);
        c.access(stride, false);
        c.access(0, false); // refresh tag 0
        c.access(2 * stride, false); // evicts `stride`
        assert!(c.probe(0));
        assert!(!c.probe(stride));
        assert!(c.probe(2 * stride));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        let stride = 64 * 4;
        c.access(0, true); // dirty
        c.access(stride, false);
        let out = c.access(2 * stride, false); // evicts dirty line 0
        assert!(!out.hit);
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        let stride = 64 * 4;
        c.access(0, false);
        c.access(stride, false);
        let out = c.access(2 * stride, false);
        assert!(out.writeback.is_none());
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        let stride = 64 * 4;
        c.access(0, false);
        c.access(0, true); // dirty via hit
        c.access(stride, false);
        let out = c.access(2 * stride, false);
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        c.access(0, false);
        c.access(64, false);
        assert_eq!(c.flush(), 2);
        assert!(!c.probe(0));
        assert!(!c.access(0, false).hit);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small();
        let stride = 64 * 4;
        c.access(0, false);
        c.access(stride, false);
        let _ = c.probe(0); // must not refresh line 0
        c.access(2 * stride, false); // LRU is line 0
        assert!(!c.probe(0));
        assert!(c.probe(stride));
    }

    #[test]
    fn miss_ratio_tracks_accesses() {
        let mut c = small();
        assert!(c.miss_ratio().is_none());
        c.access(0, false);
        c.access(0, false);
        assert!((c.miss_ratio().unwrap() - 0.5).abs() < 1e-12);
    }
}
