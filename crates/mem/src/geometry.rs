//! Cache geometry: size, line size, associativity.
//!
//! Geometry is shared between the timing model (this crate) and the
//! analytical power models (`softwatt-power`), which derive per-access
//! energies from the same numbers.

use std::fmt;

/// Size/line/associativity of one cache level.
///
/// # Examples
///
/// ```
/// use softwatt_mem::CacheGeometry;
///
/// let l1 = CacheGeometry::new(32 * 1024, 64, 2);
/// assert_eq!(l1.sets(), 256);
/// assert_eq!(l1.set_index(0), l1.set_index(64 * 256)); // wraps around
/// assert_ne!(l1.tag(0), l1.tag(64 * 256));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    line_bytes: u32,
    assoc: u32,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes`, `line_bytes`, and `assoc` are positive
    /// powers of two (line and associativity) dividing evenly into the size.
    pub fn new(size_bytes: u64, line_bytes: u32, assoc: u32) -> CacheGeometry {
        assert!(size_bytes > 0, "cache size must be positive");
        assert!(
            line_bytes > 0 && line_bytes.is_power_of_two(),
            "line size must be a positive power of two"
        );
        assert!(assoc > 0, "associativity must be positive");
        let line_capacity = size_bytes / u64::from(line_bytes);
        assert!(
            line_capacity.is_multiple_of(u64::from(assoc)) && line_capacity > 0,
            "size must be divisible into an integral number of sets"
        );
        let geometry = CacheGeometry {
            size_bytes,
            line_bytes,
            assoc,
        };
        assert!(
            geometry.sets().is_power_of_two(),
            "number of sets must be a power of two"
        );
        geometry
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Line (block) size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Set associativity.
    #[inline]
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u64 {
        self.size_bytes / u64::from(self.line_bytes) / u64::from(self.assoc)
    }

    /// Set index for an address.
    #[inline]
    pub fn set_index(&self, addr: u64) -> u64 {
        (addr / u64::from(self.line_bytes)) & (self.sets() - 1)
    }

    /// Tag for an address (line address above the index bits).
    #[inline]
    pub fn tag(&self, addr: u64) -> u64 {
        addr / u64::from(self.line_bytes) / self.sets()
    }

    /// Line-aligned address of the line containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(u64::from(self.line_bytes) - 1)
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB/{}B/{}-way",
            self.size_bytes / 1024,
            self.line_bytes,
            self.assoc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometries() {
        let l1 = CacheGeometry::new(32 * 1024, 64, 2);
        assert_eq!(l1.sets(), 256);
        let l2 = CacheGeometry::new(1024 * 1024, 128, 2);
        assert_eq!(l2.sets(), 4096);
    }

    #[test]
    fn tag_and_index_reconstruct_line() {
        let g = CacheGeometry::new(32 * 1024, 64, 2);
        let addr = 0xdead_beef;
        let line = g.line_addr(addr);
        let reconstructed =
            (g.tag(addr) * g.sets() + g.set_index(addr)) * u64::from(g.line_bytes());
        assert_eq!(reconstructed, line);
    }

    #[test]
    fn same_set_different_tag_conflicts() {
        let g = CacheGeometry::new(32 * 1024, 64, 2);
        let stride = u64::from(g.line_bytes()) * g.sets();
        assert_eq!(g.set_index(0x100), g.set_index(0x100 + stride));
        assert_ne!(g.tag(0x100), g.tag(0x100 + stride));
    }

    #[test]
    #[should_panic(expected = "line size must be a positive power of two")]
    fn rejects_non_power_of_two_line() {
        let _ = CacheGeometry::new(32 * 1024, 48, 2);
    }

    #[test]
    #[should_panic(expected = "associativity must be positive")]
    fn rejects_zero_assoc() {
        let _ = CacheGeometry::new(32 * 1024, 64, 0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            CacheGeometry::new(32 * 1024, 64, 2).to_string(),
            "32KB/64B/2-way"
        );
    }
}
