//! Memory hierarchy for the SoftWatt full-system simulator.
//!
//! Models the paper's Table 1 configuration: split 32 KB 2-way L1
//! instruction/data caches with 64 B lines, a unified 1 MB 2-way L2 with
//! 128 B lines, a 64-entry fully-associative software-managed unified TLB,
//! and a flat DRAM behind it all.
//!
//! The hierarchy is a *timing and event* model: accesses return added
//! latency and record [`softwatt_stats::UnitEvent`]s for the power
//! post-processor; no data values are stored. Caches start cold, which is
//! what produces the paper's initial memory-power spike (Figure 3).
//!
//! # Examples
//!
//! ```
//! use softwatt_mem::{MemConfig, MemHierarchy};
//! use softwatt_stats::{Clocking, StatsCollector};
//!
//! let mut mem = MemHierarchy::new(MemConfig::default());
//! let mut stats = StatsCollector::new(Clocking::default(), 1_000);
//! // Cold miss goes all the way to DRAM...
//! let cold = mem.data_access(0x1_0000, false, &mut stats);
//! // ...and the refill makes the next access to the same line a hit.
//! let warm = mem.data_access(0x1_0008, false, &mut stats);
//! assert!(cold > warm);
//! ```

pub mod cache;
pub mod geometry;
pub mod hierarchy;
pub mod tlb;

pub use cache::Cache;
pub use geometry::CacheGeometry;
pub use hierarchy::{MemConfig, MemHierarchy};
pub use tlb::Tlb;
