//! The assembled two-level memory hierarchy with TLB and DRAM timing.

use softwatt_isa::{is_kernel_addr, page_number};
use softwatt_stats::{StatsCollector, UnitEvent};

use crate::{Cache, CacheGeometry, Tlb};

/// Configuration of the memory subsystem (defaults = paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// L1 instruction cache geometry.
    pub il1: CacheGeometry,
    /// L1 data cache geometry.
    pub dl1: CacheGeometry,
    /// Unified L2 cache geometry.
    pub l2: CacheGeometry,
    /// Unified TLB entries (fully associative).
    pub tlb_entries: usize,
    /// L1 hit latency in cycles.
    pub l1_hit_cycles: u32,
    /// Additional latency for an L2 hit.
    pub l2_hit_cycles: u32,
    /// Additional latency for a DRAM access.
    pub dram_cycles: u32,
    /// Main-memory size in megabytes (bounds the synthetic address space).
    pub memory_mb: u32,
}

impl Default for MemConfig {
    /// The paper's Table 1: 32 KB/64 B/2-way split L1s, 1 MB/128 B/2-way
    /// unified L2, 64-entry TLB, 128 MB memory.
    fn default() -> Self {
        MemConfig {
            il1: CacheGeometry::new(32 * 1024, 64, 2),
            dl1: CacheGeometry::new(32 * 1024, 64, 2),
            l2: CacheGeometry::new(1024 * 1024, 128, 2),
            tlb_entries: 64,
            l1_hit_cycles: 2,
            l2_hit_cycles: 12,
            dram_cycles: 60,
            memory_mb: 128,
        }
    }
}

/// The memory hierarchy: split L1s over a unified L2 over DRAM, plus the
/// software-managed TLB.
///
/// All methods record the [`UnitEvent`]s the power models consume and
/// return access latency in cycles. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    config: MemConfig,
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    tlb: Tlb,
}

impl MemHierarchy {
    /// Creates a cold hierarchy.
    pub fn new(config: MemConfig) -> MemHierarchy {
        MemHierarchy {
            config,
            il1: Cache::new(config.il1),
            dl1: Cache::new(config.dl1),
            l2: Cache::new(config.l2),
            tlb: Tlb::new(config.tlb_entries),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Fetches the instruction at `pc`. Returns the latency in cycles
    /// *beyond* the pipelined L1 hit (0 for a hit).
    pub fn fetch(&mut self, pc: u64, stats: &mut StatsCollector) -> u32 {
        stats.record(UnitEvent::IcacheAccess);
        let out = self.il1.access(pc, false);
        if out.hit {
            return 0;
        }
        stats.record(UnitEvent::IcacheMiss);
        self.l2_refill(pc, false, UnitEvent::L2AccessI, stats)
    }

    /// Performs a data access. Returns the total latency in cycles
    /// (`l1_hit_cycles` for a hit).
    pub fn data_access(&mut self, addr: u64, write: bool, stats: &mut StatsCollector) -> u32 {
        stats.record(if write {
            UnitEvent::DcacheWrite
        } else {
            UnitEvent::DcacheRead
        });
        let out = self.dl1.access(addr, write);
        if out.hit {
            return self.config.l1_hit_cycles;
        }
        stats.record(UnitEvent::DcacheMiss);
        if let Some(victim_addr) = out.writeback {
            // Dirty L1 victim written back into L2.
            stats.record(UnitEvent::L2AccessD);
            let wb = self.l2.access(victim_addr, true);
            if wb.writeback.is_some() {
                stats.record(UnitEvent::MemAccess);
            }
        }
        self.config.l1_hit_cycles + self.l2_refill(addr, write, UnitEvent::L2AccessD, stats)
    }

    fn l2_refill(
        &mut self,
        addr: u64,
        write: bool,
        l2_event: UnitEvent,
        stats: &mut StatsCollector,
    ) -> u32 {
        stats.record(l2_event);
        let out = self.l2.access(addr, write);
        if out.writeback.is_some() {
            stats.record(UnitEvent::MemAccess);
        }
        if out.hit {
            self.config.l2_hit_cycles
        } else {
            stats.record(UnitEvent::L2Miss);
            stats.record(UnitEvent::MemAccess);
            self.config.l2_hit_cycles + self.config.dram_cycles
        }
    }

    /// Translates a data address through the TLB. Kernel (`kseg`) addresses
    /// bypass translation entirely, as on MIPS. Returns `false` on a TLB
    /// miss, in which case the OS must run `utlb` and call
    /// [`MemHierarchy::tlb_insert`].
    pub fn translate(&mut self, vaddr: u64, stats: &mut StatsCollector) -> bool {
        if is_kernel_addr(vaddr) {
            return true;
        }
        stats.record(UnitEvent::TlbAccess);
        if self.tlb.lookup(page_number(vaddr)) {
            true
        } else {
            stats.record(UnitEvent::TlbMiss);
            false
        }
    }

    /// Installs a translation (the `utlb` software refill).
    pub fn tlb_insert(&mut self, vaddr: u64, stats: &mut StatsCollector) {
        stats.record(UnitEvent::TlbWrite);
        self.tlb.insert(page_number(vaddr));
    }

    /// Invalidates both L1 caches (the `cacheflush` service). Returns how
    /// many lines were dropped.
    pub fn flush_l1(&mut self) -> u64 {
        self.il1.flush() + self.dl1.flush()
    }

    /// L1 instruction cache (for inspection in tests/reports).
    pub fn il1(&self) -> &Cache {
        &self.il1
    }

    /// L1 data cache.
    pub fn dl1(&self) -> &Cache {
        &self.dl1
    }

    /// Unified L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The TLB.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softwatt_stats::Clocking;

    fn stats() -> StatsCollector {
        StatsCollector::new(Clocking::default(), 1_000_000)
    }

    #[test]
    fn fetch_hit_after_cold_miss() {
        let mut m = MemHierarchy::new(MemConfig::default());
        let mut s = stats();
        let cold = m.fetch(0x1000, &mut s);
        assert_eq!(
            cold,
            m.config.l2_hit_cycles + m.config.dram_cycles,
            "cold miss goes to DRAM"
        );
        assert_eq!(m.fetch(0x1004, &mut s), 0, "same line now hits");
        let t = s.totals().combined();
        assert_eq!(t.get(UnitEvent::IcacheAccess), 2);
        assert_eq!(t.get(UnitEvent::IcacheMiss), 1);
        assert_eq!(t.get(UnitEvent::L2AccessI), 1);
        assert_eq!(t.get(UnitEvent::MemAccess), 1);
    }

    #[test]
    fn data_l2_hit_is_cheaper_than_dram() {
        let cfg = MemConfig::default();
        let mut m = MemHierarchy::new(cfg);
        let mut s = stats();
        let cold = m.data_access(0x2000, false, &mut s);
        // Evict from tiny L1? L1 is 32KB — instead touch a conflicting line:
        // same L1 set, different tag, maps to a different L2 set most likely
        // but the original stays in L2.
        let l1_stride = u64::from(cfg.dl1.line_bytes()) * cfg.dl1.sets();
        m.data_access(0x2000 + l1_stride, false, &mut s);
        m.data_access(0x2000 + 2 * l1_stride, false, &mut s); // evict 0x2000 from L1
        let refetch = m.data_access(0x2000, false, &mut s);
        assert_eq!(
            cold,
            cfg.l1_hit_cycles + cfg.l2_hit_cycles + cfg.dram_cycles
        );
        assert_eq!(
            refetch,
            cfg.l1_hit_cycles + cfg.l2_hit_cycles,
            "L2 still holds it"
        );
    }

    #[test]
    fn writes_mark_lines_dirty_and_produce_memory_traffic_eventually() {
        let cfg = MemConfig::default();
        let mut m = MemHierarchy::new(cfg);
        let mut s = stats();
        // Write a line, then evict it through conflicting accesses.
        m.data_access(0x4000, true, &mut s);
        let l1_stride = u64::from(cfg.dl1.line_bytes()) * cfg.dl1.sets();
        m.data_access(0x4000 + l1_stride, false, &mut s);
        m.data_access(0x4000 + 2 * l1_stride, false, &mut s);
        let t = s.totals().combined();
        assert!(
            t.get(UnitEvent::L2AccessD) >= 3,
            "writeback adds L2 traffic"
        );
    }

    #[test]
    fn kernel_addresses_bypass_tlb() {
        let mut m = MemHierarchy::new(MemConfig::default());
        let mut s = stats();
        assert!(m.translate(0x8000_1234, &mut s));
        let t = s.totals().combined();
        assert_eq!(t.get(UnitEvent::TlbAccess), 0);
    }

    #[test]
    fn user_addresses_miss_then_hit_after_insert() {
        let mut m = MemHierarchy::new(MemConfig::default());
        let mut s = stats();
        assert!(!m.translate(0x0010_0000, &mut s));
        m.tlb_insert(0x0010_0000, &mut s);
        assert!(m.translate(0x0010_0000, &mut s));
        let t = s.totals().combined();
        assert_eq!(t.get(UnitEvent::TlbAccess), 2);
        assert_eq!(t.get(UnitEvent::TlbMiss), 1);
        assert_eq!(t.get(UnitEvent::TlbWrite), 1);
    }

    #[test]
    fn flush_l1_forces_refetch_but_l2_still_holds() {
        let cfg = MemConfig::default();
        let mut m = MemHierarchy::new(cfg);
        let mut s = stats();
        m.fetch(0x1000, &mut s);
        assert!(m.flush_l1() >= 1);
        let lat = m.fetch(0x1000, &mut s);
        assert_eq!(lat, cfg.l2_hit_cycles, "refill from L2, not DRAM");
    }
}
