//! The unified, fully-associative, software-managed TLB.
//!
//! MIPS TLBs are software-managed: a miss traps to the OS (`utlb` handler),
//! which performs the translation and refills an entry. That handler is the
//! single largest kernel activity in the paper's workloads (Table 4), so
//! TLB behavior matters a great deal to the kernel power profile.

/// A fully-associative TLB with true LRU replacement, tracking virtual page
/// numbers only (the simulation has no physical addresses).
///
/// # Examples
///
/// ```
/// use softwatt_mem::Tlb;
///
/// let mut tlb = Tlb::new(4);
/// assert!(!tlb.lookup(7)); // cold miss — OS would run utlb now
/// tlb.insert(7);
/// assert!(tlb.lookup(7));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    // (vpn, last-use tick); linear scan is fine at 64 entries.
    entries: Vec<(u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of entries the TLB can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a virtual page number, updating LRU state on hit.
    ///
    /// Hits are swapped to the front of the entry list so hot pages are
    /// found in the first few probes. Entry order is not observable: page
    /// numbers are unique (the hit scan finds the same entry anywhere) and
    /// use ticks are unique (the eviction minimum is position-independent),
    /// so hits, misses, and victims are identical to an unordered scan.
    pub fn lookup(&mut self, vpn: u64) -> bool {
        self.tick += 1;
        if let Some(pos) = self.entries.iter().position(|(v, _)| *v == vpn) {
            self.entries[pos].1 = self.tick;
            self.entries.swap(0, pos);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts a translation (the software refill), evicting the LRU entry
    /// if full. Inserting an already-present page refreshes it.
    pub fn insert(&mut self, vpn: u64) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.tick;
            return;
        }
        if self.entries.len() == self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
                .expect("full TLB has a victim");
            self.entries.swap_remove(victim);
        }
        self.entries.push((vpn, self.tick));
    }

    /// Drops all translations (context switch / flush).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_insert_then_hit() {
        let mut t = Tlb::new(2);
        assert!(!t.lookup(1));
        t.insert(1);
        assert!(t.lookup(1));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = Tlb::new(2);
        t.insert(1);
        t.insert(2);
        assert!(t.lookup(1)); // refresh 1; LRU is now 2
        t.insert(3); // evicts 2
        assert!(t.lookup(1));
        assert!(!t.lookup(2));
        assert!(t.lookup(3));
    }

    #[test]
    fn duplicate_insert_does_not_grow() {
        let mut t = Tlb::new(2);
        t.insert(1);
        t.insert(1);
        t.insert(2);
        assert!(t.lookup(1));
        assert!(t.lookup(2));
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = Tlb::new(4);
        t.insert(1);
        t.insert(2);
        t.flush();
        assert!(!t.lookup(1));
        assert!(!t.lookup(2));
    }

    #[test]
    #[should_panic(expected = "TLB capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = Tlb::new(0);
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut t = Tlb::new(8);
        for vpn in 0..8 {
            t.insert(vpn);
        }
        for round in 0..3 {
            for vpn in 0..8 {
                assert!(t.lookup(vpn), "round {round} vpn {vpn}");
            }
        }
    }
}
