//! End-to-end checks of the observability CLI surface on the `simulate`
//! binary: `--metrics-out` writes a parseable `softwatt-obs-v1` document
//! with the expected top-level keys, and the CLI boundary rejects the
//! inputs the library now refuses to guess about (empty benchmark
//! selections, bad log levels).

use std::process::Command;

fn simulate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simulate"))
}

#[test]
fn metrics_out_writes_schema_v1_json() {
    let out = std::env::temp_dir().join(format!("softwatt-metrics-{}.json", std::process::id()));
    let status = simulate()
        .args(["run", "jess", "--scale", "200000", "--metrics"])
        .args(["--metrics-out", out.to_str().unwrap()])
        .output()
        .expect("run simulate");
    assert!(
        status.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&status.stderr)
    );

    let json = std::fs::read_to_string(&out).expect("metrics file written");
    std::fs::remove_file(&out).ok();
    for key in [
        "\"schema\": \"softwatt-obs-v1\"",
        "\"enabled\": true",
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // A real run landed real metrics: one full simulation, disk activity.
    assert!(json.contains("\"sim.full_runs\": 1"), "{json}");
    assert!(json.contains("\"disk.requests\""), "{json}");
    assert!(json.contains("\"stats.samples_emitted\""), "{json}");

    // --metrics printed the human table to stderr, not stdout.
    let stderr = String::from_utf8_lossy(&status.stderr);
    assert!(stderr.contains("sim.full_runs"), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&status.stdout);
    assert!(!stdout.contains("sim.full_runs"), "stdout: {stdout}");
}

#[test]
fn empty_benchmark_selection_is_rejected_at_the_cli() {
    for spec in [",", ",,"] {
        let out = simulate()
            .args(["run", spec])
            .output()
            .expect("run simulate");
        assert!(!out.status.success(), "{spec:?} should be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("empty benchmark selection"),
            "{spec:?}: {stderr}"
        );
    }
}

#[test]
fn bad_log_level_is_rejected() {
    let out = simulate()
        .args(["run", "jess", "--log-level", "loud"])
        .output()
        .expect("run simulate");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown log level"), "{stderr}");
}
