//! Microbenches for the simulation core's hot loops: the per-cycle stats
//! substrate, the MXS issue machinery, the L1 cache lookup, and the
//! O(segments) trace replay. These isolate the paths the full-system
//! throughput bench (`simulator_throughput`) exercises in aggregate, so a
//! regression can be localized without re-profiling the whole pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use softwatt::{Benchmark, CpuModel, Simulator, SystemConfig};
use softwatt_cpu::{Cpu, MxsConfig, MxsCpu, VecSource};
use softwatt_isa::mixgen::{MixGenerator, MixSpec};
use softwatt_mem::{Cache, CacheGeometry, MemConfig, MemHierarchy};
use softwatt_stats::{Clocking, Mode, StatsCollector, UnitEvent};

fn bench_stats_collector(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats_collector");

    // One window-sized burst per iteration so the sample-emit cost is
    // amortized at its real per-cycle rate rather than excluded.
    const CYCLES: u64 = 4096;
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("record_plus_tick", |b| {
        let mut stats = StatsCollector::new(Clocking::default(), 512);
        stats.set_mode(Mode::User);
        b.iter(|| {
            for _ in 0..CYCLES {
                stats.record(UnitEvent::AluOp);
                stats.record(UnitEvent::IcacheAccess);
                stats.tick();
            }
            std::hint::black_box(stats.cycle())
        });
    });
    group.bench_function("record_n_plus_tick_n", |b| {
        let mut stats = StatsCollector::new(Clocking::default(), 512);
        stats.set_mode(Mode::User);
        b.iter(|| {
            stats.record_n(UnitEvent::AluOp, CYCLES);
            stats.record_n(UnitEvent::IcacheAccess, CYCLES);
            stats.tick_n(CYCLES);
            std::hint::black_box(stats.cycle())
        });
    });
    group.finish();
}

fn bench_mxs_cycle(c: &mut Criterion) {
    // The MXS pipeline (dispatch/wakeup/issue/commit) on a compute-bound
    // mix: long dependence chains keep the wakeup lists busy, which is
    // exactly the structure the ready-list issue stage exists for.
    const CYCLES: u64 = 8192;
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let mut gen = MixGenerator::new(MixSpec::compute_bound(0x0040_0000, 0x1000_0000));
    let instrs: Vec<_> = (0..4 * CYCLES)
        .map(|_| gen.next_instr_with(&mut rng))
        .collect();

    let mut group = c.benchmark_group("mxs_pipeline");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("cycle_compute_bound", |b| {
        b.iter(|| {
            let mut cpu = MxsCpu::new(MxsConfig::default());
            let mut source = VecSource::new(instrs.clone());
            let mut mem = MemHierarchy::new(MemConfig::default());
            let mut stats = StatsCollector::new(Clocking::default(), 100_000);
            stats.set_mode(Mode::User);
            for _ in 0..CYCLES {
                cpu.cycle(&mut source, &mut mem, &mut stats);
                stats.tick();
            }
            std::hint::black_box(cpu.committed_instructions())
        });
    });
    group.finish();
}

fn bench_cache_lookup(c: &mut Criterion) {
    // Paper-configuration L1 D-cache, hit-heavy address stream with a
    // conflict tail: the flat-array probe path plus occasional refills.
    const ACCESSES: u64 = 4096;
    let geometry = CacheGeometry::new(32 * 1024, 32, 2);
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(ACCESSES));
    group.bench_function("l1_access", |b| {
        let mut cache = Cache::new(geometry);
        b.iter(|| {
            for i in 0..ACCESSES {
                // 8 KiB working set (hits) with every 16th access striding
                // across sets far enough to evict (misses + writebacks).
                let addr = if i % 16 == 0 {
                    0x0100_0000 + i * 4099 * 32
                } else {
                    (i * 24) % 8192
                };
                cache.access(addr, i % 4 == 0);
            }
            std::hint::black_box(cache.hits())
        });
    });
    group.finish();
}

fn bench_trace_replay(c: &mut Criterion) {
    // The O(segments + samples) replay against a real captured trace: the
    // path every non-conventional disk policy in the paper grid takes.
    let config = SystemConfig {
        cpu: CpuModel::Mxs,
        time_scale: 40_000.0,
        ..SystemConfig::default()
    };
    let sim = Simulator::new(config).expect("valid");
    let (run, trace) = sim.run_benchmark_traced(Benchmark::Jess);
    let mut group = c.benchmark_group("replay");
    group.throughput(Throughput::Elements(run.cycles));
    group.bench_function("jess_trace", |b| {
        b.iter(|| std::hint::black_box(sim.replay_trace(&trace).cycles));
    });
    group.finish();
}

criterion_group!(
    hot_paths,
    bench_stats_collector,
    bench_mxs_cycle,
    bench_cache_lookup,
    bench_trace_replay
);
criterion_main!(hot_paths);
