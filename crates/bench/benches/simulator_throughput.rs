//! Simulator throughput benches: simulated cycles per second of host time
//! for each CPU model, and the cost of the power post-processing pass.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use softwatt::{Benchmark, CpuModel, PowerModel, Simulator, SystemConfig};

fn config(cpu: CpuModel) -> SystemConfig {
    SystemConfig {
        cpu,
        time_scale: 40_000.0,
        ..SystemConfig::default()
    }
}

fn measured_cycles(cpu: CpuModel) -> u64 {
    Simulator::new(config(cpu))
        .expect("valid")
        .run_benchmark(Benchmark::Jess)
        .cycles
}

fn bench_cpu_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_system_simulation");
    group.sample_size(10);
    for cpu in [CpuModel::Mxs, CpuModel::MxsSingleIssue, CpuModel::Mipsy] {
        group.throughput(Throughput::Elements(measured_cycles(cpu)));
        group.bench_function(format!("jess_{}", cpu.label()), |b| {
            let sim = Simulator::new(config(cpu)).expect("valid");
            b.iter(|| std::hint::black_box(sim.run_benchmark(Benchmark::Jess).cycles));
        });
    }
    group.finish();
}

fn bench_post_processing(c: &mut Criterion) {
    // Post-processing is the paper's headline methodology claim: no
    // simulation slowdown, all power math after the fact. Measure it alone.
    let cfg = config(CpuModel::Mxs);
    let run = Simulator::new(cfg.clone())
        .expect("valid")
        .run_benchmark(Benchmark::Jess);
    let model = PowerModel::new(&cfg.power_params());
    let mut group = c.benchmark_group("power_post_processing");
    group.throughput(Throughput::Elements(run.log.samples().len() as u64));
    group.bench_function("profile_from_log", |b| {
        b.iter(|| std::hint::black_box(model.profile(&run.log).points.len()));
    });
    group.bench_function("mode_table_from_log", |b| {
        b.iter(|| std::hint::black_box(model.mode_table(&run.log).total_energy_j()));
    });
    group.finish();
}

criterion_group!(throughput, bench_cpu_models, bench_post_processing);
criterion_main!(throughput);
