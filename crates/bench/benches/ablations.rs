//! Ablation benches for the design choices called out in `DESIGN.md` §7:
//!
//! - sampling granularity: simulation cost vs. log resolution;
//! - the paper's §3.3 idle fast-forwarding during disk waits;
//! - the paper's §3.3 claim that kernel energy can be estimated from
//!   invocation counts times mean per-invocation energy within ~10% —
//!   reported here as a measured estimation error, benched as the cost of
//!   the estimator versus full attribution.

use criterion::{criterion_group, criterion_main, Criterion};

use softwatt::{Benchmark, IdleHandling, Simulator, SystemConfig};
use softwatt_os::KernelService;

fn base_config() -> SystemConfig {
    SystemConfig {
        time_scale: 40_000.0,
        ..SystemConfig::default()
    }
}

fn bench_sample_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_sample_interval");
    group.sample_size(10);
    for interval in [200u64, 2_000, 20_000] {
        group.bench_function(format!("interval_{interval}"), |b| {
            let sim = Simulator::new(SystemConfig {
                sample_interval_cycles: interval,
                ..base_config()
            })
            .expect("valid");
            b.iter(|| std::hint::black_box(sim.run_benchmark(Benchmark::Db).cycles));
        });
    }
    group.finish();
}

fn bench_idle_fastforward(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_idle_fastforward");
    group.sample_size(10);
    for (label, idle) in [
        ("simulate_idle", IdleHandling::Simulate),
        ("fast_forward", IdleHandling::FastForward),
        ("analytic", IdleHandling::Analytic),
    ] {
        group.bench_function(label, |b| {
            let sim = Simulator::new(SystemConfig {
                idle,
                ..base_config()
            })
            .expect("valid");
            // jess has the largest idle share (class loading); the win is
            // bounded by that share, mirroring the paper's observation.
            b.iter(|| std::hint::black_box(sim.run_benchmark(Benchmark::Jess).cycles));
        });
    }
    group.finish();
}

fn bench_kernel_estimate(c: &mut Criterion) {
    // First report the estimation error the paper quotes (~10%): kernel
    // energy from counts x mean per-invocation energy, versus the full
    // per-invocation attribution.
    let sim = Simulator::new(base_config()).expect("valid");
    let run = sim.run_benchmark(Benchmark::Jack);
    let aggs = run.services.aggregates();
    let full: f64 = KernelService::ALL
        .iter()
        .filter_map(|s| aggs.get(&s.id()))
        .map(|a| a.energy_sum_j)
        .sum();
    let estimated: f64 = KernelService::ALL
        .iter()
        .filter_map(|s| aggs.get(&s.id()))
        .map(|a| a.invocations as f64 * a.mean_energy_j().unwrap_or(0.0))
        .sum();
    // Mean-based reconstruction is exact by construction; the interesting
    // estimator uses a *global* per-service mean from a different seed.
    let other = Simulator::new(SystemConfig {
        seed: 0x0DD5,
        ..base_config()
    })
    .expect("valid")
    .run_benchmark(Benchmark::Jack);
    let other_aggs = other.services.aggregates();
    let cross_estimate: f64 = KernelService::ALL
        .iter()
        .filter_map(|s| {
            let n = aggs.get(&s.id())?.invocations as f64;
            let mean = other_aggs.get(&s.id())?.mean_energy_j()?;
            Some(n * mean)
        })
        .sum();
    eprintln!(
        "kernel-energy estimate: full {full:.3e} J, same-run reconstruction {estimated:.3e} J, \
         cross-seed estimate {cross_estimate:.3e} J ({:+.1}% error; paper claims ~10%)",
        100.0 * (cross_estimate - full) / full
    );

    let mut group = c.benchmark_group("ablate_kernel_estimate");
    group.bench_function("estimator_from_counts", |b| {
        b.iter(|| {
            let e: f64 = KernelService::ALL
                .iter()
                .filter_map(|s| {
                    let a = aggs.get(&s.id())?;
                    Some(a.invocations as f64 * a.mean_energy_j()?)
                })
                .sum();
            std::hint::black_box(e)
        })
    });
    group.finish();
}

criterion_group!(
    ablations,
    bench_sample_interval,
    bench_idle_fastforward,
    bench_kernel_estimate
);
criterion_main!(ablations);
