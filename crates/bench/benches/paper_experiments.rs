//! One Criterion bench per paper artifact: each target regenerates the
//! corresponding table or figure end-to-end (simulation + post-processing).
//!
//! Benches run at a compressed time scale so a Criterion sample stays
//! tractable; the `experiments` binary regenerates the artifacts at the
//! reporting scale.

use criterion::{criterion_group, criterion_main, Criterion};

use softwatt::experiments::ExperimentSuite;
use softwatt::SystemConfig;

/// A suite at a bench-friendly (heavily compressed) time scale. Each bench
/// builds a fresh suite so memoization never hides the work being timed.
fn fresh_suite() -> ExperimentSuite {
    ExperimentSuite::new(SystemConfig {
        time_scale: 40_000.0,
        ..SystemConfig::default()
    })
    .expect("valid config")
}

fn bench_validation(c: &mut Criterion) {
    c.bench_function("v1_validation_max_power", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.validation().modeled_w())
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_disk_modes", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.disk_modes().len())
        })
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_jess_memory_profile", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            let profiles = suite.fig3_jess_memory();
            std::hint::black_box(profiles.mipsy.avg_memory_w())
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_jess_processor_profile", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.fig4_jess_processor().avg_processor_w())
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_budget_conventional", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.fig5_budget_conventional().disk_pct())
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_mode_power", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.fig6_mode_power().total_w(softwatt::Mode::User))
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_budget_lowpower", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.fig7_budget_lowpower().disk_pct())
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_service_power", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.fig8_service_power().len())
        })
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_disk_study", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.fig9_disk_study().len())
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_mode_breakdown", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.table2_mode_breakdown().len())
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_cache_refs", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.table3_cache_refs().len())
        })
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4_kernel_services", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.table4_kernel_services().len())
        })
    });
}

fn bench_table5(c: &mut Criterion) {
    c.bench_function("table5_service_variation", |b| {
        b.iter(|| {
            let suite = fresh_suite();
            std::hint::black_box(suite.table5_service_variation().len())
        })
    });
}

fn configured() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = paper_experiments;
    config = configured();
    targets = bench_validation, bench_fig2, bench_fig3, bench_fig4, bench_fig5,
        bench_fig6, bench_fig7, bench_fig8, bench_fig9, bench_table2,
        bench_table3, bench_table4, bench_table5
}
criterion_main!(paper_experiments);
