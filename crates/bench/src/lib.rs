//! Benchmark harness for the SoftWatt reproduction.
//!
//! This crate carries no library code of its own; it hosts
//!
//! - the `experiments` binary, which regenerates every table and figure of
//!   the paper and prints paper-vs-measured comparisons (the source of
//!   `EXPERIMENTS.md`), and
//! - the Criterion benches: `paper_experiments` (one bench per paper
//!   artifact), `simulator_throughput` (cycles/second of the machine
//!   models), and `ablations` (the design-choice studies listed in
//!   `DESIGN.md` §7).
//!
//! Run `cargo run --release -p softwatt-bench --bin experiments` for the
//! full paper regeneration, or `cargo bench` for the timed harness.
