//! Benchmark harness for the SoftWatt reproduction.
//!
//! This crate carries no library code of its own; it hosts
//!
//! - the `experiments` binary, which regenerates every table and figure of
//!   the paper and prints paper-vs-measured comparisons (the source of
//!   `EXPERIMENTS.md`), and
//! - the Criterion benches: `paper_experiments` (one bench per paper
//!   artifact), `simulator_throughput` (cycles/second of the machine
//!   models), and `ablations` (the design-choice studies listed in
//!   `DESIGN.md` §7).
//!
//! Run `cargo run --release -p softwatt-bench --bin experiments` for the
//! full paper regeneration, or `cargo bench` for the timed harness.
//!
//! The one piece of shared library code is [`ObsFlags`]: the observability
//! command-line surface (`--metrics`, `--metrics-out FILE`,
//! `--log-level LEVEL`) every binary exposes uniformly.

use std::io::Write as _;

/// Parses the value of a positive-count flag (`--jobs N`, `--workers N`,
/// `--queue-depth N`, ...): a strictly positive integer.
///
/// Shared by every binary so the flags behave — and complain —
/// identically; `what` names the quantity in the error message
/// (e.g. `"thread count"`).
///
/// # Errors
///
/// Returns `"{flag} needs a positive {what}"` when the value is absent,
/// unparsable, or zero.
pub fn parse_positive_count(
    flag: &str,
    value: Option<String>,
    what: &str,
) -> Result<usize, String> {
    value
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{flag} needs a positive {what}"))
}

/// Like [`parse_positive_count`], but also accepts the literal `auto`,
/// which maps to the machine's available parallelism (so `--jobs auto`
/// means "use every core" on every binary uniformly).
///
/// # Errors
///
/// Returns `"{flag} needs a positive {what} or \"auto\""` when the value
/// is absent, unparsable, or zero.
pub fn parse_count_or_auto(flag: &str, value: Option<String>, what: &str) -> Result<usize, String> {
    if value.as_deref() == Some("auto") {
        return Ok(auto_parallelism());
    }
    parse_positive_count(flag, value, what)
        .map_err(|_| format!("{flag} needs a positive {what} or \"auto\""))
}

/// The parallelism `auto` resolves to: `std::thread::available_parallelism`,
/// falling back to 1 when the platform cannot report it.
pub fn auto_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves the persistent trace-cache directory: an explicit
/// `--trace-cache DIR` beats the `SOFTWATT_TRACE_CACHE` environment
/// variable; an empty value for either means "no cache".
pub fn trace_cache_dir(flag: Option<String>) -> Option<String> {
    flag.or_else(|| std::env::var("SOFTWATT_TRACE_CACHE").ok())
        .filter(|v| !v.is_empty())
}

/// Opens the [`softwatt::TraceStore`] for [`trace_cache_dir`]'s resolution,
/// if any.
///
/// # Errors
///
/// Returns a message when the directory cannot be created or opened.
pub fn open_trace_store(flag: Option<String>) -> Result<Option<softwatt::TraceStore>, String> {
    trace_cache_dir(flag)
        .map(|dir| {
            softwatt::TraceStore::open(&dir)
                .map_err(|e| format!("cannot open trace cache {dir}: {e}"))
        })
        .transpose()
}

/// The observability flags shared by `experiments`, `simulate`, and
/// `bench_simulator`.
///
/// Parse with [`ObsFlags::try_parse`] inside the binary's flag loop, call
/// [`ObsFlags::activate`] once parsing is done (this is what flips the
/// global `softwatt-obs` switch — metrics stay disabled, and therefore
/// ~free, unless one of the flags asked for them), and call
/// [`ObsFlags::finish`] after the work to emit the requested outputs.
#[derive(Debug, Default)]
pub struct ObsFlags {
    /// `--metrics`: print the human summary table to stderr at exit.
    pub metrics: bool,
    /// `--metrics-out FILE`: write the `softwatt-obs-v1` JSON document.
    pub metrics_out: Option<String>,
    /// `--log-level LEVEL`: stderr event-log threshold.
    pub log_level: Option<softwatt_obs::Level>,
}

impl ObsFlags {
    /// Usage text fragment describing the shared flags.
    pub const USAGE: &'static str =
        "[--metrics] [--metrics-out FILE] [--log-level off|error|warn|info|debug|trace]";

    /// Tries to consume `flag` as an observability flag, pulling a value
    /// from `next` when the flag takes one. Returns `Ok(false)` when the
    /// flag is not an observability flag (the caller handles it).
    ///
    /// # Errors
    ///
    /// Returns a message when a value is missing or unparsable.
    pub fn try_parse(
        &mut self,
        flag: &str,
        mut next: impl FnMut() -> Option<String>,
    ) -> Result<bool, String> {
        match flag {
            "--metrics" => {
                self.metrics = true;
                Ok(true)
            }
            "--metrics-out" => {
                self.metrics_out = Some(next().ok_or("--metrics-out needs a file path")?);
                Ok(true)
            }
            "--log-level" => {
                let value = next().ok_or("--log-level needs a level")?;
                self.log_level = softwatt_obs::Level::parse(&value).ok_or_else(|| {
                    format!("unknown log level {value} (off|error|warn|info|debug|trace)")
                })?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Applies the parsed flags to the global observability state. The
    /// registry is enabled by any observability flag — `--log-level` too,
    /// since timing-derived events read their spans — but stays off (and
    /// ~free) when none are given.
    pub fn activate(&self) {
        softwatt_obs::set_log_level(self.log_level);
        if self.wants_metrics() || self.log_level.is_some() {
            softwatt_obs::set_enabled(true);
            softwatt_obs::reset_metrics();
        }
    }

    /// Whether any flag requested metric collection.
    pub fn wants_metrics(&self) -> bool {
        self.metrics || self.metrics_out.is_some()
    }

    /// Emits the requested outputs: the human table to stderr and/or the
    /// JSON document to `--metrics-out`.
    ///
    /// # Errors
    ///
    /// Returns a message when the output file cannot be written.
    pub fn finish(&self) -> Result<(), String> {
        if !self.wants_metrics() {
            return Ok(());
        }
        if self.metrics {
            eprint!("{}", softwatt_obs::summary_table());
        }
        if let Some(path) = &self.metrics_out {
            let json = softwatt_obs::to_json();
            std::fs::File::create(path)
                .and_then(|mut f| f.write_all(json.as_bytes()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote metrics to {path}");
        }
        Ok(())
    }
}
