//! Command-line front end for the simulator — the paper's Figure 1
//! pipeline as a tool: run a workload, write the simulation log file,
//! post-process a log into power numbers.
//!
//! ```text
//! simulate run <benchmark> [--cpu mxs|mxs1|mipsy] [--disk conv|idle|standby2|standby4|sleep]
//!               [--scale N] [--seed N] [--log FILE] [--record FILE] [--replay FILE]
//! simulate post <logfile>
//! ```
//!
//! `--record` captures the user instruction stream as a binary trace;
//! `--replay` substitutes a previously recorded trace for the generator
//! (the benchmark name still supplies the OS-side configuration), enabling
//! trace-driven machine comparisons.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use softwatt::budget::{system_budget, SystemBudget};
use softwatt::{
    Benchmark, CpuModel, DiskConfig, DiskPolicy, Mode, PowerModel, RunResult, SimLog, Simulator,
    SystemConfig,
};
use softwatt_bench::ObsFlags;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("post") => cmd_post(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  simulate run <benchmark>[,<benchmark>...] [--cpu mxs|mxs1|mipsy]
                [--disk conv|idle|standby2|standby4|sleep] [--scale N] [--seed N]
                [--jobs N|auto] [--trace-cache DIR] [--log FILE]
                [--record FILE] [--replay FILE]
                [--metrics] [--metrics-out FILE] [--log-level LEVEL]
  simulate run --spec FILE [--cpu ...] [--disk ...] [--scale N] [--seed N]
                [--trace-cache DIR] [--log FILE] [...]
  simulate post <logfile> [--metrics] [--metrics-out FILE] [--log-level LEVEL]

benchmarks: compress jess db javac mtrt jack (or 'all');
--spec FILE runs a user-defined workload from a softwatt-spec-v1 JSON
file instead of a canned benchmark (same validation gate as the HTTP
surface; see docs/example_spec.json);
--jobs N simulates a multi-benchmark list on N threads (results print
in list order either way); --trace-cache DIR (or SOFTWATT_TRACE_CACHE)
reuses full simulations across processes via the persistent trace store
and forces analytic idle handling (the mode traces are captured under);
--metrics/--metrics-out/--log-level report observability data on
stderr / to a JSON file";

fn cmd_run(args: &[String]) -> Result<(), String> {
    // The selection is positional; a leading flag (e.g. `--spec`) means
    // there is no canned-benchmark selection at all.
    let (selection, flag_args) = match args.first() {
        None => return Err(format!("missing benchmark\n{USAGE}")),
        Some(s) if s.starts_with("--") => (None, args),
        Some(s) => (Some(s.as_str()), &args[1..]),
    };
    let benchmarks: Vec<Benchmark> = match selection {
        Some("all") => Benchmark::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .filter(|name| !name.is_empty())
            .map(|name| {
                Benchmark::from_name(name)
                    .ok_or_else(|| format!("unknown benchmark {name}\n{USAGE}"))
            })
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };

    let mut config = SystemConfig {
        time_scale: 4000.0,
        ..SystemConfig::default()
    };
    let mut log_path: Option<String> = None;
    let mut record_path: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut trace_cache: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut jobs = 1usize;
    let mut obs = ObsFlags::default();
    let mut it = flag_args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--cpu" => {
                config.cpu = match value()?.as_str() {
                    "mxs" => CpuModel::Mxs,
                    "mxs1" => CpuModel::MxsSingleIssue,
                    "mipsy" => CpuModel::Mipsy,
                    other => return Err(format!("unknown cpu model {other}\n{USAGE}")),
                }
            }
            "--disk" => {
                config.disk = DiskConfig {
                    policy: match value()?.as_str() {
                        "conv" => DiskPolicy::Conventional,
                        "idle" => DiskPolicy::IdleWhenNotBusy,
                        "standby2" => DiskPolicy::Standby { threshold_s: 2.0 },
                        "standby4" => DiskPolicy::Standby { threshold_s: 4.0 },
                        "sleep" => DiskPolicy::Sleep {
                            threshold_s: 2.0,
                            sleep_after_s: 5.0,
                        },
                        other => return Err(format!("unknown disk policy {other}\n{USAGE}")),
                    },
                    ..config.disk
                }
            }
            "--scale" => {
                config.time_scale = value()?
                    .parse()
                    .map_err(|_| "--scale needs a number".to_string())?
            }
            "--seed" => {
                config.seed = value()?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?
            }
            "--jobs" => {
                jobs =
                    softwatt_bench::parse_count_or_auto("--jobs", Some(value()?), "thread count")?
            }
            "--trace-cache" => trace_cache = Some(value()?),
            "--spec" => spec_path = Some(value()?),
            "--log" => log_path = Some(value()?),
            "--record" => record_path = Some(value()?),
            "--replay" => replay_path = Some(value()?),
            other => {
                if !obs.try_parse(other, || value().ok())? {
                    return Err(format!("unknown flag {other}\n{USAGE}"));
                }
            }
        }
    }
    obs.activate();
    let store = softwatt_bench::open_trace_store(trace_cache)?;
    if let Some(store) = &store {
        if record_path.is_some() || replay_path.is_some() {
            return Err("--trace-cache applies to benchmark runs, not --record/--replay".into());
        }
        // Stored traces are captured under analytic idle handling; forcing
        // it here makes a cold (capturing) and a warm (replaying) run of
        // the same command agree bit for bit.
        config.idle = softwatt::IdleHandling::Analytic;
        eprintln!(
            "trace cache {}: idle handling forced to analytic",
            store.dir().display()
        );
    }

    if let Some(path) = &spec_path {
        if selection.is_some() {
            return Err("give a benchmark selection or --spec, not both".into());
        }
        if record_path.is_some() || replay_path.is_some() {
            return Err("--record/--replay need a canned benchmark".into());
        }
        run_spec_file(path, &config, store.as_ref(), log_path.as_deref())?;
        return obs.finish();
    }
    // Validate here, at the CLI boundary: downstream aggregation
    // (`SystemBudget::mean_of`) treats an empty selection as a caller
    // error, so it must never get one.
    let Some(&benchmark) = benchmarks.first() else {
        return Err(format!("empty benchmark selection\n{USAGE}"));
    };

    if benchmarks.len() > 1 {
        if record_path.is_some() || replay_path.is_some() || log_path.is_some() {
            return Err("--log/--record/--replay need a single benchmark".into());
        }
        run_many(&benchmarks, &config, jobs, store.as_ref())?;
        return obs.finish();
    }

    let sim = Simulator::new(config.clone())?;
    eprintln!(
        "running {benchmark} on {} (disk {}, scale {}x, seed {:#x})...",
        config.cpu.label(),
        config.disk.policy.label(),
        config.time_scale,
        config.seed
    );
    // Workload-side OS parameters (file warming, page premap, cacheflush
    // rate) come from the benchmark regardless of trace mode.
    let reference = benchmark.workload(config.clocking(), config.seed);
    let warm = reference.warm_files();
    let premap = reference.premap_regions();
    let os_config = softwatt_os::OsConfig {
        cacheflush_per_kinstr: reference.spec().cacheflush_per_kinstr,
        seed: config.seed ^ 0x5EED,
        ..config.os
    };
    let run = match (&record_path, &replay_path) {
        (Some(_), Some(_)) => return Err("--record and --replay are exclusive".into()),
        (Some(path), None) => {
            let out = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let recording = softwatt_isa::Recording::new(reference, BufWriter::new(out))
                .map_err(|e| format!("cannot start trace {path}: {e}"))?;
            let run = sim.run_source(Box::new(recording), &warm, &premap, os_config);
            eprintln!("recorded user trace to {path}");
            run
        }
        (None, Some(path)) => {
            let input = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let reader = softwatt_isa::TraceReader::new(BufReader::new(input))
                .map_err(|e| format!("cannot read trace {path}: {e}"))?;
            eprintln!("replaying user trace from {path}");
            sim.run_source(Box::new(reader), &warm, &premap, os_config)
        }
        (None, None) => match &store {
            Some(store) => sim.run_benchmark_stored(benchmark, store),
            None => sim.run_benchmark(benchmark),
        },
    };

    print_run(benchmark.name(), &config, &run);

    if let Some(path) = log_path {
        write_log_csv(&run, &path)?;
    }
    obs.finish()
}

/// Loads, validates, and runs a `softwatt-spec-v1` workload file through
/// the same admission gate the HTTP surface applies to posted specs.
fn run_spec_file(
    path: &str,
    config: &SystemConfig,
    store: Option<&softwatt::TraceStore>,
    log_path: Option<&str>,
) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = softwatt_serve::json::parse(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let spec = softwatt_serve::json::spec_from_value(&value).map_err(|e| format!("{path}: {e}"))?;
    spec.validate().map_err(|e| format!("{path}: {e}"))?;
    spec.user_instr_budget(config.clocking())
        .map_err(|e| format!("{path}: {e}"))?;

    let sim = Simulator::new(config.clone())?;
    eprintln!(
        "running spec {} (hash {:016x}) on {} (disk {}, scale {}x, seed {:#x})...",
        spec.name,
        spec.content_hash(),
        config.cpu.label(),
        config.disk.policy.label(),
        config.time_scale,
        config.seed
    );
    let run = match store {
        Some(store) => sim.run_spec_stored(&spec, store),
        None => sim.run_spec(&spec),
    };
    print_run(&spec.name, config, &run);
    if let Some(path) = log_path {
        write_log_csv(&run, path)?;
    }
    Ok(())
}

fn write_log_csv(run: &RunResult, path: &str) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    run.log
        .to_csv(BufWriter::new(file))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!(
        "wrote simulation log to {path} ({} samples)",
        run.log.samples().len()
    );
    Ok(())
}

fn print_run(name: &str, config: &SystemConfig, run: &RunResult) {
    println!(
        "{name}: {} cycles, {:.2} paper-seconds, IPC {:.2}",
        run.cycles,
        run.duration_s,
        run.ipc()
    );
    for mode in Mode::ALL {
        println!(
            "  {:<8} {:>6.2}%",
            mode.label(),
            100.0 * run.mode_cycles(mode) as f64 / run.cycles.max(1) as f64
        );
    }
    let model = PowerModel::new(&config.power_params());
    println!("{}", system_budget(&model, run));
    println!(
        "disk: {} requests, {} spin-ups, {} spin-downs, {:.2} J",
        run.disk.requests, run.disk.spinups, run.disk.spindowns, run.disk.energy_j
    );
}

/// Simulates several benchmarks on up to `jobs` threads. Runs are seeded
/// per-configuration and independent, so results (printed in list order)
/// are identical whatever `jobs` is.
fn run_many(
    benchmarks: &[Benchmark],
    config: &SystemConfig,
    jobs: usize,
    store: Option<&softwatt::TraceStore>,
) -> Result<(), String> {
    Simulator::new(config.clone())?; // surface config errors before spawning
    let workers = jobs.min(benchmarks.len());
    eprintln!(
        "running {} benchmarks on {} (disk {}, scale {}x, {workers} worker(s))...",
        benchmarks.len(),
        config.cpu.label(),
        config.disk.policy.label(),
        config.time_scale
    );
    let results: Vec<Mutex<Option<RunResult>>> =
        benchmarks.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&bench) = benchmarks.get(i) else {
                    break;
                };
                let sim = Simulator::new(config.clone()).expect("validated config");
                let run = match store {
                    Some(store) => sim.run_benchmark_stored(bench, store),
                    None => sim.run_benchmark(bench),
                };
                *results[i].lock().expect("result slot") = Some(run);
            });
        }
    });
    let model = PowerModel::new(&config.power_params());
    let mut budgets = Vec::with_capacity(benchmarks.len());
    for (&bench, slot) in benchmarks.iter().zip(&results) {
        let run = slot
            .lock()
            .expect("result slot")
            .take()
            .expect("completed run");
        budgets.push(system_budget(&model, &run));
        print_run(bench.name(), config, &run);
    }
    if let Some(mean) = SystemBudget::mean_of(&budgets) {
        println!(
            "mean over {} benchmarks: {:.3} W total, disk {:.1}%",
            budgets.len(),
            mean.total_w(),
            mean.disk_pct()
        );
    }
    Ok(())
}

fn cmd_post(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(|| USAGE.to_string())?;
    let mut obs = ObsFlags::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        if !obs.try_parse(flag, || it.next().cloned())? {
            return Err(format!("unknown flag {flag}\n{USAGE}"));
        }
    }
    obs.activate();
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let log =
        SimLog::from_csv(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))?;

    // Post-processing needs only the structural power model; the machine
    // that produced the log used Table 1 defaults unless stated otherwise.
    let model = PowerModel::new(&SystemConfig::default().power_params());
    let table = model.mode_table(&log);
    println!(
        "{path}: {} samples, {} cycles ({:.2} paper-seconds)",
        log.samples().len(),
        log.total_cycles(),
        log.clocking().cycles_to_paper_secs(log.total_cycles())
    );
    println!("\nper-mode breakdown:");
    for mode in Mode::ALL {
        println!(
            "  {:<8} cycles {:>6.2}%  energy {:>6.2}%  avg {:>6.2} W",
            mode.label(),
            100.0 * table.cycle_fraction(mode),
            100.0 * table.energy_fraction(mode),
            table.average_power_w(mode).total()
        );
    }
    println!("\nprocessor/memory average power:");
    println!("{}", table.overall_average_power_w());
    let profile = model.profile(&log);
    if let Some((peak_w, at_s)) = profile.peak_power_w() {
        println!("peak window power: {peak_w:.2} W at {at_s:.2} s");
    }
    println!(
        "energy-delay product: {:.3e} J.s",
        table.energy_delay_product()
    );
    obs.finish()
}
