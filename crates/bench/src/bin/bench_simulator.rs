//! Simulator-throughput measurement mode: times the core simulator per
//! CPU model, the full experiment grid serial vs parallel (with the
//! trace-replay engine), the same grid with replay disabled (every key
//! fully simulated) for the replay speedup headline, and the grid against
//! a cold vs a warm persistent trace store (the warm pass must execute 0
//! full simulations). Writes the results as machine-readable JSON
//! (`BENCH_simulator.json`).
//!
//! Usage: `bench_simulator [--scale S] [--jobs N|auto] [--out FILE]
//! [--trace-cache DIR] [--metrics] [--metrics-out FILE]
//! [--log-level LEVEL]` (defaults: scale 2000 — the experiment harness's
//! fidelity setting — `--jobs` = available parallelism, out
//! `BENCH_simulator.json`). The store timings use a scratch directory
//! under `--trace-cache`/`SOFTWATT_TRACE_CACHE` (or the system temp dir),
//! removed afterwards, so a real cache is never cleared. Note that
//! enabling metrics perturbs the very wall-clocks this tool measures;
//! leave them off for regression comparisons.

use std::fmt::Write as _;
use std::time::Instant;

use softwatt::experiments::ExperimentSuite;
use softwatt::{Benchmark, CpuModel, Simulator, SystemConfig};
use softwatt_bench::ObsFlags;

fn main() {
    let mut scale = 2000.0f64;
    let mut jobs = softwatt_bench::auto_parallelism();
    let mut out = String::from("BENCH_simulator.json");
    let mut trace_cache = None;
    let mut obs = ObsFlags::default();
    fn usage_exit(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: bench_simulator [--scale S] [--jobs N|auto] [--out FILE] [--trace-cache DIR] {}",
            ObsFlags::USAGE
        );
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--scale" => match value("--scale").parse() {
                Ok(v) if v > 0.0 => scale = v,
                _ => usage_exit("--scale needs a positive number"),
            },
            "--jobs" => {
                jobs = softwatt_bench::parse_count_or_auto(
                    "--jobs",
                    Some(value("--jobs")),
                    "thread count",
                )
                .unwrap_or_else(|e| usage_exit(&e));
            }
            "--out" => out = value("--out"),
            "--trace-cache" => trace_cache = Some(value("--trace-cache")),
            other => match obs.try_parse(other, || Some(value(other))) {
                Ok(true) => {}
                Ok(false) => usage_exit(&format!("unknown flag {other}")),
                Err(e) => usage_exit(&e),
            },
        }
    }
    obs.activate();

    let config = SystemConfig {
        time_scale: scale,
        ..SystemConfig::default()
    };
    let cores = softwatt_bench::auto_parallelism();
    eprintln!("simulator throughput (scale {scale}x, {cores} core(s), --jobs {jobs})");

    // Core simulator throughput: simulated cycles per wall-clock second,
    // one jess run per CPU model.
    let mut cpu_rows = String::new();
    for cpu in [CpuModel::Mipsy, CpuModel::MxsSingleIssue, CpuModel::Mxs] {
        let mut c = config.clone();
        c.cpu = cpu;
        let sim = Simulator::new(c).expect("valid config");
        let start = Instant::now();
        let run = sim.run_benchmark(Benchmark::Jess);
        let wall_s = start.elapsed().as_secs_f64();
        let rate = run.cycles as f64 / wall_s;
        eprintln!(
            "  {:<22} {:>12} cycles in {wall_s:7.3} s  ({rate:.3e} cycles/s)",
            cpu.label(),
            run.cycles
        );
        if !cpu_rows.is_empty() {
            cpu_rows.push_str(",\n");
        }
        write!(
            cpu_rows,
            "    {{\"model\": \"{}\", \"benchmark\": \"jess\", \"cycles\": {}, \"wall_s\": {wall_s:.6}, \"cycles_per_sec\": {rate:.1}}}",
            cpu.label(),
            run.cycles
        )
        .expect("write to string");
    }

    // Full experiment grid with the trace-replay engine, serial then
    // parallel, fresh memo each time.
    let suite = ExperimentSuite::new(config.clone()).expect("valid config");
    let grid = suite.paper_grid();
    let start = Instant::now();
    suite.run_all(1);
    let serial_s = start.elapsed().as_secs_f64();
    let full_sims = suite.runs_executed();
    let replays = suite.replays_derived();
    eprintln!(
        "  grid x{} serial      {serial_s:7.3} s  ({full_sims} full sims + {replays} replays)",
        grid.len()
    );

    // The speedup is bounded by min(jobs, cores, grid size): on a 1-core
    // machine a parallel grid cannot beat the serial one, which the JSON
    // now says outright via `jobs_effective`.
    let jobs_effective = jobs.min(cores).clamp(1, grid.len());
    let suite_par = ExperimentSuite::new(config.clone()).expect("valid config");
    let start = Instant::now();
    suite_par.run_all(jobs);
    let parallel_s = start.elapsed().as_secs_f64();
    let speedup = serial_s / parallel_s;
    eprintln!(
        "  grid x{} --jobs {jobs}    {parallel_s:7.3} s  ({speedup:.2}x, {jobs_effective} effective)",
        grid.len()
    );

    // The same grid with replay disabled: every key is a full simulation.
    // The ratio against the replaying grid at the same jobs count is the
    // headline win of the log-once/replay-many engine.
    let suite_full = ExperimentSuite::with_full_simulation(config.clone()).expect("valid config");
    let start = Instant::now();
    suite_full.run_all(jobs);
    let full_sim_s = start.elapsed().as_secs_f64();
    let replay_speedup = full_sim_s / parallel_s;
    eprintln!(
        "  grid x{} full-sim --jobs {jobs} {full_sim_s:7.3} s  (replay engine {replay_speedup:.2}x faster)",
        grid.len()
    );

    // Cold vs warm persistent trace store, in a scratch directory so a
    // real cache the user pointed us at is never cleared.
    let store_base = softwatt_bench::trace_cache_dir(trace_cache)
        .map_or_else(std::env::temp_dir, std::path::PathBuf::from);
    let store_dir = store_base.join(format!("swtrace-bench-{}", std::process::id()));
    let store = softwatt::TraceStore::open(&store_dir).expect("create scratch trace store");

    let suite_cold = ExperimentSuite::new(config.clone())
        .expect("valid config")
        .with_trace_store(store.clone());
    let start = Instant::now();
    suite_cold.run_all(jobs);
    let cold_s = start.elapsed().as_secs_f64();
    let cold_sims = suite_cold.runs_executed();
    eprintln!(
        "  grid x{} cold store  {cold_s:7.3} s  ({cold_sims} full sims captured + persisted)",
        grid.len()
    );

    let suite_warm = ExperimentSuite::new(config)
        .expect("valid config")
        .with_trace_store(store);
    let start = Instant::now();
    suite_warm.run_all(jobs);
    let warm_s = start.elapsed().as_secs_f64();
    let warm_sims = suite_warm.runs_executed();
    let warm_loads = suite_warm.store_loads();
    let warm_speedup = cold_s / warm_s;
    assert_eq!(warm_sims, 0, "a warm store must satisfy the whole grid");
    eprintln!(
        "  grid x{} warm store  {warm_s:7.3} s  ({warm_loads} store loads, {warm_sims} full sims, {warm_speedup:.2}x vs cold)",
        grid.len()
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    let json = format!(
        "{{\n  \"schema\": \"softwatt-bench-simulator-v3\",\n  \"time_scale\": {scale},\n  \"cores\": {cores},\n  \"jobs\": {jobs},\n  \"jobs_effective\": {jobs_effective},\n  \"cpu_models\": [\n{cpu_rows}\n  ],\n  \"grid\": {{\"runs\": {}, \"full_sims\": {full_sims}, \"replays\": {replays}, \"serial_wall_s\": {serial_s:.6}, \"parallel_wall_s\": {parallel_s:.6}, \"speedup\": {speedup:.4}, \"full_sim_wall_s\": {full_sim_s:.6}, \"replay_speedup\": {replay_speedup:.4}}},\n  \"trace_store\": {{\"cold_wall_s\": {cold_s:.6}, \"cold_full_sims\": {cold_sims}, \"warm_wall_s\": {warm_s:.6}, \"warm_full_sims\": {warm_sims}, \"warm_store_loads\": {warm_loads}, \"warm_speedup\": {warm_speedup:.4}}}\n}}\n",
        grid.len()
    );
    std::fs::write(&out, &json).expect("write benchmark JSON");
    eprintln!("wrote {out}");
    print!("{json}");

    if let Err(e) = obs.finish() {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
