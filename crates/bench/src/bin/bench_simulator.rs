//! Simulator-throughput measurement mode: times the core simulator per
//! CPU model, the full experiment grid serial vs parallel (with the
//! trace-replay engine), the same grid with replay disabled (every key
//! fully simulated) for the replay speedup headline, and the grid against
//! a cold vs a warm persistent trace store (the warm pass must execute 0
//! full simulations). Writes the results as machine-readable JSON
//! (`BENCH_simulator.json`).
//!
//! Usage: `bench_simulator [--scale S] [--jobs N|auto] [--out FILE]
//! [--trace-cache DIR] [--metrics] [--metrics-out FILE]
//! [--log-level LEVEL]` (defaults: scale 2000 — the experiment harness's
//! fidelity setting — `--jobs` = available parallelism, out
//! `BENCH_simulator.json`). The store timings use a scratch directory
//! under `--trace-cache`/`SOFTWATT_TRACE_CACHE` (or the system temp dir),
//! removed afterwards, so a real cache is never cleared. Note that
//! enabling metrics perturbs the very wall-clocks this tool measures;
//! leave them off for regression comparisons.

use std::fmt::Write as _;
use std::time::Instant;

use softwatt::experiments::ExperimentSuite;
use softwatt::{Benchmark, CpuModel, PowerModel, Simulator, SystemConfig};
use softwatt_bench::ObsFlags;

/// `--profile`: one instrumented full simulation + power post + replay,
/// reported as a per-stage wall-clock table on stderr. Stage timing makes
/// the run itself slower (several clock reads per simulated cycle), so
/// this mode never writes benchmark JSON — the numbers are for
/// *attribution*, not regression tracking.
fn run_profile(config: &SystemConfig) {
    softwatt_obs::set_enabled(true);
    softwatt_obs::set_stage_timing(true);
    let mut c = config.clone();
    c.cpu = CpuModel::Mxs;
    let sim = Simulator::new(c).expect("valid config");

    let start = Instant::now();
    let (run, trace) = sim.run_benchmark_traced(Benchmark::Jess);
    let sim_ns = start.elapsed().as_nanos() as u64;

    let model = PowerModel::new(&sim.config().power_params());
    let start = Instant::now();
    let profile = model.profile(&run.log);
    let table = model.mode_table(&run.log);
    let power_ns = start.elapsed().as_nanos() as u64;
    std::hint::black_box((&profile, &table));

    let start = Instant::now();
    let replayed = sim.replay_trace(&trace);
    let replay_ns = start.elapsed().as_nanos() as u64;
    std::hint::black_box(&replayed);

    softwatt_obs::set_stage_timing(false);
    let stage = |name: &'static str| softwatt_obs::registry::counter(name).get();
    let stages: &[(&str, u64)] = &[
        ("fetch", stage("mxs.stage.fetch_ns")),
        ("dispatch", stage("mxs.stage.dispatch_ns")),
        ("issue", stage("mxs.stage.issue_ns")),
        ("complete", stage("mxs.stage.complete_ns")),
        ("commit", stage("mxs.stage.commit_ns")),
        ("os", stage("sim.stage.os_ns")),
        ("stats", stage("sim.stage.stats_ns")),
    ];
    let accounted: u64 = stages.iter().map(|&(_, ns)| ns).sum();
    eprintln!(
        "per-stage profile: jess on mxs, {} cycles, {:.3} s wall (timing overhead included)",
        run.cycles,
        sim_ns as f64 / 1e9
    );
    for &(name, ns) in stages {
        eprintln!(
            "  {name:<10} {:>10.3} ms  {:>5.1}%  ({:.1} ns/cycle)",
            ns as f64 / 1e6,
            100.0 * ns as f64 / sim_ns as f64,
            ns as f64 / run.cycles as f64
        );
    }
    eprintln!(
        "  {:<10} {:>10.3} ms  {:>5.1}%  (timer reads + uninstrumented code)",
        "other",
        (sim_ns - accounted) as f64 / 1e6,
        100.0 * (sim_ns - accounted) as f64 / sim_ns as f64
    );
    eprintln!(
        "  power post  {:>9.3} ms   replay {:.3} ms ({} samples)",
        power_ns as f64 / 1e6,
        replay_ns as f64 / 1e6,
        run.log.samples().len()
    );
    let scans = stage("mxs.issue.scans");
    let entries = stage("mxs.issue.scan_entries");
    let skips = stage("mxs.issue.skipped_cycles");
    eprintln!(
        "  issue occupancy: {scans} scans ({:.1} waiting entries avg), {skips} cycles skipped ({:.1}% of cycles)",
        entries as f64 / scans.max(1) as f64,
        100.0 * skips as f64 / run.cycles as f64
    );
}

fn main() {
    let mut scale = 2000.0f64;
    let mut jobs = softwatt_bench::auto_parallelism();
    let mut out = String::from("BENCH_simulator.json");
    let mut trace_cache = None;
    let mut profile_mode = false;
    let mut obs = ObsFlags::default();
    fn usage_exit(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: bench_simulator [--scale S] [--jobs N|auto] [--out FILE] [--trace-cache DIR] [--profile] {}",
            ObsFlags::USAGE
        );
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--scale" => match value("--scale").parse() {
                Ok(v) if v > 0.0 => scale = v,
                _ => usage_exit("--scale needs a positive number"),
            },
            "--jobs" => {
                jobs = softwatt_bench::parse_count_or_auto(
                    "--jobs",
                    Some(value("--jobs")),
                    "thread count",
                )
                .unwrap_or_else(|e| usage_exit(&e));
            }
            "--out" => out = value("--out"),
            "--trace-cache" => trace_cache = Some(value("--trace-cache")),
            "--profile" => profile_mode = true,
            other => match obs.try_parse(other, || Some(value(other))) {
                Ok(true) => {}
                Ok(false) => usage_exit(&format!("unknown flag {other}")),
                Err(e) => usage_exit(&e),
            },
        }
    }
    obs.activate();

    if profile_mode {
        run_profile(&SystemConfig {
            time_scale: scale,
            ..SystemConfig::default()
        });
        return;
    }

    let config = SystemConfig {
        time_scale: scale,
        ..SystemConfig::default()
    };
    let cores = softwatt_bench::auto_parallelism();
    eprintln!("simulator throughput (scale {scale}x, {cores} core(s), --jobs {jobs})");

    // Core simulator throughput: simulated cycles per wall-clock second,
    // best of three jess runs per CPU model (each run re-simulates from
    // scratch; the minimum wall time is the least scheduler-noise-polluted
    // estimate of the simulator's actual speed).
    let mut cpu_rows = String::new();
    let mut mxs_full_s = 0.0f64;
    for cpu in [CpuModel::Mipsy, CpuModel::MxsSingleIssue, CpuModel::Mxs] {
        let mut c = config.clone();
        c.cpu = cpu;
        let sim = Simulator::new(c).expect("valid config");
        let mut wall_s = f64::INFINITY;
        let mut run = None;
        for _ in 0..3 {
            let start = Instant::now();
            let r = sim.run_benchmark(Benchmark::Jess);
            wall_s = wall_s.min(start.elapsed().as_secs_f64());
            run = Some(r);
        }
        let run = run.expect("three runs happened");
        if cpu == CpuModel::Mxs {
            mxs_full_s = wall_s;
        }
        let rate = run.cycles as f64 / wall_s;
        eprintln!(
            "  {:<22} {:>12} cycles in {wall_s:7.3} s  ({rate:.3e} cycles/s)",
            cpu.label(),
            run.cycles
        );
        if !cpu_rows.is_empty() {
            cpu_rows.push_str(",\n");
        }
        write!(
            cpu_rows,
            "    {{\"model\": \"{}\", \"benchmark\": \"jess\", \"cycles\": {}, \"wall_s\": {wall_s:.6}, \"cycles_per_sec\": {rate:.1}}}",
            cpu.label(),
            run.cycles
        )
        .expect("write to string");
    }

    // Direct replay-vs-full-sim measurement on one (jess, MXS) trace: the
    // per-trace cost of deriving a result from a capture versus simulating
    // it, independent of grid composition (the grid-level replay_speedup
    // below is diluted by the captures the grid still has to run).
    let (replay_s, replay_direct) = {
        let mut c = config.clone();
        c.cpu = CpuModel::Mxs;
        let sim = Simulator::new(c).expect("valid config");
        let (_, trace) = sim.run_benchmark_traced(Benchmark::Jess);
        let reps = 10u32;
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(sim.replay_trace(&trace));
        }
        let replay_s = start.elapsed().as_secs_f64() / f64::from(reps);
        (replay_s, mxs_full_s / replay_s)
    };
    eprintln!(
        "  replay (jess, mxs)     {:>12.6} s/replay  ({replay_direct:.1}x vs {mxs_full_s:.3} s full sim)",
        replay_s
    );

    // Full experiment grid with the trace-replay engine, serial then
    // parallel, fresh memo each time.
    let suite = ExperimentSuite::new(config.clone()).expect("valid config");
    let grid = suite.paper_grid();
    let start = Instant::now();
    suite.run_all(1);
    let serial_s = start.elapsed().as_secs_f64();
    let full_sims = suite.runs_executed();
    let replays = suite.replays_derived();
    eprintln!(
        "  grid x{} serial      {serial_s:7.3} s  ({full_sims} full sims + {replays} replays)",
        grid.len()
    );

    // The speedup is bounded by min(jobs, cores, grid size): on a 1-core
    // machine a parallel grid cannot beat the serial one, which the JSON
    // now says outright via `jobs_effective`.
    let jobs_effective = jobs.min(cores).clamp(1, grid.len());
    let suite_par = ExperimentSuite::new(config.clone()).expect("valid config");
    let start = Instant::now();
    suite_par.run_all(jobs);
    let parallel_s = start.elapsed().as_secs_f64();
    let speedup = serial_s / parallel_s;
    eprintln!(
        "  grid x{} --jobs {jobs}    {parallel_s:7.3} s  ({speedup:.2}x, {jobs_effective} effective)",
        grid.len()
    );

    // The same grid with replay disabled: every key is a full simulation.
    // The ratio against the replaying grid at the same jobs count is the
    // headline win of the log-once/replay-many engine.
    let suite_full = ExperimentSuite::with_full_simulation(config.clone()).expect("valid config");
    let start = Instant::now();
    suite_full.run_all(jobs);
    let full_sim_s = start.elapsed().as_secs_f64();
    let replay_speedup = full_sim_s / parallel_s;
    eprintln!(
        "  grid x{} full-sim --jobs {jobs} {full_sim_s:7.3} s  (replay engine {replay_speedup:.2}x faster)",
        grid.len()
    );

    // Cold vs warm persistent trace store, in a scratch directory so a
    // real cache the user pointed us at is never cleared.
    let store_base = softwatt_bench::trace_cache_dir(trace_cache)
        .map_or_else(std::env::temp_dir, std::path::PathBuf::from);
    let store_dir = store_base.join(format!("swtrace-bench-{}", std::process::id()));
    let store = softwatt::TraceStore::open(&store_dir).expect("create scratch trace store");

    let suite_cold = ExperimentSuite::new(config.clone())
        .expect("valid config")
        .with_trace_store(store.clone());
    let start = Instant::now();
    suite_cold.run_all(jobs);
    let cold_s = start.elapsed().as_secs_f64();
    let cold_sims = suite_cold.runs_executed();
    eprintln!(
        "  grid x{} cold store  {cold_s:7.3} s  ({cold_sims} full sims captured + persisted)",
        grid.len()
    );

    let suite_warm = ExperimentSuite::new(config)
        .expect("valid config")
        .with_trace_store(store);
    let start = Instant::now();
    suite_warm.run_all(jobs);
    let warm_s = start.elapsed().as_secs_f64();
    let warm_sims = suite_warm.runs_executed();
    let warm_loads = suite_warm.store_loads();
    let warm_speedup = cold_s / warm_s;
    assert_eq!(warm_sims, 0, "a warm store must satisfy the whole grid");
    eprintln!(
        "  grid x{} warm store  {warm_s:7.3} s  ({warm_loads} store loads, {warm_sims} full sims, {warm_speedup:.2}x vs cold)",
        grid.len()
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    let json = format!(
        "{{\n  \"schema\": \"softwatt-bench-simulator-v4\",\n  \"time_scale\": {scale},\n  \"cores\": {cores},\n  \"jobs\": {jobs},\n  \"jobs_effective\": {jobs_effective},\n  \"cpu_models\": [\n{cpu_rows}\n  ],\n  \"replay\": {{\"benchmark\": \"jess\", \"model\": \"mxs\", \"full_sim_wall_s\": {mxs_full_s:.6}, \"replay_wall_s\": {replay_s:.6}, \"replay_speedup\": {replay_direct:.4}}},\n  \"grid\": {{\"runs\": {}, \"full_sims\": {full_sims}, \"replays\": {replays}, \"serial_wall_s\": {serial_s:.6}, \"parallel_wall_s\": {parallel_s:.6}, \"speedup\": {speedup:.4}, \"full_sim_wall_s\": {full_sim_s:.6}, \"replay_speedup\": {replay_speedup:.4}}},\n  \"trace_store\": {{\"cold_wall_s\": {cold_s:.6}, \"cold_full_sims\": {cold_sims}, \"warm_wall_s\": {warm_s:.6}, \"warm_full_sims\": {warm_sims}, \"warm_store_loads\": {warm_loads}, \"warm_speedup\": {warm_speedup:.4}}}\n}}\n",
        grid.len()
    );
    std::fs::write(&out, &json).expect("write benchmark JSON");
    eprintln!("wrote {out}");
    print!("{json}");

    if let Err(e) = obs.finish() {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
