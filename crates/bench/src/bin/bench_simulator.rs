//! Simulator-throughput measurement mode: times the core simulator per
//! CPU model, the full experiment grid serial vs parallel (with the
//! trace-replay engine), and the same grid with replay disabled (every key
//! fully simulated) for the replay speedup headline. Writes the results as
//! machine-readable JSON (`BENCH_simulator.json`).
//!
//! Usage: `bench_simulator [--scale S] [--jobs N] [--out FILE]
//! [--metrics] [--metrics-out FILE] [--log-level LEVEL]`
//! (defaults: scale 2000 — the experiment harness's fidelity setting —
//! `--jobs` = available parallelism, out `BENCH_simulator.json`).
//! Note that enabling metrics perturbs the very wall-clocks this tool
//! measures; leave them off for regression comparisons.

use std::fmt::Write as _;
use std::time::Instant;

use softwatt::experiments::ExperimentSuite;
use softwatt::{Benchmark, CpuModel, Simulator, SystemConfig};
use softwatt_bench::ObsFlags;

fn main() {
    let mut scale = 2000.0f64;
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("BENCH_simulator.json");
    let mut obs = ObsFlags::default();
    fn usage_exit(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: bench_simulator [--scale S] [--jobs N] [--out FILE] {}",
            ObsFlags::USAGE
        );
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--scale" => match value("--scale").parse() {
                Ok(v) if v > 0.0 => scale = v,
                _ => usage_exit("--scale needs a positive number"),
            },
            "--jobs" => {
                jobs = softwatt_bench::parse_positive_count(
                    "--jobs",
                    Some(value("--jobs")),
                    "thread count",
                )
                .unwrap_or_else(|e| usage_exit(&e));
            }
            "--out" => out = value("--out"),
            other => match obs.try_parse(other, || Some(value(other))) {
                Ok(true) => {}
                Ok(false) => usage_exit(&format!("unknown flag {other}")),
                Err(e) => usage_exit(&e),
            },
        }
    }
    obs.activate();

    let config = SystemConfig {
        time_scale: scale,
        ..SystemConfig::default()
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("simulator throughput (scale {scale}x, {cores} core(s), --jobs {jobs})");

    // Core simulator throughput: simulated cycles per wall-clock second,
    // one jess run per CPU model.
    let mut cpu_rows = String::new();
    for cpu in [CpuModel::Mipsy, CpuModel::MxsSingleIssue, CpuModel::Mxs] {
        let mut c = config.clone();
        c.cpu = cpu;
        let sim = Simulator::new(c).expect("valid config");
        let start = Instant::now();
        let run = sim.run_benchmark(Benchmark::Jess);
        let wall_s = start.elapsed().as_secs_f64();
        let rate = run.cycles as f64 / wall_s;
        eprintln!(
            "  {:<22} {:>12} cycles in {wall_s:7.3} s  ({rate:.3e} cycles/s)",
            cpu.label(),
            run.cycles
        );
        if !cpu_rows.is_empty() {
            cpu_rows.push_str(",\n");
        }
        write!(
            cpu_rows,
            "    {{\"model\": \"{}\", \"benchmark\": \"jess\", \"cycles\": {}, \"wall_s\": {wall_s:.6}, \"cycles_per_sec\": {rate:.1}}}",
            cpu.label(),
            run.cycles
        )
        .expect("write to string");
    }

    // Full experiment grid with the trace-replay engine, serial then
    // parallel, fresh memo each time.
    let suite = ExperimentSuite::new(config.clone()).expect("valid config");
    let grid = suite.paper_grid();
    let start = Instant::now();
    suite.run_all(1);
    let serial_s = start.elapsed().as_secs_f64();
    let full_sims = suite.runs_executed();
    let replays = suite.replays_derived();
    eprintln!(
        "  grid x{} serial      {serial_s:7.3} s  ({full_sims} full sims + {replays} replays)",
        grid.len()
    );

    let suite_par = ExperimentSuite::new(config.clone()).expect("valid config");
    let start = Instant::now();
    suite_par.run_all(jobs);
    let parallel_s = start.elapsed().as_secs_f64();
    let speedup = serial_s / parallel_s;
    eprintln!(
        "  grid x{} --jobs {jobs}    {parallel_s:7.3} s  ({speedup:.2}x)",
        grid.len()
    );

    // The same grid with replay disabled: every key is a full simulation.
    // The ratio against the replaying grid at the same jobs count is the
    // headline win of the log-once/replay-many engine.
    let suite_full = ExperimentSuite::with_full_simulation(config).expect("valid config");
    let start = Instant::now();
    suite_full.run_all(jobs);
    let full_sim_s = start.elapsed().as_secs_f64();
    let replay_speedup = full_sim_s / parallel_s;
    eprintln!(
        "  grid x{} full-sim --jobs {jobs} {full_sim_s:7.3} s  (replay engine {replay_speedup:.2}x faster)",
        grid.len()
    );

    let json = format!(
        "{{\n  \"schema\": \"softwatt-bench-simulator-v2\",\n  \"time_scale\": {scale},\n  \"cores\": {cores},\n  \"jobs\": {jobs},\n  \"cpu_models\": [\n{cpu_rows}\n  ],\n  \"grid\": {{\"runs\": {}, \"full_sims\": {full_sims}, \"replays\": {replays}, \"serial_wall_s\": {serial_s:.6}, \"parallel_wall_s\": {parallel_s:.6}, \"speedup\": {speedup:.4}, \"full_sim_wall_s\": {full_sim_s:.6}, \"replay_speedup\": {replay_speedup:.4}}}\n}}\n",
        grid.len()
    );
    std::fs::write(&out, &json).expect("write benchmark JSON");
    eprintln!("wrote {out}");
    print!("{json}");

    if let Err(e) = obs.finish() {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
