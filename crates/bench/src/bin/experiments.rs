//! Regenerates every table and figure of the SoftWatt paper and prints
//! measured values next to the paper's (see `EXPERIMENTS.md`).
//!
//! Usage: `cargo run --release -p softwatt-bench --bin experiments
//! [time_scale] [--jobs N|auto] [--trace-cache DIR] [--fidelity TIER]
//! [--metrics] [--metrics-out FILE] [--log-level LEVEL]` — the optional
//! time-scale factor (default 2000) trades fidelity for speed; `--jobs N`
//! prewarms the whole run grid on N worker threads before the (serial,
//! deterministic) printing pass, so stdout is byte-identical whatever N
//! is. `--trace-cache DIR` (or the `SOFTWATT_TRACE_CACHE` environment
//! variable) attaches the persistent trace store: captured traces persist
//! across processes, and a warm run derives every bundle by replay — same
//! stdout, no full simulations. The observability flags and the
//! trace-cache tally go to stderr/file only, never stdout.
//!
//! `--fidelity surrogate` runs the surrogate *accuracy gate* instead of
//! the report: calibrate the counter-driven surrogate, compare its
//! predicted total CPU energy against the exact tier on every paper-grid
//! cell, print the per-cell error table, and exit nonzero if the worst
//! cell exceeds the gate (the model's declared bound capped at 5%). CI
//! runs this to keep the surrogate honest. `--fidelity replay` (the
//! default) is the normal exact report.

use softwatt::experiments::{DiskSetup, ExperimentSuite};
use softwatt::report::paper;
use softwatt::{Mode, SystemConfig, UnitGroup};
use softwatt_bench::ObsFlags;
use softwatt_obs::obs_event;

fn main() {
    let mut time_scale = 2000.0f64;
    let mut jobs = 1usize;
    let mut trace_cache = None;
    let mut surrogate_gate = false;
    let mut obs = ObsFlags::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                match softwatt_bench::parse_count_or_auto("--jobs", args.next(), "thread count") {
                    Ok(n) => jobs = n,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--trace-cache" => match args.next() {
                Some(dir) => trace_cache = Some(dir),
                None => {
                    eprintln!("--trace-cache needs a directory");
                    std::process::exit(2);
                }
            },
            "--fidelity" => match args.next().as_deref() {
                Some("surrogate") => surrogate_gate = true,
                Some("replay") => surrogate_gate = false,
                other => {
                    eprintln!(
                        "--fidelity needs a tier: surrogate or replay (got {})",
                        other.unwrap_or("nothing")
                    );
                    std::process::exit(2);
                }
            },
            other => match obs.try_parse(other, || args.next()) {
                Ok(true) => {}
                Ok(false) => match other.parse() {
                    Ok(v) => time_scale = v,
                    Err(_) => {
                        eprintln!("unknown argument: {other}");
                        eprintln!(
                            "usage: experiments [time_scale] [--jobs N|auto] [--trace-cache DIR] \
                             [--fidelity surrogate|replay] {}",
                            ObsFlags::USAGE
                        );
                        std::process::exit(2);
                    }
                },
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
        }
    }
    obs.activate();
    let store = softwatt_bench::open_trace_store(trace_cache).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let config = SystemConfig {
        time_scale,
        ..SystemConfig::default()
    };
    if !surrogate_gate {
        println!("SoftWatt experiment harness (time scale {time_scale}x)\n");
    }
    let mut suite = ExperimentSuite::new(config).expect("valid config");
    let caching = store.is_some();
    if let Some(store) = store {
        suite = suite.with_trace_store(store);
    }
    if surrogate_gate {
        let passed = run_surrogate_gate(&suite, time_scale, jobs.max(1));
        if let Err(e) = obs.finish() {
            eprintln!("{e}");
            std::process::exit(1);
        }
        std::process::exit(if passed { 0 } else { 1 });
    }
    if jobs > 1 {
        // Fill the memo in parallel; every table below is then a lookup.
        let phase = softwatt_obs::span("phase.prewarm_ns");
        suite.run_all(jobs);
        if let Some(ns) = phase.finish() {
            obs_event!(
                softwatt_obs::Level::Info,
                "experiments",
                "prewarm on {jobs} threads took {:.1} ms",
                ns as f64 / 1e6
            );
        }
    }

    let phase = softwatt_obs::span("phase.figures_ns");
    heading("V1  §2 validation: maximum CPU power");
    println!("{}\n", suite.validation());

    heading("F2  Figure 2: disk operating-mode power values (MK3003MAN)");
    for (mode, watts) in suite.disk_modes() {
        println!("  {:<10} {watts:5.2} W", mode.label());
    }
    println!();

    heading("F3  Figure 3: jess memory-system profiles");
    let mem_profiles = suite.fig3_jess_memory();
    println!(
        "mipsy: avg memory-subsystem power {:.2} W vs avg datapath power {:.2} W",
        mem_profiles.mipsy.avg_memory_w(),
        mem_profiles.mipsy.avg_processor_w()
    );
    println!(
        "  (paper: single-issue memory power is more than twice datapath power; ratio = {:.2}x)",
        mem_profiles.mipsy.avg_memory_w() / mem_profiles.mipsy.avg_processor_w().max(1e-9)
    );
    print_profile_sparkline("mipsy idle share over time     ", &mem_profiles.mipsy, 3);
    print_profile_sparkline(
        "1-wide MXS idle share over time",
        &mem_profiles.single_issue,
        3,
    );
    println!();

    heading("F4  Figure 4: jess processor profile (4-wide MXS)");
    let proc_profile = suite.fig4_jess_processor();
    print_profile_sparkline("idle share over time           ", &proc_profile, 3);
    print_profile_sparkline("user share over time           ", &proc_profile, 0);
    println!(
        "avg processor (datapath) power {:.2} W\n",
        proc_profile.avg_processor_w()
    );

    heading("F5  Figure 5: overall budget with the conventional disk");
    let fig5 = suite.fig5_budget_conventional();
    println!("{fig5}");
    println!(
        "  paper: disk {:.0}%  (measured {:.1}%)",
        paper::FIG5_DISK_PCT,
        fig5.disk_pct()
    );
    for (label, p) in paper::FIG5_SHARES_PCT {
        let g = UnitGroup::ALL
            .iter()
            .find(|g| g.label() == label)
            .expect("known label");
        println!(
            "  paper: {label} {p:.0}%  (measured {:.1}%)",
            fig5.group_pct(*g)
        );
    }
    println!();

    heading("F6  Figure 6: average power per software mode");
    let fig6 = suite.fig6_mode_power();
    println!("{fig6}");
    println!(
        "  paper shape: user highest; measured user {:.2} W > kernel {:.2} W, idle {:.2} W\n",
        fig6.total_w(Mode::User),
        fig6.total_w(Mode::KernelInstr),
        fig6.total_w(Mode::Idle)
    );

    heading("F7  Figure 7: budget with the IDLE-capable disk");
    let fig7 = suite.fig7_budget_lowpower();
    println!("{fig7}");
    println!(
        "  paper: disk drops 34% -> 23%; measured {:.1}% -> {:.1}%\n",
        fig5.disk_pct(),
        fig7.disk_pct()
    );

    heading("F8  Figure 8: average power of key kernel services");
    let fig8 = suite.fig8_service_power();
    for row in &fig8 {
        println!("  {row}");
    }
    if let (Some(utlb), Some(read)) = (
        fig8.iter().find(|r| r.service.name() == "utlb"),
        fig8.iter().find(|r| r.service.name() == "read"),
    ) {
        println!(
            "  paper shape: utlb has much lower power than read; measured {:.2} W vs {:.2} W\n",
            utlb.power_w.total(),
            read.power_w.total()
        );
    }

    heading("F9  Figure 9: disk energy + idle cycles across configurations");
    for row in suite.fig9_disk_study() {
        print!("{row}");
        let idle_only = row.cell(DiskSetup::IdleOnly).disk_energy_j;
        let baseline = row.cell(DiskSetup::Conventional).disk_energy_j;
        println!(
            "  -> IDLE mode saves {:.0}% of baseline disk energy",
            100.0 * (1.0 - idle_only / baseline)
        );
    }
    println!("  paper shapes: IDLE mode always wins vs baseline; 2s threshold hurts");
    println!("  compress/javac/mtrt/jack; 4s behaves like config 2 for compress/javac;");
    println!("  mtrt consumes MORE energy at 4s than at 2s; jess/db unaffected.\n");

    phase.finish();
    let phase = softwatt_obs::span("phase.tables_ns");
    heading("T2  Table 2: % cycles vs % energy per mode");
    for row in suite.table2_mode_breakdown() {
        println!("  {row}");
    }
    println!("  paper rows (user/kernel/sync/idle):");
    for (name, c, e) in paper::TABLE2 {
        println!(
            "  {name:<9} cycles {:5.1}% {:5.1}% {:5.1}% {:5.1}%  energy {:5.1}% {:5.1}% {:5.1}% {:5.1}%",
            c[0], c[1], c[2], c[3], e[0], e[1], e[2], e[3]
        );
    }
    println!();

    heading("T3  Table 3: cache references per cycle");
    for row in suite.table3_cache_refs() {
        println!("  {row}");
    }
    println!("  paper rows:");
    for (name, il1, dl1) in paper::TABLE3 {
        println!(
            "  {name:<9} iL1 {:5.2} {:5.2} {:5.2} {:5.2}  dL1 {:5.2} {:5.2} {:5.2} {:5.2}",
            il1[0], il1[1], il1[2], il1[3], dl1[0], dl1[1], dl1[2], dl1[3]
        );
    }
    println!();

    heading("T4  Table 4: kernel-service breakdown (per benchmark)");
    for row in suite.table4_kernel_services() {
        print!("{row}");
    }
    println!("  paper: utlb dominates kernel cycles in every benchmark, and its");
    println!("  energy share is consistently LOWER than its cycle share:");
    for (name, cyc, en) in paper::TABLE4_UTLB {
        println!("    {name:<9} utlb cycles {cyc:5.1}%  energy {en:5.1}%");
    }
    println!();

    heading("T5  Table 5: per-invocation energy variation (pooled)");
    for row in suite.table5_service_variation() {
        println!("  {row}");
    }
    println!("  paper (mean J, CoD%):");
    for (name, mean, cod) in paper::TABLE5 {
        println!("    {name:<12} mean {mean:9.3e} J  CoD {cod:6.2}%");
    }
    println!("  paper shape: internal services (utlb/demand_zero/cacheflush) vary");
    println!("  far less than externally-invoked I/O calls (read/write/open).");
    println!();

    phase.finish();
    let phase = softwatt_obs::span("phase.extensions_ns");
    print_extensions(&suite);
    phase.finish();

    if caching {
        // The warm-run contract (`tests/trace_store.rs`, CI) is "0 full
        // simulations": every trace comes from the store, every bundle
        // from replay. Stdout stays byte-identical either way.
        eprintln!(
            "trace cache: {} full simulations, {} traces loaded from store, {} replays",
            suite.runs_executed(),
            suite.store_loads(),
            suite.replays_derived()
        );
    }

    if let Err(e) = obs.finish() {
        eprintln!("{e}");
        std::process::exit(1);
    }
}

/// The surrogate accuracy gate: calibrate, then compare the surrogate's
/// predicted total CPU energy against the exact tier on every paper-grid
/// cell. Returns whether the worst cell is inside the gate (the model's
/// declared error bound, capped at 5%).
fn run_surrogate_gate(suite: &ExperimentSuite, time_scale: f64, jobs: usize) -> bool {
    let grid = suite.paper_grid();
    println!(
        "SoftWatt surrogate accuracy gate (time scale {time_scale}x, {} cells)\n",
        grid.len()
    );
    let model = suite.calibrate_surrogate(jobs);
    println!(
        "model: {} training window(s), declared error bound {:.2}%\n",
        model.trained_windows, model.error_bound_pct
    );
    println!(
        "{:<10} {:<6} {:<9} {:>14} {:>14} {:>8}",
        "benchmark", "cpu", "disk", "exact J", "surrogate J", "err %"
    );
    let mut max_err = 0.0f64;
    let mut worst = String::from("-");
    // (sum of |err|%, cells) per benchmark, printed as the per-benchmark
    // mean that EXPERIMENTS.md quotes.
    let mut by_benchmark: Vec<(String, f64, usize)> = Vec::new();
    for key in grid {
        let workload = key.workload.label();
        let bundle = suite.run_key(key);
        let exact = bundle.model.mode_table(&bundle.run.log).total_energy_j();
        let est = model
            .estimate(&workload, key.cpu.name(), key.disk.name())
            .expect("calibration covers the whole paper grid");
        let err = 100.0 * (est.total_energy_j - exact).abs() / exact.max(1e-12);
        println!(
            "{:<10} {:<6} {:<9} {:>14.6} {:>14.6} {:>8.4}",
            workload,
            key.cpu.name(),
            key.disk.name(),
            exact,
            est.total_energy_j,
            err
        );
        let cell = format!("{}/{}/{}", workload, key.cpu.name(), key.disk.name());
        if err > max_err {
            max_err = err;
            worst = cell;
        }
        match by_benchmark
            .iter_mut()
            .find(|(name, _, _)| name == &workload)
        {
            Some((_, sum, n)) => {
                *sum += err;
                *n += 1;
            }
            None => by_benchmark.push((workload, err, 1)),
        }
    }
    println!("\nper-benchmark mean error:");
    for (name, sum, n) in &by_benchmark {
        println!("  {name:<10} {:.4}%", sum / *n as f64);
    }
    let gate = model.error_bound_pct.min(5.0);
    println!("\nmax error {max_err:.4}% ({worst}); gate {gate:.2}%");
    let passed = max_err <= gate;
    println!("GATE: {}", if passed { "PASS" } else { "FAIL" });
    passed
}

fn print_extensions(suite: &ExperimentSuite) {
    heading("X1  extension: kernel share, single-issue vs 4-wide (paper §3.2)");
    let rows = suite.ext_kernel_share_by_width();
    for row in &rows {
        println!("  {row}");
    }
    let mean = |f: fn(&softwatt::experiments::KernelShareRow) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    println!(
        "  mean {:.1}% -> {:.1}%  (paper: 14.28% -> 21.02%)\n",
        mean(|r| r.single_issue_pct),
        mean(|r| r.superscalar_pct)
    );

    heading("X2  extension: count-based kernel-energy estimation (paper §3.3)");
    for row in suite.ext_kernel_energy_estimate() {
        println!("  {row}");
    }
    println!("  (paper: estimation from invocation counts is accurate to ~10%)\n");

    heading("X3  extension: whole-run power metrics (average, peak, EDP)");
    for row in suite.ext_power_metrics() {
        println!("  {row}");
    }
    println!();

    heading("X4  extension: the unused SLEEP state, exercised");
    for row in suite.ext_sleep_study() {
        println!("  {row}");
    }
    println!("  (the paper leaves SLEEP unused; the studied workloads never");
    println!("   quiesce past the SLEEP latency, so it changes nothing here —");
    println!("   the crossover sweep below shows where it WOULD pay)");
    println!();

    heading("X5  extension: policy crossover vs inter-request gap (paper §4 rule)");
    for row in suite.ext_policy_crossover() {
        println!("  {row}");
    }
    println!("  (the spin-down threshold pays once the gap far exceeds the 10s");
    println!("   spin-down+spin-up round trip; SLEEP wins on very long gaps)");
    println!();

    heading("X6  extension: conditional-clocking styles (Wattch CC1/CC2/CC3)");
    for row in suite.ext_gating_study() {
        println!("  {row}");
    }
    println!("  (the paper's simple conditional clocking is the gated style)");
    println!();

    heading("X7  extension: L1 I-cache design sweep (jess)");
    for row in suite.ext_l1i_sweep() {
        println!("  {row}");
    }
    println!("  (bigger arrays cost more per access; smaller ones refill more —");
    println!("   the budget shifts between L1I and L2I exactly as the analytical");
    println!("   models predict)");
    println!();

    heading("X8  extension: first-order technology projection (jess run)");
    for row in suite.ext_technology_projection() {
        println!("  {row}");
    }
    println!("  (constant-field scaling: smaller C and V^2 beat the higher clock)");
}

fn heading(text: &str) {
    println!("==== {text} ====");
}

fn print_profile_sparkline(
    label: &str,
    series: &softwatt::experiments::ProfileSeries,
    mode_index: usize,
) {
    const GLYPHS: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let buckets = 60usize.min(series.rows.len().max(1));
    let chunk = (series.rows.len() / buckets).max(1);
    let mut line = String::new();
    for c in series.rows.chunks(chunk).take(buckets) {
        let mean = c.iter().map(|r| r.mode_pct[mode_index]).sum::<f64>() / c.len() as f64;
        let idx = ((mean / 100.0) * (GLYPHS.len() - 1) as f64).round() as usize;
        line.push(GLYPHS[idx.min(GLYPHS.len() - 1)]);
    }
    println!("{label} |{line}|");
}
