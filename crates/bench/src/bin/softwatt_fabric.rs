//! Grid distribution over the `swfabric-v1` protocol.
//!
//! Two modes (see `DESIGN.md` §14):
//!
//! - `softwatt-fabric coordinate [--addr HOST:PORT] [--outstanding N]
//!   [--lease-timeout-s S] [--idle-timeout-s S] [--out FILE]` — listen
//!   for workers, farm out the paper grid's 37 cells, and write the
//!   collected `softwatt-run-v1` bodies (in deterministic cell order,
//!   byte-stable across cluster shapes) as one JSON array to `--out`
//!   (default stdout). Prints `coordinating on HOST:PORT` once bound so
//!   scripts can discover an ephemeral port.
//! - `softwatt-fabric work --coordinator HOST:PORT [--scale S]
//!   [--trace-cache DIR] [--capacity N] [--name LABEL]` — connect to a
//!   coordinator and compute granted cells until `Done`. Workers share
//!   nothing; pointing several at one coordinator from different
//!   machines is the cluster. A worker given `--trace-cache` replays
//!   cached traces instead of simulating, same as the server.

use std::io::Write as _;
use std::net::TcpListener;
use std::time::Duration;

use softwatt::{ExperimentSuite, SystemConfig};
use softwatt_bench::{parse_positive_count, ObsFlags};
use softwatt_fabric::grid::{coordinate, work, Cell, CoordinateOpts};

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: softwatt-fabric coordinate [--addr HOST:PORT] [--outstanding N] \
         [--lease-timeout-s S] [--idle-timeout-s S] [--out FILE] {obs}\n   or: \
         softwatt-fabric work --coordinator HOST:PORT [--scale S] [--trace-cache DIR] \
         [--capacity N] [--name LABEL] {obs}",
        obs = ObsFlags::USAGE
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("coordinate") => coordinate_main(args),
        Some("work") => work_main(args),
        Some(other) => usage_exit(&format!("unknown mode '{other}'")),
        None => usage_exit("a mode is required"),
    }
}

fn coordinate_main(mut args: impl Iterator<Item = String>) {
    let mut addr = String::from("127.0.0.1:0");
    let mut opts = CoordinateOpts::default();
    let mut out = None;
    let mut obs = ObsFlags::default();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--out" => out = Some(value("--out")),
            "--outstanding" => {
                opts.outstanding_per_worker =
                    parse_positive_count("--outstanding", Some(value("--outstanding")), "grants")
                        .unwrap_or_else(|e| usage_exit(&e)) as u64;
            }
            "--lease-timeout-s" => match value("--lease-timeout-s").parse::<u64>() {
                Ok(s) if s > 0 => opts.lease_timeout = Duration::from_secs(s),
                _ => usage_exit("--lease-timeout-s needs a positive integer"),
            },
            "--idle-timeout-s" => match value("--idle-timeout-s").parse::<u64>() {
                Ok(s) if s > 0 => opts.idle_timeout = Some(Duration::from_secs(s)),
                _ => usage_exit("--idle-timeout-s needs a positive integer"),
            },
            other => match obs.try_parse(other, || Some(value(other))) {
                Ok(true) => {}
                Ok(false) => usage_exit(&format!("unknown flag {other}")),
                Err(e) => usage_exit(&e),
            },
        }
    }
    obs.activate();

    // The grid is fixed and suite-independent: every worker owns its own
    // suite, so the coordinator never needs one — only the cell labels.
    let suite = match ExperimentSuite::new(SystemConfig::default()) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    let cells: Vec<Cell> = suite
        .paper_grid()
        .into_iter()
        .map(Cell::from_run_key)
        .collect();

    let listener = match TcpListener::bind(addr.as_str()) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    let bound = listener.local_addr().expect("bound address");
    println!("coordinating on {bound}");
    let _ = std::io::stdout().flush();
    eprintln!(
        "softwatt-fabric: {} cell(s), outstanding {} per worker, lease timeout {:?}",
        cells.len(),
        opts.outstanding_per_worker,
        opts.lease_timeout
    );

    let bodies = match coordinate(listener, &cells, &opts) {
        Ok(bodies) => bodies,
        Err(e) => {
            eprintln!("coordination failed: {e}");
            std::process::exit(1);
        }
    };
    let mut doc = String::from("{\"schema\": \"softwatt-grid-v1\", \"results\": [");
    for (i, body) in bodies.iter().enumerate() {
        if i > 0 {
            doc.push_str(", ");
        }
        match std::str::from_utf8(body) {
            Ok(text) => doc.push_str(text),
            Err(_) => {
                eprintln!("worker returned a non-UTF-8 body for cell {i}");
                std::process::exit(1);
            }
        }
    }
    doc.push_str(&format!("], \"cells\": {}}}\n", bodies.len()));
    let wrote = match out {
        Some(path) => std::fs::write(&path, &doc)
            .map(|()| eprintln!("softwatt-fabric: wrote {} cells to {path}", bodies.len())),
        None => std::io::stdout().write_all(doc.as_bytes()),
    };
    if let Err(e) = wrote {
        eprintln!("writing results failed: {e}");
        std::process::exit(1);
    }
    if let Err(e) = obs.finish() {
        eprintln!("{e}");
        std::process::exit(1);
    }
}

fn work_main(mut args: impl Iterator<Item = String>) {
    let mut coordinator = None;
    let mut scale = 2000.0f64;
    let mut trace_cache = None;
    let mut capacity = 2u64;
    let mut name = format!("worker-{}", std::process::id());
    let mut obs = ObsFlags::default();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--coordinator" => coordinator = Some(value("--coordinator")),
            "--scale" => match value("--scale").parse() {
                Ok(v) if v > 0.0 => scale = v,
                _ => usage_exit("--scale needs a positive number"),
            },
            "--trace-cache" => trace_cache = Some(value("--trace-cache")),
            "--capacity" => {
                capacity = parse_positive_count("--capacity", Some(value("--capacity")), "grants")
                    .unwrap_or_else(|e| usage_exit(&e)) as u64;
            }
            "--name" => name = value("--name"),
            other => match obs.try_parse(other, || Some(value(other))) {
                Ok(true) => {}
                Ok(false) => usage_exit(&format!("unknown flag {other}")),
                Err(e) => usage_exit(&e),
            },
        }
    }
    obs.activate();
    let Some(coordinator) = coordinator else {
        usage_exit("--coordinator is required");
    };
    let addr = match std::net::ToSocketAddrs::to_socket_addrs(&coordinator.as_str())
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(addr) => addr,
        None => usage_exit(&format!("cannot resolve coordinator '{coordinator}'")),
    };

    let system = SystemConfig {
        time_scale: scale,
        ..SystemConfig::default()
    };
    let mut suite = match ExperimentSuite::new(system) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    match softwatt_bench::open_trace_store(trace_cache) {
        Ok(Some(store)) => {
            let dir = store.dir().display().to_string();
            suite = suite.with_trace_store(store);
            let loaded = suite.prewarm_from_store(&suite.paper_grid());
            eprintln!("warm start: {loaded} trace(s) loaded from {dir}");
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }

    eprintln!("softwatt-fabric: {name} joining {addr} (capacity {capacity})");
    match work(addr, &name, &suite, capacity) {
        Ok(computed) => {
            eprintln!("softwatt-fabric: {name} computed {computed} cell(s), done");
        }
        Err(e) => {
            eprintln!("worker failed: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = obs.finish() {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
