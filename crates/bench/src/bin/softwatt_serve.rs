//! The SoftWatt power-estimation query service.
//!
//! Boots one shared, memoizing [`ExperimentSuite`] and serves it over
//! HTTP/1.1 (see the `softwatt-serve` crate and `DESIGN.md` §server):
//! `POST /v1/run`, `POST /v1/batch`, `GET /v1/figures/{name}`,
//! `GET /healthz`, `GET /metrics`, `POST /admin/shutdown`.
//!
//! Usage: `softwatt-serve [--addr HOST:PORT] [--scale S] [--workers N|auto]
//! [--queue-depth N] [--cold-workers N|auto] [--cold-queue-depth N]
//! [--max-connections N] [--trace-cache DIR] [--trace-cache-max-bytes N]
//! [--peers HOST:PORT,...] [--advertise HOST:PORT] [--surrogate]
//! [--metrics] [--metrics-out FILE] [--log-level LEVEL]`
//! (defaults: addr `127.0.0.1:0` — an ephemeral port — scale 2000, the
//! committed-fidelity setting; pass e.g. `--scale 50000` for a fast
//! smoke instance).
//!
//! `--peers` joins the distributed trace fabric: the listed servers plus
//! this one form a consistent-hash ring over trace keys, and a local
//! trace miss fetches the owning peer's `swtrace-v1` bytes before
//! falling back to simulation (see `DESIGN.md` §14). Requires a fixed
//! port (`--addr HOST:PORT` or `--advertise HOST:PORT`) so every member
//! hashes the same membership. `--trace-cache-max-bytes` soft-caps the
//! trace cache directory, evicting oldest-mtime entries on write.
//!
//! `--trace-cache DIR` (or `SOFTWATT_TRACE_CACHE`) attaches the
//! persistent trace store and warm-starts the service: every paper-grid
//! trace the store already has is loaded *before* the `listening on` line
//! is printed, so first-touch requests replay instead of simulating —
//! this is what turns the cold-start p99 tail into a warm one.
//!
//! `--surrogate` calibrates the counter-driven surrogate model before the
//! `listening on` line (loading a persisted model from the trace-cache
//! directory when one matches, else prewarming the paper grid and
//! fitting), so `/v1/run` queries carrying `"fidelity": "surrogate"` are
//! answered on the reactor thread in microseconds. The model then refits
//! in the background as new full simulations land.
//!
//! The one stdout line is `listening on HOST:PORT`, printed once the
//! socket is bound, so scripts can discover the ephemeral port. SIGINT /
//! SIGTERM (and `POST /admin/shutdown`) drain in-flight work, flush the
//! observability outputs, and exit 0.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use softwatt::{ExperimentSuite, SystemConfig};
use softwatt_bench::{parse_count_or_auto, ObsFlags};
use softwatt_fabric::PeerClient;
use softwatt_serve::{ServeConfig, Server, ShutdownHandle};

/// Set by the signal handler; a watcher thread forwards it to the server.
static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only an atomic store: async-signal-safe.
    SIGNALED.store(true, Ordering::SeqCst);
}

/// Routes SIGINT and SIGTERM to [`on_signal`]. `std` already links libc,
/// so declaring `signal(2)` directly avoids any new dependency.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let mut addr = String::from("127.0.0.1:0");
    let mut scale = 2000.0f64;
    let mut config = ServeConfig::default();
    let mut obs = ObsFlags::default();
    let mut trace_cache = None;
    let mut trace_cache_max_bytes = None;
    let mut surrogate = false;
    let mut peers: Vec<String> = Vec::new();
    let mut advertise = None;
    fn usage_exit(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: softwatt-serve [--addr HOST:PORT] [--scale S] [--workers N|auto] \
             [--queue-depth N] [--cold-workers N|auto] [--cold-queue-depth N] \
             [--max-connections N] [--trace-cache DIR] [--trace-cache-max-bytes N] \
             [--peers HOST:PORT,...] [--advertise HOST:PORT] [--surrogate] {}",
            ObsFlags::USAGE
        );
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        let mut count = |flag: &str, what: &str| {
            parse_count_or_auto(flag, Some(value(flag)), what).unwrap_or_else(|e| usage_exit(&e))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--scale" => match value("--scale").parse() {
                Ok(v) if v > 0.0 => scale = v,
                _ => usage_exit("--scale needs a positive number"),
            },
            "--trace-cache" => trace_cache = Some(value("--trace-cache")),
            "--trace-cache-max-bytes" => match value("--trace-cache-max-bytes").parse::<u64>() {
                Ok(v) if v > 0 => trace_cache_max_bytes = Some(v),
                _ => usage_exit("--trace-cache-max-bytes needs a positive byte count"),
            },
            "--peers" => {
                peers = value("--peers")
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--advertise" => advertise = Some(value("--advertise")),
            "--surrogate" => surrogate = true,
            "--workers" => config.workers = count("--workers", "thread count"),
            "--queue-depth" => config.queue_depth = count("--queue-depth", "queue capacity"),
            "--cold-workers" => config.cold_workers = count("--cold-workers", "thread count"),
            "--cold-queue-depth" => {
                config.cold_queue_depth = count("--cold-queue-depth", "queue capacity");
            }
            "--max-connections" => {
                config.max_connections = count("--max-connections", "connection count");
            }
            other => match obs.try_parse(other, || Some(value(other))) {
                Ok(true) => {}
                Ok(false) => usage_exit(&format!("unknown flag {other}")),
                Err(e) => usage_exit(&e),
            },
        }
    }
    obs.activate();

    let system = SystemConfig {
        time_scale: scale,
        ..SystemConfig::default()
    };
    let mut suite = match ExperimentSuite::new(system) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    match softwatt_bench::open_trace_store(trace_cache) {
        Ok(Some(store)) => {
            let store = store.with_max_bytes(trace_cache_max_bytes);
            let dir = store.dir().display().to_string();
            suite = suite.with_trace_store(store);
            // Warm start: pull whatever the store already has for the paper
            // grid into the memo now, so it happens before the `listening
            // on` line rather than inside a request's latency budget. Pairs
            // the store lacks are simulated (and persisted) on first touch.
            let loaded = suite.prewarm_from_store(&suite.paper_grid());
            eprintln!("warm start: {loaded} trace(s) loaded from {dir}");
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
    if !peers.is_empty() {
        // The ring identity must be known before bind: every cluster
        // member hashes the same advertised addresses, so an ephemeral
        // port (unknowable to peers) cannot join a fabric.
        let self_node = advertise.clone().unwrap_or_else(|| addr.clone());
        if self_node.ends_with(":0") {
            eprintln!(
                "--peers needs a fixed port: pass --addr HOST:PORT or --advertise HOST:PORT \
                 matching what the peers were given"
            );
            std::process::exit(2);
        }
        let fabric = PeerClient::new(
            self_node.clone(),
            &peers,
            softwatt_fabric::DEFAULT_FETCH_TIMEOUT,
        );
        eprintln!(
            "fabric: {} node(s) in the ring, advertising as {self_node}",
            fabric.ring().len()
        );
        suite = suite.with_peer_source(Arc::new(fabric));
    }
    if surrogate {
        // Calibrate before binding: a persisted model loads in
        // milliseconds; a cold calibration prewarms the paper grid (also
        // warming the exact tiers) and fits. Either way the surrogate
        // lane is live before the first request can arrive.
        let model = suite.calibrate_surrogate(softwatt_bench::auto_parallelism());
        eprintln!(
            "surrogate: calibrated over {} window(s), error bound {:.2}%",
            model.trained_windows, model.error_bound_pct
        );
    }
    let suite = Arc::new(suite);
    let server = match Server::bind(addr.as_str(), suite, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let bound = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    install_signal_handlers();
    spawn_signal_watcher(server.shutdown_handle());

    // The contract with scripts: exactly one stdout line with the bound
    // address (the port is ephemeral by default), flushed immediately.
    println!("listening on {bound}");
    let _ = std::io::stdout().flush();
    eprintln!(
        "softwatt-serve: scale {scale}x, endpoints /healthz /metrics /v1/run /v1/batch \
         /v1/figures/* /admin/shutdown"
    );

    server.run();
    eprintln!("softwatt-serve: drained, shutting down");
    if let Err(e) = obs.finish() {
        eprintln!("{e}");
        std::process::exit(1);
    }
}

/// Polls the signal flag and forwards it to the server's shutdown handle.
/// The thread is never joined: the process exits right after `run()`
/// returns.
fn spawn_signal_watcher(handle: ShutdownHandle) {
    std::thread::Builder::new()
        .name("signal-watcher".into())
        .spawn(move || loop {
            if SIGNALED.load(Ordering::SeqCst) {
                handle.trigger();
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        })
        .expect("spawn signal watcher");
}
