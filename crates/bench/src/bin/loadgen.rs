//! Load generator for the softwatt-serve service.
//!
//! Hammers a server with a deterministic mixed workload — single runs
//! rotating over every benchmark/disk pair, figure renders, health and
//! metrics probes — from N concurrent keep-alive connections, and writes
//! throughput, latency percentiles, and status counts as JSON.
//!
//! Usage: `loadgen [--addr HOST:PORT] [--scale S] [--connections N]
//! [--requests N] [--workers N] [--out FILE]`
//! (defaults: no addr — spawn an in-process server over real TCP —
//! scale 50000 for fast simulations, 8 connections x 40 requests,
//! workers = available parallelism, out `BENCH_server.json`).

use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use softwatt::experiments::DiskSetup;
use softwatt::{Benchmark, ExperimentSuite, SystemConfig};
use softwatt_bench::parse_positive_count;
use softwatt_serve::client::Client;
use softwatt_serve::{ServeConfig, Server};

/// One worker's tally.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    ok_2xx: u64,
    client_4xx: u64,
    backpressure_503: u64,
    server_5xx: u64,
    transport_errors: u64,
}

fn main() {
    let mut addr: Option<String> = None;
    let mut scale = 50_000.0f64;
    let mut connections = 8usize;
    let mut requests = 40usize;
    let mut workers = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut out = String::from("BENCH_server.json");
    fn usage_exit(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: loadgen [--addr HOST:PORT] [--scale S] [--connections N] \
             [--requests N] [--workers N] [--out FILE]"
        );
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        let mut count = |flag: &str, what: &str| {
            parse_positive_count(flag, Some(value(flag)), what).unwrap_or_else(|e| usage_exit(&e))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--scale" => match value("--scale").parse() {
                Ok(v) if v > 0.0 => scale = v,
                _ => usage_exit("--scale needs a positive number"),
            },
            "--connections" => connections = count("--connections", "connection count"),
            "--requests" => requests = count("--requests", "request count"),
            "--workers" => workers = count("--workers", "thread count"),
            "--out" => out = value("--out"),
            other => usage_exit(&format!("unknown flag {other}")),
        }
    }

    // Target: an external server, or an in-process one over real TCP.
    let (target, local_server) = match addr {
        Some(addr) => {
            let target: SocketAddr = addr
                .parse()
                .unwrap_or_else(|_| usage_exit("--addr needs HOST:PORT"));
            (target, None)
        }
        None => {
            let system = SystemConfig {
                time_scale: scale,
                ..SystemConfig::default()
            };
            let suite = Arc::new(ExperimentSuite::new(system).unwrap_or_else(|e| usage_exit(&e)));
            let config = ServeConfig {
                workers,
                ..ServeConfig::default()
            };
            let server =
                Server::bind("127.0.0.1:0", suite, config).unwrap_or_else(|e| usage_exit(&e));
            let target = server.local_addr().unwrap_or_else(|e| usage_exit(&e));
            let handle = server.shutdown_handle();
            let thread = std::thread::spawn(move || server.run());
            (target, Some((handle, thread)))
        }
    };
    eprintln!(
        "loadgen: {connections} connection(s) x {requests} request(s) against {target} \
         (scale {scale}x)"
    );

    let started = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|conn| {
            std::thread::Builder::new()
                .name(format!("loadgen-{conn}"))
                .spawn(move || run_connection(target, conn, requests))
                .expect("spawn loadgen connection")
        })
        .collect();
    let mut total = Tally::default();
    for handle in handles {
        let tally = handle.join().expect("loadgen connection panicked");
        total.latencies_us.extend(tally.latencies_us);
        total.ok_2xx += tally.ok_2xx;
        total.client_4xx += tally.client_4xx;
        total.backpressure_503 += tally.backpressure_503;
        total.server_5xx += tally.server_5xx;
        total.transport_errors += tally.transport_errors;
    }
    let wall_s = started.elapsed().as_secs_f64();

    if let Some((handle, thread)) = local_server {
        handle.trigger();
        thread.join().expect("server thread panicked");
    }

    total.latencies_us.sort_unstable();
    let sent = (connections * requests) as u64;
    let answered = total.latencies_us.len() as u64;
    let pct = |p: f64| -> u64 {
        if total.latencies_us.is_empty() {
            return 0;
        }
        let rank = (p * (total.latencies_us.len() - 1) as f64).round() as usize;
        total.latencies_us[rank]
    };
    let json = format!(
        "{{\n  \"schema\": \"softwatt-bench-server-v1\",\n  \"time_scale\": {scale},\n  \
         \"connections\": {connections},\n  \"requests_per_connection\": {requests},\n  \
         \"requests_sent\": {sent},\n  \"responses\": {answered},\n  \
         \"wall_s\": {wall_s:.6},\n  \"throughput_rps\": {:.2},\n  \
         \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}},\n  \
         \"status\": {{\"2xx\": {}, \"4xx\": {}, \"503\": {}, \"5xx\": {}, \
         \"transport_errors\": {}}}\n}}\n",
        answered as f64 / wall_s.max(1e-9),
        pct(0.50),
        pct(0.90),
        pct(0.99),
        total.latencies_us.last().copied().unwrap_or(0),
        total.ok_2xx,
        total.client_4xx,
        total.backpressure_503,
        total.server_5xx,
        total.transport_errors,
    );
    print!("{json}");
    if let Err(e) = std::fs::File::create(&out).and_then(|mut f| f.write_all(json.as_bytes())) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}

/// The deterministic request mix for request `i` on connection `conn`:
/// mostly single runs rotating over the benchmark/disk grid, with figure,
/// health, and metrics probes folded in. No randomness — reruns are
/// reproducible and the memo hit pattern is stable.
fn request_for(conn: usize, i: usize) -> (&'static str, String, String) {
    let n = conn * 7919 + i; // offset per connection so mixes interleave
    match n % 10 {
        0 => ("GET", "/healthz".into(), String::new()),
        5 => {
            let figures = ["fig6", "fig9", "table4", "validation"];
            let name = figures[(n / 10) % figures.len()];
            ("GET", format!("/v1/figures/{name}"), String::new())
        }
        9 => ("GET", "/metrics".into(), String::new()),
        _ => {
            let benchmark = Benchmark::ALL[n % Benchmark::ALL.len()];
            let disk = [DiskSetup::Conventional, DiskSetup::IdleOnly][(n / 6) % 2];
            let body = format!(
                "{{\"benchmark\": \"{}\", \"disk\": \"{}\"}}",
                benchmark.name(),
                disk.name()
            );
            ("POST", "/v1/run".into(), body)
        }
    }
}

fn run_connection(target: SocketAddr, conn: usize, requests: usize) -> Tally {
    let mut tally = Tally::default();
    // Generous timeout: the first run on a cold key simulates for real.
    let mut client = match Client::connect(target, Duration::from_secs(300)) {
        Ok(client) => client,
        Err(_) => {
            tally.transport_errors += requests as u64;
            return tally;
        }
    };
    for i in 0..requests {
        let (method, path, body) = request_for(conn, i);
        let started = Instant::now();
        match client.request(method, &path, &body) {
            Ok(resp) => {
                tally
                    .latencies_us
                    .push(started.elapsed().as_micros() as u64);
                match resp.status {
                    200..=299 => tally.ok_2xx += 1,
                    503 => tally.backpressure_503 += 1,
                    400..=499 => tally.client_4xx += 1,
                    _ => tally.server_5xx += 1,
                }
                // A 503 closes nothing, but the server may close on
                // errors it wrote with Connection: close; reconnect then.
                if resp.header("connection") == Some("close") {
                    match Client::connect(target, Duration::from_secs(300)) {
                        Ok(fresh) => client = fresh,
                        Err(_) => {
                            tally.transport_errors += (requests - i - 1) as u64;
                            break;
                        }
                    }
                }
            }
            Err(_) => {
                tally.transport_errors += 1;
                match Client::connect(target, Duration::from_secs(300)) {
                    Ok(fresh) => client = fresh,
                    Err(_) => {
                        tally.transport_errors += (requests - i - 1) as u64;
                        break;
                    }
                }
            }
        }
    }
    tally
}
