//! Load generator for the softwatt-serve service.
//!
//! Hammers a server with a deterministic mixed workload — single runs
//! rotating over every benchmark/disk pair, figure renders, health and
//! metrics probes — from N concurrent keep-alive connections, and writes
//! throughput, latency percentiles (overall and per admission lane), and
//! status counts as JSON.
//!
//! The driver is epoll-multiplexed: one thread owns every connection
//! (closed loop, one outstanding request each), so hundreds of
//! connections cost hundreds of sockets, not hundreds of OS threads.
//! That is what makes 200+ connections honest on a small box — with
//! thread-per-connection the scheduler noise of the clients themselves
//! dominates the tail latencies being measured.
//!
//! Usage: `loadgen [--addr HOST:PORT] [--scale S] [--connections N]
//! [--requests N] [--warmup N] [--workers N|auto] [--cold-grid]
//! [--surrogate] [--inline-spec] [--trace-cache DIR] [--out FILE]`
//! (defaults: no addr — spawn an in-process server over real TCP —
//! scale 50000 for fast simulations, 8 connections x 40 requests,
//! 0 warm-up requests, workers = available parallelism, out
//! `BENCH_server.json`).
//!
//! One slot in ten of the request mix asks for `"fidelity": "surrogate"`.
//! With `--surrogate` the in-process server calibrates the surrogate
//! model before serving, so those land on the reactor-thread surrogate
//! lane (the report's `fidelity` section pins their sub-millisecond
//! percentiles); without it they fall through to the exact tiers, which
//! answer them identically minus the speed.
//!
//! `--warmup N` sends N unrecorded requests per connection (the same
//! deterministic mix, same indices) before the measured phase; their
//! latencies are reported separately so cold-start and steady-state tails
//! can be told apart. A barrier between the phases keeps warm-up traffic
//! out of the measured wall-clock.
//!
//! `--cold-grid` stresses the tiered admission: while the measured mix
//! runs, one extra connection submits the full paper grid as a cold
//! `POST /v1/batch`, and three more ask for the same cold key at once —
//! the duplicate-run probe behind the `serve.dedup_attached` metric. The
//! point the report makes is that warm (inline-lane) percentiles stay
//! flat while all of that churns on the cold lane.
//!
//! `--inline-spec` swaps one run slot in ten for a `POST /v1/run` whose
//! body carries a full user-defined workload spec (softwatt-spec-v1)
//! instead of a canned benchmark name. The first such request costs a
//! full simulation; every later one (including from other connections)
//! must resolve through the spec's content hash to the memo or replay
//! tiers, so the lane attribution shows the spec path riding the same
//! admission machinery as the canned keys.
//!
//! `--trace-cache DIR` hands the in-process server a persistent trace
//! store and warm-starts it from disk, exactly like `softwatt-serve
//! --trace-cache`; with `--addr` the flag is ignored (the external server
//! owns its cache). Lane attribution reads each response's
//! `X-Softwatt-Lane` header; the queue high-water marks and dedup count
//! come from one `GET /metrics` probe after the measured phase.

use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use softwatt::experiments::DiskSetup;
use softwatt::{Benchmark, CpuModel, ExperimentSuite, SystemConfig};
use softwatt_bench::parse_count_or_auto;
use softwatt_serve::client::Client;
use softwatt_serve::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use softwatt_serve::{ServeConfig, Server};

/// Generous request timeout: the first run on a cold key simulates for
/// real, and a cold-grid batch is many of those back to back.
const TIMEOUT: Duration = Duration::from_secs(300);

/// The cold key three `--cold-grid` connections request simultaneously.
/// Last in the paper grid, so the concurrent batch computes it last and
/// the dedup window stays wide open.
const DEDUP_BODY: &str = r#"{"benchmark": "jess", "cpu": "mipsy"}"#;
/// How many connections send [`DEDUP_BODY`] at once.
const DEDUP_CONNS: usize = 3;

/// Whether the request mix swaps one run slot in ten for an inline-spec
/// post (`--inline-spec`). Global because the mix function is pure
/// per-index; set once before the mux starts.
static INLINE_SPEC: AtomicBool = AtomicBool::new(false);

/// The spec body those slots post: canned jess content under a custom
/// name, so the server sees a user-defined workload it has never heard
/// of and must admit through the spec codec and validation gate.
fn inline_spec_json() -> &'static str {
    static SPEC: OnceLock<String> = OnceLock::new();
    SPEC.get_or_init(|| {
        let mut spec = Benchmark::Jess.spec();
        spec.name = "loadgen-inline".to_string();
        softwatt::json::benchmark_spec(&spec)
    })
}

/// One worker's tally. Warm-up latencies are kept apart from the measured
/// ones; warm-up statuses are not counted at all. Measured latencies are
/// additionally attributed to the admission lane the server reported.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    warmup_latencies_us: Vec<u64>,
    surrogate_us: Vec<u64>,
    inline_us: Vec<u64>,
    replay_us: Vec<u64>,
    cold_us: Vec<u64>,
    ok_2xx: u64,
    client_4xx: u64,
    backpressure_503: u64,
    server_5xx: u64,
    transport_errors: u64,
    /// Responses that carried an `X-Softwatt-Fidelity` header.
    fidelity_tagged: u64,
    /// Largest `X-Softwatt-Error-Bound-Pct` seen (`None` if never sent).
    error_bound_pct: Option<f64>,
}

/// What the `--cold-grid` side traffic observed.
struct ColdGridStats {
    batch_status: u16,
    batch_wall_s: f64,
    /// `503` bounces absorbed before the batch was admitted.
    batch_retries: u32,
    /// (status, lane) per duplicate-key run, in completion order.
    dedup: Vec<(u16, String)>,
}

fn main() {
    let mut addr: Option<String> = None;
    let mut scale = 50_000.0f64;
    let mut connections = 8usize;
    let mut requests = 40usize;
    let mut warmup = 0usize;
    let mut workers = softwatt_bench::auto_parallelism();
    let mut cold_grid = false;
    let mut surrogate = false;
    let mut inline_spec = false;
    let mut trace_cache: Option<String> = None;
    let mut out = String::from("BENCH_server.json");
    fn usage_exit(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: loadgen [--addr HOST:PORT] [--scale S] [--connections N] \
             [--requests N] [--warmup N] [--workers N|auto] [--cold-grid] \
             [--surrogate] [--inline-spec] [--trace-cache DIR] [--out FILE]"
        );
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        let mut count = |flag: &str, what: &str| {
            parse_count_or_auto(flag, Some(value(flag)), what).unwrap_or_else(|e| usage_exit(&e))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--scale" => match value("--scale").parse() {
                Ok(v) if v > 0.0 => scale = v,
                _ => usage_exit("--scale needs a positive number"),
            },
            "--connections" => connections = count("--connections", "connection count"),
            "--requests" => requests = count("--requests", "request count"),
            "--warmup" => match value("--warmup").parse() {
                // 0 is fine: it just means "no warm-up phase".
                Ok(v) => warmup = v,
                Err(_) => usage_exit("--warmup needs a request count"),
            },
            "--workers" => workers = count("--workers", "thread count"),
            "--cold-grid" => cold_grid = true,
            "--surrogate" => surrogate = true,
            "--inline-spec" => inline_spec = true,
            "--trace-cache" => trace_cache = Some(value("--trace-cache")),
            "--out" => out = value("--out"),
            other => usage_exit(&format!("unknown flag {other}")),
        }
    }

    // Target: an external server, or an in-process one over real TCP.
    let mut caching = false;
    let (target, local_server) = match addr {
        Some(addr) => {
            if trace_cache.is_some() {
                eprintln!("loadgen: --trace-cache ignored with --addr (the server owns its cache)");
            }
            if surrogate {
                eprintln!(
                    "loadgen: --surrogate ignored with --addr (start the server with --surrogate)"
                );
            }
            let target: SocketAddr = addr
                .parse()
                .unwrap_or_else(|_| usage_exit("--addr needs HOST:PORT"));
            (target, None)
        }
        None => {
            // The in-process server's lane/queue metrics feed the report.
            softwatt_obs::set_enabled(true);
            let system = SystemConfig {
                time_scale: scale,
                ..SystemConfig::default()
            };
            let mut suite = ExperimentSuite::new(system).unwrap_or_else(|e| usage_exit(&e));
            match softwatt_bench::open_trace_store(trace_cache.take()) {
                Ok(Some(store)) => {
                    caching = true;
                    let dir = store.dir().display().to_string();
                    suite = suite.with_trace_store(store);
                    let loaded = suite.prewarm_from_store(&suite.paper_grid());
                    eprintln!("loadgen: warm start, {loaded} trace(s) loaded from {dir}");
                }
                Ok(None) => {}
                Err(e) => usage_exit(&e),
            }
            if surrogate {
                let model = suite.calibrate_surrogate(workers);
                eprintln!(
                    "loadgen: surrogate calibrated ({} windows, bound {:.2}%)",
                    model.trained_windows, model.error_bound_pct
                );
            }
            let suite = Arc::new(suite);
            let config = ServeConfig {
                workers,
                max_connections: (connections + DEDUP_CONNS + 16).max(1024),
                ..ServeConfig::default()
            };
            let server = Server::bind("127.0.0.1:0", Arc::clone(&suite), config)
                .unwrap_or_else(|e| usage_exit(&e));
            let target = server.local_addr().unwrap_or_else(|e| usage_exit(&e));
            let handle = server.shutdown_handle();
            let thread = std::thread::spawn(move || server.run());
            (target, Some((suite, handle, thread)))
        }
    };
    eprintln!(
        "loadgen: {connections} connection(s) x {requests} request(s) \
         (+{warmup} warm-up{}) against {target} (scale {scale}x)",
        if cold_grid {
            ", cold grid in flight"
        } else {
            ""
        }
    );

    INLINE_SPEC.store(inline_spec, Ordering::Relaxed);
    let (mut total, wall_s, cold_stats) = run_mux(target, connections, requests, warmup, cold_grid);

    // Unloaded surrogate probe: with the measured closed loop finished,
    // one idle keep-alive connection sends sequential surrogate queries.
    // Their RTT is the surrogate lane's service latency without the
    // saturation queueing the per-lane numbers above include — this is
    // the "answered inline on the reactor" figure.
    let unloaded_surrogate_us = probe_unloaded_surrogate(target);

    // One metrics probe before shutdown: queue high-water marks, dedup.
    let metrics_body = Client::connect(target, TIMEOUT)
        .ok()
        .and_then(|mut c| c.request("GET", "/metrics", "").ok())
        .map(|resp| resp.body);

    // (runs_executed, replays_derived, surrogate_served, store_loads)
    let mut server_stats: Option<(u64, u64, u64, u64)> = None;
    if let Some((suite, handle, thread)) = local_server {
        handle.trigger();
        thread.join().expect("server thread panicked");
        server_stats = Some((
            suite.runs_executed() as u64,
            suite.replays_derived() as u64,
            suite.surrogate_served() as u64,
            suite.store_loads() as u64,
        ));
    }

    total.latencies_us.sort_unstable();
    total.warmup_latencies_us.sort_unstable();
    total.surrogate_us.sort_unstable();
    total.inline_us.sort_unstable();
    total.replay_us.sort_unstable();
    total.cold_us.sort_unstable();
    let sent = (connections * requests) as u64;
    let answered = total.latencies_us.len() as u64;
    let warmed = total.warmup_latencies_us.len() as u64;

    let mut json = String::with_capacity(4096);
    let _ = write!(
        json,
        "{{\n  \"schema\": \"softwatt-bench-server-v4\",\n  \"time_scale\": {scale},\n  \
         \"connections\": {connections},\n  \"requests_per_connection\": {requests},\n  \
         \"warmup_per_connection\": {warmup},\n  \"trace_cache\": {caching},\n  \
         \"cold_grid\": {cold_grid},\n  \"surrogate\": {surrogate},\n  \
         \"inline_spec\": {inline_spec},\n  \
         \"requests_sent\": {sent},\n  \"responses\": {answered},\n  \
         \"wall_s\": {wall_s:.6},\n  \"throughput_rps\": {:.2},\n  \
         \"latency_us\": {},\n  \
         \"lanes\": {{\"surrogate\": {}, \"inline\": {}, \"replay\": {}, \"cold\": {}}},\n  \
         \"fidelity\": {{\"surrogate_enabled\": {surrogate}, \"tagged_responses\": {}, \
         \"error_bound_pct\": {}, \"unloaded_rtt_us\": {}}},\n  \
         \"warmup\": {{\"responses\": {warmed}, \"latency_us\": {}}},\n  \
         \"status\": {{\"2xx\": {}, \"4xx\": {}, \"503\": {}, \"5xx\": {}, \
         \"transport_errors\": {}}}",
        answered as f64 / wall_s.max(1e-9),
        latency_json(&total.latencies_us),
        lane_json(&total.surrogate_us),
        lane_json(&total.inline_us),
        lane_json(&total.replay_us),
        lane_json(&total.cold_us),
        total.fidelity_tagged,
        total
            .error_bound_pct
            .map_or_else(|| "null".into(), |b| format!("{b:?}")),
        if unloaded_surrogate_us.is_empty() {
            "null".into()
        } else {
            latency_json(&unloaded_surrogate_us)
        },
        latency_json(&total.warmup_latencies_us),
        total.ok_2xx,
        total.client_4xx,
        total.backpressure_503,
        total.server_5xx,
        total.transport_errors,
    );
    if let Some(stats) = &cold_stats {
        let dedup: Vec<String> = stats
            .dedup
            .iter()
            .map(|(status, lane)| format!("{{\"status\": {status}, \"lane\": \"{lane}\"}}"))
            .collect();
        let _ = write!(
            json,
            ",\n  \"cold_grid_traffic\": {{\"batch_status\": {}, \"batch_wall_s\": {:.6}, \
             \"batch_retries\": {}, \"dedup_runs\": [{}]}}",
            stats.batch_status,
            stats.batch_wall_s,
            stats.batch_retries,
            dedup.join(", "),
        );
    }
    let metric = |name: &str| -> String {
        metrics_body
            .as_deref()
            .and_then(|body| metric_value(body, name))
            .map_or_else(|| "null".into(), |v| format!("{v}"))
    };
    let _ = write!(
        json,
        ",\n  \"server\": {{\"dedup_attached\": {}, \"queue_depth_max\": \
         {{\"replay\": {}, \"cold\": {}}}, \"connections_open_max\": {}, \
         \"runs_executed\": {}, \"replays_derived\": {}, \
         \"surrogate_served\": {}, \"store_loads\": {}}}\n}}\n",
        metric("serve.dedup_attached"),
        metric("serve.lane.replay.queue_depth_max"),
        metric("serve.lane.cold.queue_depth_max"),
        metric("serve.connections.open_max"),
        server_stats.map_or_else(|| "null".into(), |(r, ..)| r.to_string()),
        server_stats.map_or_else(|| "null".into(), |(_, d, ..)| d.to_string()),
        server_stats.map_or_else(|| "null".into(), |(_, _, s, _)| s.to_string()),
        server_stats.map_or_else(|| "null".into(), |(.., l)| l.to_string()),
    );
    print!("{json}");
    if let Err(e) = std::fs::File::create(&out).and_then(|mut f| f.write_all(json.as_bytes())) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    if let Some((runs, replays, surro, loads)) = server_stats {
        eprintln!(
            "loadgen: suite tallies — {runs} full simulation(s), {replays} replay(s), \
             {surro} surrogate estimate(s), {loads} store load(s)"
        );
    }
    eprintln!("wrote {out}");
}

/// Sequential surrogate queries on one otherwise-idle connection: the
/// round trips of responses the server actually tagged
/// `X-Softwatt-Fidelity: surrogate`, sorted. Empty when the server has
/// no model installed (the requests fall through to the exact tiers) or
/// the connection fails — the report then shows `null`.
fn probe_unloaded_surrogate(target: std::net::SocketAddr) -> Vec<u64> {
    const PROBE_WARMUP: usize = 16;
    const PROBES: usize = 200;
    let body = "{\"benchmark\": \"jess\", \"cpu\": \"mxs\", \"fidelity\": \"surrogate\"}";
    let Ok(mut client) = Client::connect(target, TIMEOUT) else {
        return Vec::new();
    };
    let mut rtts = Vec::with_capacity(PROBES);
    for i in 0..PROBE_WARMUP + PROBES {
        let start = Instant::now();
        let Ok(resp) = client.request("POST", "/v1/run", body) else {
            return Vec::new();
        };
        let us = start.elapsed().as_micros() as u64;
        if resp.status != 200 || resp.header("x-softwatt-fidelity") != Some("surrogate") {
            return Vec::new();
        }
        if i >= PROBE_WARMUP {
            rtts.push(us);
        }
    }
    rtts.sort_unstable();
    rtts
}

/// Nearest-rank percentile of an already-sorted latency list.
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// `{"p50": …, "p90": …, "p99": …, "max": …}` for a sorted list.
fn latency_json(sorted: &[u64]) -> String {
    format!(
        "{{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        pct(sorted, 0.50),
        pct(sorted, 0.90),
        pct(sorted, 0.99),
        sorted.last().copied().unwrap_or(0),
    )
}

/// One lane's report entry: response count plus its percentiles.
fn lane_json(sorted: &[u64]) -> String {
    format!(
        "{{\"responses\": {}, \"latency_us\": {}}}",
        sorted.len(),
        latency_json(sorted)
    )
}

/// Pulls one `"name": value` number out of the `/metrics` JSON body
/// (integer counters and `1.0`-style gauges both normalize to `u64`).
fn metric_value(body: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\": ");
    let at = body.find(&needle)? + needle.len();
    let raw: String = body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    raw.parse::<f64>().ok().map(|v| v as u64)
}

/// The deterministic request mix for request `i` on connection `conn`:
/// mostly single runs rotating over the benchmark/disk grid, with one
/// surrogate-tier slot in ten, and figure, health, and metrics probes
/// folded in. No randomness — reruns are reproducible and the memo hit
/// pattern is stable.
fn request_for(conn: usize, i: usize) -> (&'static str, String, String) {
    let n = conn * 7919 + i; // offset per connection so mixes interleave
    match n % 10 {
        0 => ("GET", "/healthz".into(), String::new()),
        5 => {
            let figures = ["fig6", "fig9", "table4", "validation"];
            let name = figures[(n / 10) % figures.len()];
            ("GET", format!("/v1/figures/{name}"), String::new())
        }
        9 => ("GET", "/metrics".into(), String::new()),
        slot => {
            let benchmark = Benchmark::ALL[n % Benchmark::ALL.len()];
            let disk = [DiskSetup::Conventional, DiskSetup::IdleOnly][(n / 6) % 2];
            // Slot 7 posts a full inline spec when `--inline-spec` is on:
            // identical content every time, so the first request is the
            // only full simulation and the rest resolve by content hash.
            if slot == 7 && INLINE_SPEC.load(Ordering::Relaxed) {
                let body = format!(
                    "{{\"spec\": {}, \"disk\": \"{}\"}}",
                    inline_spec_json(),
                    disk.name()
                );
                return ("POST", "/v1/run".into(), body);
            }
            // Slot 3 opts into the surrogate tier. Against a calibrated
            // server it lands on the surrogate lane; otherwise it falls
            // through to the exact tiers and answers identically.
            let fidelity = if slot == 3 {
                ", \"fidelity\": \"surrogate\""
            } else {
                ""
            };
            let body = format!(
                "{{\"benchmark\": \"{}\", \"disk\": \"{}\"{fidelity}}}",
                benchmark.name(),
                disk.name()
            );
            ("POST", "/v1/run".into(), body)
        }
    }
}

/// A parsed response head (the mux driver's incremental HTTP/1.1 client
/// side; the blocking [`Client`] keeps its own parser).
struct RespHead {
    status: u16,
    /// Bytes up to and including the blank line.
    head_len: usize,
    /// `Content-Length` (0 when absent).
    body_len: usize,
    /// `X-Softwatt-Lane` value, when present.
    lane: Option<String>,
    /// `X-Softwatt-Fidelity` value, when present.
    fidelity: Option<String>,
    /// `X-Softwatt-Error-Bound-Pct` value, when present.
    error_bound_pct: Option<f64>,
    /// `Connection: close` was sent.
    close: bool,
}

/// Parses a response head out of `buf`, or `None` while incomplete.
fn parse_head(buf: &[u8]) -> Option<RespHead> {
    let head_len = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_len]).ok()?;
    let mut lines = head.split("\r\n");
    let status = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let mut body_len = 0;
    let mut lane = None;
    let mut fidelity = None;
    let mut error_bound_pct = None;
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            body_len = value.parse().ok()?;
        } else if name.eq_ignore_ascii_case("x-softwatt-lane") {
            lane = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("x-softwatt-fidelity") {
            fidelity = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("x-softwatt-error-bound-pct") {
            error_bound_pct = value.parse().ok();
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        }
    }
    Some(RespHead {
        status,
        head_len,
        body_len,
        lane,
        fidelity,
        error_bound_pct,
        close,
    })
}

/// Where a multiplexed connection is in the run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Sending its unrecorded warm-up mix.
    Warmup,
    /// Warm-up finished; idle until every connection gets here (the
    /// epoll-loop equivalent of the old thread barrier).
    Ready,
    /// Sending the measured mix.
    Measured,
    /// All requests answered (or the connection gave up).
    Done,
}

/// One closed-loop connection owned by the mux driver: at most one
/// request outstanding, reconnecting whenever the server closes on it.
struct MuxConn {
    stream: Option<TcpStream>,
    id: usize,
    phase: Phase,
    /// Next request index within the current phase.
    index: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    read_buf: Vec<u8>,
    sent_at: Instant,
    /// A request is in flight (written or being written).
    awaiting: bool,
    interest: u32,
}

/// The request `Client` would send, as one preformatted buffer.
fn format_request(method: &str, path: &str, body: &str) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: keep-alive\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

impl MuxConn {
    fn connect(target: SocketAddr, id: usize, phase: Phase, epoll: &Epoll) -> MuxConn {
        let stream = TcpStream::connect(target).ok().and_then(|s| {
            s.set_nodelay(true).ok()?;
            s.set_nonblocking(true).ok()?;
            epoll
                .add(s.as_raw_fd(), EPOLLIN | EPOLLRDHUP, id as u64)
                .ok()?;
            Some(s)
        });
        MuxConn {
            stream,
            id,
            phase,
            index: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            read_buf: Vec::new(),
            sent_at: Instant::now(),
            awaiting: false,
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }

    /// Drops the current stream and dials a fresh one (the server closed
    /// on us, or the old socket broke).
    fn reconnect(&mut self, target: SocketAddr, epoll: &Epoll) -> bool {
        if let Some(old) = self.stream.take() {
            epoll.delete(old.as_raw_fd());
        }
        self.read_buf.clear();
        self.write_buf.clear();
        self.write_pos = 0;
        self.awaiting = false;
        *self = MuxConn {
            id: self.id,
            phase: self.phase,
            index: self.index,
            ..MuxConn::connect(target, self.id, self.phase, epoll)
        };
        self.stream.is_some()
    }

    /// Loads the next request of the current phase into the write buffer
    /// and pushes as much of it as the socket takes right now.
    fn issue(&mut self, epoll: &Epoll) {
        let (method, path, body) = request_for(self.id, self.index);
        self.write_buf = format_request(method, &path, &body);
        self.write_pos = 0;
        self.sent_at = Instant::now();
        self.awaiting = true;
        self.flush(epoll);
    }

    /// Writes pending request bytes; adjusts `EPOLLOUT` interest to match
    /// whether any remain.
    fn flush(&mut self, epoll: &Epoll) {
        let Some(stream) = self.stream.as_mut() else {
            return;
        };
        while self.write_pos < self.write_buf.len() {
            match stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => break,
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // the read side will surface the failure
            }
        }
        let want = if self.write_pos < self.write_buf.len() {
            EPOLLIN | EPOLLOUT | EPOLLRDHUP
        } else {
            EPOLLIN | EPOLLRDHUP
        };
        if want != self.interest {
            self.interest = want;
            let _ = epoll.modify(stream.as_raw_fd(), want, self.id as u64);
        }
    }

    /// Reads whatever the socket has. `Ok(true)` means the peer closed.
    fn fill(&mut self, scratch: &mut [u8]) -> io::Result<bool> {
        let Some(stream) = self.stream.as_mut() else {
            return Ok(true);
        };
        loop {
            match stream.read(scratch) {
                Ok(0) => return Ok(true),
                Ok(n) => self.read_buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Drives every connection through warm-up and the measured phase off one
/// epoll loop. Returns the tally, the measured wall-clock seconds, and —
/// with `--cold-grid` — what the cold side traffic saw.
fn run_mux(
    target: SocketAddr,
    connections: usize,
    requests: usize,
    warmup: usize,
    cold_grid: bool,
) -> (Tally, f64, Option<ColdGridStats>) {
    let epoll = Epoll::new().expect("epoll");
    let start_phase = if warmup > 0 {
        Phase::Warmup
    } else {
        Phase::Ready
    };
    let mut conns: Vec<MuxConn> = (0..connections)
        .map(|id| MuxConn::connect(target, id, start_phase, &epoll))
        .collect();
    let mut tally = Tally::default();
    for conn in &mut conns {
        if conn.stream.is_none() {
            // Could not even dial: everything it would have sent is lost.
            tally.transport_errors += requests as u64;
            conn.phase = Phase::Done;
        } else if conn.phase == Phase::Warmup {
            conn.issue(&epoll);
        }
    }

    let mut measured_started: Option<Instant> = None;
    let mut cold_handle = None;
    let mut scratch = vec![0u8; 64 * 1024];
    let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
    let wall_s = loop {
        // The "barrier": once no connection is still warming up, start the
        // clock, launch the cold side traffic inside the measured window,
        // and release the measured mix everywhere at once.
        if measured_started.is_none() && conns.iter().all(|c| c.phase != Phase::Warmup) {
            measured_started = Some(Instant::now());
            if cold_grid {
                cold_handle = Some(
                    std::thread::Builder::new()
                        .name("loadgen-cold-grid".into())
                        .spawn(move || run_cold_grid(target))
                        .expect("spawn cold grid"),
                );
            }
            for conn in &mut conns {
                if conn.phase == Phase::Ready {
                    conn.phase = Phase::Measured;
                    conn.index = 0;
                    if conn.stream.is_some() || conn.reconnect(target, &epoll) {
                        conn.issue(&epoll);
                    } else {
                        tally.transport_errors += requests as u64;
                        conn.phase = Phase::Done;
                    }
                }
            }
        }
        if conns.iter().all(|c| c.phase == Phase::Done) {
            break measured_started.map_or(0.0, |s| s.elapsed().as_secs_f64());
        }

        let n = epoll.wait(&mut events, 100);
        for ev in events.iter().take(n) {
            let ev = *ev;
            let (token, ready) = (ev.data as usize, ev.events);
            let Some(conn) = conns.get_mut(token) else {
                continue;
            };
            if conn.phase == Phase::Done || !conn.awaiting {
                continue;
            }
            if ready & EPOLLOUT != 0 {
                conn.flush(&epoll);
            }
            let mut broken = ready & (EPOLLERR | EPOLLHUP) != 0;
            if ready & (EPOLLIN | EPOLLRDHUP) != 0 {
                match conn.fill(&mut scratch) {
                    Ok(eof) => broken |= eof,
                    Err(_) => broken = true,
                }
            }
            step(conn, &mut tally, broken, target, warmup, requests, &epoll);
        }

        // Stuck-request guard: a response overdue past the client timeout
        // counts as a transport error and the connection is replaced.
        let now = Instant::now();
        for conn in &mut conns {
            if conn.phase != Phase::Done
                && conn.awaiting
                && now.duration_since(conn.sent_at) > TIMEOUT
            {
                fail_request(conn, &mut tally, target, warmup, requests, &epoll);
            }
        }
    };
    let cold_stats = cold_handle.map(|h| h.join().expect("cold grid panicked"));
    (tally, wall_s, cold_stats)
}

/// Consumes any complete response on `conn` (recording it), then issues
/// the next request or advances the phase; `broken` routes through the
/// transport-error path when no full response arrived first.
fn step(
    conn: &mut MuxConn,
    tally: &mut Tally,
    broken: bool,
    target: SocketAddr,
    warmup: usize,
    requests: usize,
    epoll: &Epoll,
) {
    let complete =
        parse_head(&conn.read_buf).filter(|h| conn.read_buf.len() >= h.head_len + h.body_len);
    let Some(head) = complete else {
        if broken {
            fail_request(conn, tally, target, warmup, requests, epoll);
        }
        return;
    };
    conn.read_buf.drain(..head.head_len + head.body_len);
    conn.awaiting = false;
    let us = conn.sent_at.elapsed().as_micros() as u64;
    match conn.phase {
        Phase::Warmup => tally.warmup_latencies_us.push(us),
        Phase::Measured => {
            tally.latencies_us.push(us);
            match head.lane.as_deref() {
                Some("surrogate") => tally.surrogate_us.push(us),
                Some("inline") => tally.inline_us.push(us),
                Some("replay") => tally.replay_us.push(us),
                Some("cold") => tally.cold_us.push(us),
                _ => {} // health/metrics probes and errors carry no lane
            }
            if head.fidelity.is_some() {
                tally.fidelity_tagged += 1;
            }
            if let Some(bound) = head.error_bound_pct {
                tally.error_bound_pct =
                    Some(tally.error_bound_pct.map_or(bound, |b: f64| b.max(bound)));
            }
            match head.status {
                200..=299 => tally.ok_2xx += 1,
                503 => tally.backpressure_503 += 1,
                400..=499 => tally.client_4xx += 1,
                _ => tally.server_5xx += 1,
            }
        }
        Phase::Ready | Phase::Done => {}
    }
    advance(conn, tally, head.close, target, warmup, requests, epoll);
}

/// Moves `conn` to its next request (or next phase) after a response.
/// `closed` means the server sent `Connection: close`, so the socket is
/// spent regardless of what comes next.
fn advance(
    conn: &mut MuxConn,
    tally: &mut Tally,
    closed: bool,
    target: SocketAddr,
    warmup: usize,
    requests: usize,
    epoll: &Epoll,
) {
    conn.index += 1;
    let phase_len = if conn.phase == Phase::Warmup {
        warmup
    } else {
        requests
    };
    if closed {
        // Drop the spent socket now; whoever needs one next redials.
        if let Some(old) = conn.stream.take() {
            epoll.delete(old.as_raw_fd());
        }
        conn.read_buf.clear();
    }
    if conn.index >= phase_len {
        conn.phase = if conn.phase == Phase::Warmup {
            Phase::Ready
        } else {
            Phase::Done
        };
        return;
    }
    if conn.stream.is_some() || conn.reconnect(target, epoll) {
        conn.issue(epoll);
    } else if conn.phase == Phase::Measured {
        tally.transport_errors += (requests - conn.index) as u64;
        conn.phase = Phase::Done;
    } else {
        // Warm-up casualties are not counted; sit out until the barrier.
        conn.phase = Phase::Ready;
    }
}

/// The transport-error path: the socket broke (or the response timed
/// out) under an in-flight request. Warm-up losses are uncounted, like
/// the thread driver before; measured losses count one error and the
/// connection redials for the next request.
fn fail_request(
    conn: &mut MuxConn,
    tally: &mut Tally,
    target: SocketAddr,
    warmup: usize,
    requests: usize,
    epoll: &Epoll,
) {
    if conn.phase == Phase::Measured {
        tally.transport_errors += 1;
    }
    if let Some(old) = conn.stream.take() {
        epoll.delete(old.as_raw_fd());
    }
    conn.read_buf.clear();
    conn.awaiting = false;
    advance(conn, tally, false, target, warmup, requests, epoll);
}

/// The paper grid as a `/v1/batch` body, mirroring
/// `ExperimentSuite::paper_grid` (which needs a suite handle this side of
/// the wire does not have).
fn paper_grid_body() -> String {
    let mut queries = Vec::new();
    let mut push = |benchmark: Benchmark, cpu: CpuModel, disk: DiskSetup| {
        queries.push(format!(
            "{{\"benchmark\": \"{}\", \"cpu\": \"{}\", \"disk\": \"{}\"}}",
            benchmark.name(),
            cpu.name(),
            disk.name()
        ));
    };
    for &benchmark in Benchmark::ALL.iter() {
        for disk in DiskSetup::ALL {
            push(benchmark, CpuModel::Mxs, disk);
        }
        push(benchmark, CpuModel::Mxs, DiskSetup::SleepExt);
        push(benchmark, CpuModel::MxsSingleIssue, DiskSetup::Conventional);
    }
    push(Benchmark::Jess, CpuModel::Mipsy, DiskSetup::Conventional);
    format!("{{\"queries\": [{}], \"jobs\": 2}}", queries.join(", "))
}

/// Retries a request through `503` backpressure bounces (the honest
/// client response to `Retry-After`), up to a bounded attempt count.
/// Returns the final response plus how many bounces were absorbed.
fn request_with_retries(
    client: &mut Client,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, u32) {
    let mut retries = 0u32;
    loop {
        let resp = client.request(method, path, body).expect("request");
        if resp.status == 503 && retries < 2000 {
            retries += 1;
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        let lane = resp.header("x-softwatt-lane").unwrap_or("").to_string();
        return (resp.status, lane, retries);
    }
}

/// The `--cold-grid` side traffic: one full-grid cold batch, plus three
/// simultaneous runs of the same cold key that should collapse into one
/// in-flight job (`serve.dedup_attached`). Both retry through the `503`s
/// a saturated cold queue hands out, so the batch is genuinely admitted
/// and in flight even when the mix's own cold traffic got there first.
fn run_cold_grid(target: SocketAddr) -> ColdGridStats {
    let batch = std::thread::Builder::new()
        .name("loadgen-batch".into())
        .spawn(move || {
            let mut client = Client::connect(target, TIMEOUT).expect("batch connect");
            let started = Instant::now();
            let (status, _lane, retries) =
                request_with_retries(&mut client, "POST", "/v1/batch", &paper_grid_body());
            (status, started.elapsed().as_secs_f64(), retries)
        })
        .expect("spawn batch");
    // Let the batch contend for the cold worker first: the duplicate runs
    // then queue (one) and attach (the rest), maximizing the dedup window.
    std::thread::sleep(Duration::from_millis(100));
    let dedup_handles: Vec<_> = (0..DEDUP_CONNS)
        .map(|i| {
            std::thread::Builder::new()
                .name(format!("loadgen-dedup-{i}"))
                .spawn(move || {
                    let mut client = Client::connect(target, TIMEOUT).expect("dedup connect");
                    let (status, lane, _) =
                        request_with_retries(&mut client, "POST", "/v1/run", DEDUP_BODY);
                    (status, lane)
                })
                .expect("spawn dedup run")
        })
        .collect();
    let (batch_status, batch_wall_s, batch_retries) = batch.join().expect("batch panicked");
    let dedup = dedup_handles
        .into_iter()
        .map(|h| h.join().expect("dedup run panicked"))
        .collect();
    ColdGridStats {
        batch_status,
        batch_wall_s,
        batch_retries,
        dedup,
    }
}
