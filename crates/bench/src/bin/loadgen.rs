//! Load generator for the softwatt-serve service.
//!
//! Hammers a server with a deterministic mixed workload — single runs
//! rotating over every benchmark/disk pair, figure renders, health and
//! metrics probes — from N concurrent keep-alive connections, and writes
//! throughput, latency percentiles, and status counts as JSON.
//!
//! Usage: `loadgen [--addr HOST:PORT] [--scale S] [--connections N]
//! [--requests N] [--warmup N] [--workers N|auto] [--trace-cache DIR]
//! [--out FILE]`
//! (defaults: no addr — spawn an in-process server over real TCP —
//! scale 50000 for fast simulations, 8 connections x 40 requests,
//! 0 warm-up requests, workers = available parallelism, out
//! `BENCH_server.json`).
//!
//! `--warmup N` sends N unrecorded requests per connection (the same
//! deterministic mix, same indices) before the measured phase; their
//! latencies are reported separately so cold-start and steady-state tails
//! can be told apart. A barrier between the phases keeps warm-up traffic
//! out of the measured wall-clock. `--trace-cache DIR` hands the
//! in-process server a persistent trace store and warm-starts it from
//! disk, exactly like `softwatt-serve --trace-cache`; with `--addr` the
//! flag is ignored (the external server owns its cache).

use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use softwatt::experiments::DiskSetup;
use softwatt::{Benchmark, ExperimentSuite, SystemConfig};
use softwatt_bench::parse_count_or_auto;
use softwatt_serve::client::Client;
use softwatt_serve::{ServeConfig, Server};

/// Generous request timeout: the first run on a cold key simulates for
/// real.
const TIMEOUT: Duration = Duration::from_secs(300);

/// One worker's tally. Warm-up latencies are kept apart from the measured
/// ones; warm-up statuses are not counted at all.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    warmup_latencies_us: Vec<u64>,
    ok_2xx: u64,
    client_4xx: u64,
    backpressure_503: u64,
    server_5xx: u64,
    transport_errors: u64,
}

fn main() {
    let mut addr: Option<String> = None;
    let mut scale = 50_000.0f64;
    let mut connections = 8usize;
    let mut requests = 40usize;
    let mut warmup = 0usize;
    let mut workers = softwatt_bench::auto_parallelism();
    let mut trace_cache: Option<String> = None;
    let mut out = String::from("BENCH_server.json");
    fn usage_exit(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: loadgen [--addr HOST:PORT] [--scale S] [--connections N] \
             [--requests N] [--warmup N] [--workers N|auto] [--trace-cache DIR] [--out FILE]"
        );
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        let mut count = |flag: &str, what: &str| {
            parse_count_or_auto(flag, Some(value(flag)), what).unwrap_or_else(|e| usage_exit(&e))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--scale" => match value("--scale").parse() {
                Ok(v) if v > 0.0 => scale = v,
                _ => usage_exit("--scale needs a positive number"),
            },
            "--connections" => connections = count("--connections", "connection count"),
            "--requests" => requests = count("--requests", "request count"),
            "--warmup" => match value("--warmup").parse() {
                // 0 is fine: it just means "no warm-up phase".
                Ok(v) => warmup = v,
                Err(_) => usage_exit("--warmup needs a request count"),
            },
            "--workers" => workers = count("--workers", "thread count"),
            "--trace-cache" => trace_cache = Some(value("--trace-cache")),
            "--out" => out = value("--out"),
            other => usage_exit(&format!("unknown flag {other}")),
        }
    }

    // Target: an external server, or an in-process one over real TCP.
    let mut caching = false;
    let (target, local_server) = match addr {
        Some(addr) => {
            if trace_cache.is_some() {
                eprintln!("loadgen: --trace-cache ignored with --addr (the server owns its cache)");
            }
            let target: SocketAddr = addr
                .parse()
                .unwrap_or_else(|_| usage_exit("--addr needs HOST:PORT"));
            (target, None)
        }
        None => {
            let system = SystemConfig {
                time_scale: scale,
                ..SystemConfig::default()
            };
            let mut suite = ExperimentSuite::new(system).unwrap_or_else(|e| usage_exit(&e));
            match softwatt_bench::open_trace_store(trace_cache.take()) {
                Ok(Some(store)) => {
                    caching = true;
                    let dir = store.dir().display().to_string();
                    suite = suite.with_trace_store(store);
                    let loaded = suite.prewarm_from_store(&suite.paper_grid());
                    eprintln!("loadgen: warm start, {loaded} trace(s) loaded from {dir}");
                }
                Ok(None) => {}
                Err(e) => usage_exit(&e),
            }
            let suite = Arc::new(suite);
            let config = ServeConfig {
                workers,
                ..ServeConfig::default()
            };
            let server =
                Server::bind("127.0.0.1:0", suite, config).unwrap_or_else(|e| usage_exit(&e));
            let target = server.local_addr().unwrap_or_else(|e| usage_exit(&e));
            let handle = server.shutdown_handle();
            let thread = std::thread::spawn(move || server.run());
            (target, Some((handle, thread)))
        }
    };
    eprintln!(
        "loadgen: {connections} connection(s) x {requests} request(s) \
         (+{warmup} warm-up) against {target} (scale {scale}x)"
    );

    // One extra party for the main thread: the measured clock starts only
    // once every connection has finished its warm-up requests.
    let barrier = Arc::new(Barrier::new(connections + 1));
    let handles: Vec<_> = (0..connections)
        .map(|conn| {
            let barrier = Arc::clone(&barrier);
            std::thread::Builder::new()
                .name(format!("loadgen-{conn}"))
                .spawn(move || run_connection(target, conn, requests, warmup, &barrier))
                .expect("spawn loadgen connection")
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    let mut total = Tally::default();
    for handle in handles {
        let tally = handle.join().expect("loadgen connection panicked");
        total.latencies_us.extend(tally.latencies_us);
        total.warmup_latencies_us.extend(tally.warmup_latencies_us);
        total.ok_2xx += tally.ok_2xx;
        total.client_4xx += tally.client_4xx;
        total.backpressure_503 += tally.backpressure_503;
        total.server_5xx += tally.server_5xx;
        total.transport_errors += tally.transport_errors;
    }
    let wall_s = started.elapsed().as_secs_f64();

    if let Some((handle, thread)) = local_server {
        handle.trigger();
        thread.join().expect("server thread panicked");
    }

    total.latencies_us.sort_unstable();
    total.warmup_latencies_us.sort_unstable();
    let sent = (connections * requests) as u64;
    let answered = total.latencies_us.len() as u64;
    let warmed = total.warmup_latencies_us.len() as u64;
    let json = format!(
        "{{\n  \"schema\": \"softwatt-bench-server-v2\",\n  \"time_scale\": {scale},\n  \
         \"connections\": {connections},\n  \"requests_per_connection\": {requests},\n  \
         \"warmup_per_connection\": {warmup},\n  \"trace_cache\": {caching},\n  \
         \"requests_sent\": {sent},\n  \"responses\": {answered},\n  \
         \"wall_s\": {wall_s:.6},\n  \"throughput_rps\": {:.2},\n  \
         \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}},\n  \
         \"warmup\": {{\"responses\": {warmed}, \"latency_us\": {{\"p50\": {}, \"p90\": {}, \
         \"p99\": {}, \"max\": {}}}}},\n  \
         \"status\": {{\"2xx\": {}, \"4xx\": {}, \"503\": {}, \"5xx\": {}, \
         \"transport_errors\": {}}}\n}}\n",
        answered as f64 / wall_s.max(1e-9),
        pct(&total.latencies_us, 0.50),
        pct(&total.latencies_us, 0.90),
        pct(&total.latencies_us, 0.99),
        total.latencies_us.last().copied().unwrap_or(0),
        pct(&total.warmup_latencies_us, 0.50),
        pct(&total.warmup_latencies_us, 0.90),
        pct(&total.warmup_latencies_us, 0.99),
        total.warmup_latencies_us.last().copied().unwrap_or(0),
        total.ok_2xx,
        total.client_4xx,
        total.backpressure_503,
        total.server_5xx,
        total.transport_errors,
    );
    print!("{json}");
    if let Err(e) = std::fs::File::create(&out).and_then(|mut f| f.write_all(json.as_bytes())) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}

/// Nearest-rank percentile of an already-sorted latency list.
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// The deterministic request mix for request `i` on connection `conn`:
/// mostly single runs rotating over the benchmark/disk grid, with figure,
/// health, and metrics probes folded in. No randomness — reruns are
/// reproducible and the memo hit pattern is stable.
fn request_for(conn: usize, i: usize) -> (&'static str, String, String) {
    let n = conn * 7919 + i; // offset per connection so mixes interleave
    match n % 10 {
        0 => ("GET", "/healthz".into(), String::new()),
        5 => {
            let figures = ["fig6", "fig9", "table4", "validation"];
            let name = figures[(n / 10) % figures.len()];
            ("GET", format!("/v1/figures/{name}"), String::new())
        }
        9 => ("GET", "/metrics".into(), String::new()),
        _ => {
            let benchmark = Benchmark::ALL[n % Benchmark::ALL.len()];
            let disk = [DiskSetup::Conventional, DiskSetup::IdleOnly][(n / 6) % 2];
            let body = format!(
                "{{\"benchmark\": \"{}\", \"disk\": \"{}\"}}",
                benchmark.name(),
                disk.name()
            );
            ("POST", "/v1/run".into(), body)
        }
    }
}

fn run_connection(
    target: SocketAddr,
    conn: usize,
    requests: usize,
    warmup: usize,
    barrier: &Barrier,
) -> Tally {
    let mut tally = Tally::default();
    let mut client = Client::connect(target, TIMEOUT).ok();

    // Warm-up phase: the same deterministic mix with the same indices, so
    // `--warmup N` with N >= requests guarantees a fully warm measured
    // phase. Latencies land in the separate warm-up tally; statuses and
    // transport errors are not counted — a broken connection here just
    // ends the warm-up, and the measured loop reconnects below.
    if let Some(c) = client.as_mut() {
        for i in 0..warmup {
            let (method, path, body) = request_for(conn, i);
            let started = Instant::now();
            match c.request(method, &path, &body) {
                Ok(resp) => {
                    tally
                        .warmup_latencies_us
                        .push(started.elapsed().as_micros() as u64);
                    if resp.header("connection") == Some("close") {
                        match Client::connect(target, TIMEOUT) {
                            Ok(fresh) => *c = fresh,
                            Err(_) => break,
                        }
                    }
                }
                Err(_) => match Client::connect(target, TIMEOUT) {
                    Ok(fresh) => *c = fresh,
                    Err(_) => break,
                },
            }
        }
    }

    // Every connection reaches here before anyone's measured request goes
    // out (the main thread holds the last barrier slot and the clock).
    barrier.wait();
    let mut client = match client.or_else(|| Client::connect(target, TIMEOUT).ok()) {
        Some(client) => client,
        None => {
            tally.transport_errors += requests as u64;
            return tally;
        }
    };
    for i in 0..requests {
        let (method, path, body) = request_for(conn, i);
        let started = Instant::now();
        match client.request(method, &path, &body) {
            Ok(resp) => {
                tally
                    .latencies_us
                    .push(started.elapsed().as_micros() as u64);
                match resp.status {
                    200..=299 => tally.ok_2xx += 1,
                    503 => tally.backpressure_503 += 1,
                    400..=499 => tally.client_4xx += 1,
                    _ => tally.server_5xx += 1,
                }
                // A 503 closes nothing, but the server may close on
                // errors it wrote with Connection: close; reconnect then.
                if resp.header("connection") == Some("close") {
                    match Client::connect(target, TIMEOUT) {
                        Ok(fresh) => client = fresh,
                        Err(_) => {
                            tally.transport_errors += (requests - i - 1) as u64;
                            break;
                        }
                    }
                }
            }
            Err(_) => {
                tally.transport_errors += 1;
                match Client::connect(target, TIMEOUT) {
                    Ok(fresh) => client = fresh,
                    Err(_) => {
                        tally.transport_errors += (requests - i - 1) as u64;
                        break;
                    }
                }
            }
        }
    }
    tally
}
