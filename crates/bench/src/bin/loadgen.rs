//! Load generator for the softwatt-serve service.
//!
//! Hammers a server with a deterministic mixed workload — single runs
//! rotating over every benchmark/disk pair, figure renders, health and
//! metrics probes — from N concurrent keep-alive connections, and writes
//! throughput, latency percentiles (overall and per admission lane), and
//! status counts as JSON.
//!
//! The driver is epoll-multiplexed: one thread owns every connection
//! (closed loop, one outstanding request each), so hundreds of
//! connections cost hundreds of sockets, not hundreds of OS threads.
//! That is what makes 200+ connections honest on a small box — with
//! thread-per-connection the scheduler noise of the clients themselves
//! dominates the tail latencies being measured.
//!
//! Usage: `loadgen [--addr HOST:PORT | --cluster HOST:PORT,...]
//! [--scale S] [--connections N] [--requests N] [--warmup N]
//! [--workers N|auto] [--cold-grid] [--surrogate] [--inline-spec]
//! [--trace-cache DIR] [--out FILE]`
//! (defaults: no addr — spawn an in-process server over real TCP —
//! scale 50000 for fast simulations, 8 connections x 40 requests,
//! 0 warm-up requests, workers = available parallelism, out
//! `BENCH_server.json`, or `BENCH_cluster.json` with `--cluster`).
//!
//! `--cluster` aims the same closed loop at several external servers at
//! once: connections round-robin over the listed nodes, and the report
//! gains a `cluster` section with each node's full-sim / capture /
//! peer-fetch counters scraped from its `/metrics` — the numbers that
//! prove a peered fabric ran the cold paper grid with exactly 13 full
//! simulations cluster-wide (see `DESIGN.md` §14).
//!
//! `503` backpressure is retried in place: the connection holds its
//! request index and re-sends after a capped exponential backoff that
//! honors the server's `Retry-After` hint, with deterministic jitter so
//! reruns stay reproducible. Retries are attributed to the lane of the
//! response that finally landed (`lanes.*.retries` in the report);
//! `status.503` counts only requests still bounced after the retry
//! budget.
//!
//! One slot in ten of the request mix asks for `"fidelity": "surrogate"`.
//! With `--surrogate` the in-process server calibrates the surrogate
//! model before serving, so those land on the reactor-thread surrogate
//! lane (the report's `fidelity` section pins their sub-millisecond
//! percentiles); without it they fall through to the exact tiers, which
//! answer them identically minus the speed.
//!
//! `--warmup N` sends N unrecorded requests per connection (the same
//! deterministic mix, same indices) before the measured phase; their
//! latencies are reported separately so cold-start and steady-state tails
//! can be told apart. A barrier between the phases keeps warm-up traffic
//! out of the measured wall-clock.
//!
//! `--cold-grid` stresses the tiered admission: while the measured mix
//! runs, one extra connection submits the full paper grid as a cold
//! `POST /v1/batch`, and three more ask for the same cold key at once —
//! the duplicate-run probe behind the `serve.dedup_attached` metric. The
//! point the report makes is that warm (inline-lane) percentiles stay
//! flat while all of that churns on the cold lane.
//!
//! `--inline-spec` swaps one run slot in ten for a `POST /v1/run` whose
//! body carries a full user-defined workload spec (softwatt-spec-v1)
//! instead of a canned benchmark name. The first such request costs a
//! full simulation; every later one (including from other connections)
//! must resolve through the spec's content hash to the memo or replay
//! tiers, so the lane attribution shows the spec path riding the same
//! admission machinery as the canned keys.
//!
//! `--trace-cache DIR` hands the in-process server a persistent trace
//! store and warm-starts it from disk, exactly like `softwatt-serve
//! --trace-cache`; with `--addr` the flag is ignored (the external server
//! owns its cache). Lane attribution reads each response's
//! `X-Softwatt-Lane` header; the queue high-water marks and dedup count
//! come from one `GET /metrics` probe after the measured phase.

use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use softwatt::experiments::DiskSetup;
use softwatt::{Benchmark, CpuModel, ExperimentSuite, SystemConfig};
use softwatt_bench::parse_count_or_auto;
use softwatt_serve::client::Client;
use softwatt_serve::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use softwatt_serve::{ServeConfig, Server};

/// Generous request timeout: the first run on a cold key simulates for
/// real, and a cold-grid batch is many of those back to back.
const TIMEOUT: Duration = Duration::from_secs(300);

/// Retry budget per request: enough to ride out a multi-second cold
/// grid at the capped backoff without ever spinning unbounded.
const MAX_RETRIES: u32 = 300;

/// Ceiling on how long one backoff sleep can get, however large a
/// `Retry-After` the server hints.
const BACKOFF_CAP_MS: u64 = 2_000;

/// splitmix64 finalizer: the jitter mixer (same construction the fabric
/// ring uses to spread FNV-1a values).
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Backoff before retry number `attempt` (0-based): exponential from
/// 2 ms, capped at the server's `Retry-After` hint (itself capped at
/// [`BACKOFF_CAP_MS`]), landing deterministically in the upper half of
/// the window — jitter comes from mixing `seed` with the attempt, so a
/// rerun sleeps the identical schedule but concurrent clients spread
/// out instead of thundering back together.
fn backoff_delay(attempt: u32, retry_after_s: Option<u64>, seed: u64) -> Duration {
    let hint_ms = retry_after_s.map_or(1_000, |s| s.saturating_mul(1_000));
    let cap = hint_ms.clamp(1, BACKOFF_CAP_MS);
    let base = (2u64 << attempt.min(16)).min(cap);
    let jitter = mix64(seed ^ u64::from(attempt)) % (base / 2 + 1);
    Duration::from_millis(base / 2 + jitter)
}

/// The cold key three `--cold-grid` connections request simultaneously.
///
/// In the plain profile this is the grid's own mipsy cell: the probes
/// race the concurrent batch for it, and the total full-simulation count
/// stays exactly 13 (the invariant CI's cluster gate reads from
/// `cluster_totals.runs_executed`). In the all-tiers profile
/// (`--surrogate`, see [`OFF_GRID`]) the warm-up's figure requests have
/// already memoized the whole grid, so the probe instead uses a key
/// outside both the grid (whose only mipsy cell is jess/conv) and the
/// measured mix — still cold when the probes fire, so the first one
/// holds the dedup window open with a full simulation the other two
/// must attach to.
fn dedup_body() -> &'static str {
    if OFF_GRID.load(Ordering::Relaxed) {
        r#"{"benchmark": "compress", "cpu": "mipsy", "disk": "idle"}"#
    } else {
        r#"{"benchmark": "jess", "cpu": "mipsy"}"#
    }
}
/// How many connections send [`dedup_body`] at once.
const DEDUP_CONNS: usize = 3;

/// Whether the request mix swaps one run slot in ten for an inline-spec
/// post (`--inline-spec`). Global because the mix function is pure
/// per-index; set once before the mux starts.
static INLINE_SPEC: AtomicBool = AtomicBool::new(false);

/// Whether the measured mix steps off the memoized paper grid to keep
/// the replay and cold admission lanes exercised (`--surrogate`, the
/// committed `BENCH_server.json` profile — its warm-up renders every
/// figure, which memoizes all 37 grid keys, leaving nothing for the
/// exact tiers to do). Off by default so plainer configurations keep
/// the exactly-13-full-simulations invariant CI's cluster smoke gates
/// on. Global for the same reason as [`INLINE_SPEC`].
static OFF_GRID: AtomicBool = AtomicBool::new(false);

/// The spec body those slots post: canned jess content under a custom
/// name, so the server sees a user-defined workload it has never heard
/// of and must admit through the spec codec and validation gate.
fn inline_spec_json() -> &'static str {
    static SPEC: OnceLock<String> = OnceLock::new();
    SPEC.get_or_init(|| {
        let mut spec = Benchmark::Jess.spec();
        spec.name = "loadgen-inline".to_string();
        softwatt::json::benchmark_spec(&spec)
    })
}

/// One worker's tally. Warm-up latencies are kept apart from the measured
/// ones; warm-up statuses are not counted at all. Measured latencies are
/// additionally attributed to the admission lane the server reported.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    warmup_latencies_us: Vec<u64>,
    surrogate_us: Vec<u64>,
    inline_us: Vec<u64>,
    replay_us: Vec<u64>,
    cold_us: Vec<u64>,
    ok_2xx: u64,
    client_4xx: u64,
    backpressure_503: u64,
    server_5xx: u64,
    transport_errors: u64,
    /// `503` bounces absorbed by in-place retries, attributed to the
    /// lane of the response that finally landed: surrogate, inline,
    /// replay, cold (same order as the latency vectors above).
    lane_retries: [u64; 4],
    /// Retried `503`s whose final response carried no lane (still
    /// bounced after the budget, or answered by a lane-less route).
    retries_unattributed: u64,
    /// Responses by `X-Softwatt-Source`: where the trace behind the
    /// answer came from (local store, a fabric peer, or a fresh sim).
    source_local: u64,
    source_peer: u64,
    source_sim: u64,
    /// Responses that carried an `X-Softwatt-Fidelity` header.
    fidelity_tagged: u64,
    /// Largest `X-Softwatt-Error-Bound-Pct` seen (`None` if never sent).
    error_bound_pct: Option<f64>,
}

/// What the `--cold-grid` side traffic observed.
struct ColdGridStats {
    batch_status: u16,
    batch_wall_s: f64,
    /// `503` bounces absorbed before the batch was admitted.
    batch_retries: u32,
    /// (status, lane, retries) per duplicate-key run, in completion
    /// order.
    dedup: Vec<(u16, String, u32)>,
}

fn main() {
    let mut addr: Option<String> = None;
    let mut cluster: Vec<String> = Vec::new();
    let mut scale = 50_000.0f64;
    let mut connections = 8usize;
    let mut requests = 40usize;
    let mut warmup = 0usize;
    let mut workers = softwatt_bench::auto_parallelism();
    let mut cold_grid = false;
    let mut surrogate = false;
    let mut inline_spec = false;
    let mut trace_cache: Option<String> = None;
    let mut out: Option<String> = None;
    fn usage_exit(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: loadgen [--addr HOST:PORT | --cluster HOST:PORT,...] [--scale S] \
             [--connections N] [--requests N] [--warmup N] [--workers N|auto] [--cold-grid] \
             [--surrogate] [--inline-spec] [--trace-cache DIR] [--out FILE]"
        );
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        let mut count = |flag: &str, what: &str| {
            parse_count_or_auto(flag, Some(value(flag)), what).unwrap_or_else(|e| usage_exit(&e))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--cluster" => {
                cluster = value("--cluster")
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--scale" => match value("--scale").parse() {
                Ok(v) if v > 0.0 => scale = v,
                _ => usage_exit("--scale needs a positive number"),
            },
            "--connections" => connections = count("--connections", "connection count"),
            "--requests" => requests = count("--requests", "request count"),
            "--warmup" => match value("--warmup").parse() {
                // 0 is fine: it just means "no warm-up phase".
                Ok(v) => warmup = v,
                Err(_) => usage_exit("--warmup needs a request count"),
            },
            "--workers" => workers = count("--workers", "thread count"),
            "--cold-grid" => cold_grid = true,
            "--surrogate" => surrogate = true,
            "--inline-spec" => inline_spec = true,
            "--trace-cache" => trace_cache = Some(value("--trace-cache")),
            "--out" => out = Some(value("--out")),
            other => usage_exit(&format!("unknown flag {other}")),
        }
    }
    if addr.is_some() && !cluster.is_empty() {
        usage_exit("--addr and --cluster are mutually exclusive");
    }
    let cluster_mode = !cluster.is_empty();
    let out = out.unwrap_or_else(|| {
        String::from(if cluster_mode {
            "BENCH_cluster.json"
        } else {
            "BENCH_server.json"
        })
    });

    // Target(s): external server(s), or an in-process one over real TCP.
    let mut caching = false;
    let (targets, local_server) = match (addr, cluster_mode) {
        (addr, true) | (addr @ Some(_), false) => {
            if trace_cache.is_some() {
                eprintln!("loadgen: --trace-cache ignored with --addr (the server owns its cache)");
            }
            if surrogate {
                eprintln!(
                    "loadgen: --surrogate ignored with --addr (start the server with --surrogate)"
                );
            }
            let listed = if let Some(addr) = addr {
                vec![addr]
            } else {
                cluster
            };
            let targets: Vec<SocketAddr> = listed
                .iter()
                .map(|a| {
                    a.parse()
                        .unwrap_or_else(|_| usage_exit("--addr/--cluster need HOST:PORT"))
                })
                .collect();
            (targets, None)
        }
        (None, false) => {
            // The in-process server's lane/queue metrics feed the report.
            softwatt_obs::set_enabled(true);
            let system = SystemConfig {
                time_scale: scale,
                ..SystemConfig::default()
            };
            let mut suite = ExperimentSuite::new(system).unwrap_or_else(|e| usage_exit(&e));
            match softwatt_bench::open_trace_store(trace_cache.take()) {
                Ok(Some(store)) => {
                    caching = true;
                    let dir = store.dir().display().to_string();
                    suite = suite.with_trace_store(store);
                    let loaded = suite.prewarm_from_store(&suite.paper_grid());
                    eprintln!("loadgen: warm start, {loaded} trace(s) loaded from {dir}");
                }
                Ok(None) => {}
                Err(e) => usage_exit(&e),
            }
            if surrogate {
                let model = suite.calibrate_surrogate(workers);
                eprintln!(
                    "loadgen: surrogate calibrated ({} windows, bound {:.2}%)",
                    model.trained_windows, model.error_bound_pct
                );
            }
            let suite = Arc::new(suite);
            let config = ServeConfig {
                workers,
                max_connections: (connections + DEDUP_CONNS + 16).max(1024),
                ..ServeConfig::default()
            };
            let server = Server::bind("127.0.0.1:0", Arc::clone(&suite), config)
                .unwrap_or_else(|e| usage_exit(&e));
            let target = server.local_addr().unwrap_or_else(|e| usage_exit(&e));
            let handle = server.shutdown_handle();
            let thread = std::thread::spawn(move || server.run());
            (vec![target], Some((suite, handle, thread)))
        }
    };
    let shown: Vec<String> = targets.iter().map(|t| t.to_string()).collect();
    eprintln!(
        "loadgen: {connections} connection(s) x {requests} request(s) \
         (+{warmup} warm-up{}) against {} (scale {scale}x)",
        if cold_grid {
            ", cold grid in flight"
        } else {
            ""
        },
        shown.join(", "),
    );

    INLINE_SPEC.store(inline_spec, Ordering::Relaxed);
    OFF_GRID.store(surrogate, Ordering::Relaxed);
    let (mut total, wall_s, cold_stats) =
        run_mux(&targets, connections, requests, warmup, cold_grid);

    // Unloaded surrogate probe: with the measured closed loop finished,
    // one idle keep-alive connection sends sequential surrogate queries.
    // Their RTT is the surrogate lane's service latency without the
    // saturation queueing the per-lane numbers above include — this is
    // the "answered inline on the reactor" figure.
    let unloaded_surrogate_us = probe_unloaded_surrogate(targets[0]);

    // One metrics probe per node before shutdown: queue high-water
    // marks and dedup for the report's `server` section (first node),
    // fabric counters for the `cluster` section (every node).
    let metrics_bodies: Vec<Option<String>> = targets
        .iter()
        .map(|t| {
            Client::connect(*t, TIMEOUT)
                .ok()
                .and_then(|mut c| c.request("GET", "/metrics", "").ok())
                .map(|resp| resp.body)
        })
        .collect();
    let metrics_body = metrics_bodies[0].clone();

    // (runs_executed, replays_derived, surrogate_served, store_loads)
    let mut server_stats: Option<(u64, u64, u64, u64)> = None;
    if let Some((suite, handle, thread)) = local_server {
        handle.trigger();
        thread.join().expect("server thread panicked");
        server_stats = Some((
            suite.runs_executed() as u64,
            suite.replays_derived() as u64,
            suite.surrogate_served() as u64,
            suite.store_loads() as u64,
        ));
    }

    total.latencies_us.sort_unstable();
    total.warmup_latencies_us.sort_unstable();
    total.surrogate_us.sort_unstable();
    total.inline_us.sort_unstable();
    total.replay_us.sort_unstable();
    total.cold_us.sort_unstable();
    let sent = (connections * requests) as u64;
    let answered = total.latencies_us.len() as u64;
    let warmed = total.warmup_latencies_us.len() as u64;

    let retries_total: u64 = total.lane_retries.iter().sum::<u64>() + total.retries_unattributed;
    let mut json = String::with_capacity(4096);
    let _ = write!(
        json,
        "{{\n  \"schema\": \"softwatt-bench-server-v5\",\n  \"time_scale\": {scale},\n  \
         \"connections\": {connections},\n  \"requests_per_connection\": {requests},\n  \
         \"warmup_per_connection\": {warmup},\n  \"trace_cache\": {caching},\n  \
         \"cold_grid\": {cold_grid},\n  \"surrogate\": {surrogate},\n  \
         \"inline_spec\": {inline_spec},\n  \"cluster\": {cluster_mode},\n  \
         \"requests_sent\": {sent},\n  \"responses\": {answered},\n  \
         \"wall_s\": {wall_s:.6},\n  \"throughput_rps\": {:.2},\n  \
         \"latency_us\": {},\n  \
         \"lanes\": {{\"surrogate\": {}, \"inline\": {}, \"replay\": {}, \"cold\": {}}},\n  \
         \"retries_503\": {{\"total\": {retries_total}, \"unattributed\": {}}},\n  \
         \"source\": {{\"local\": {}, \"peer\": {}, \"sim\": {}}},\n  \
         \"fidelity\": {{\"surrogate_enabled\": {surrogate}, \"tagged_responses\": {}, \
         \"error_bound_pct\": {}, \"unloaded_rtt_us\": {}}},\n  \
         \"warmup\": {{\"responses\": {warmed}, \"latency_us\": {}}},\n  \
         \"status\": {{\"2xx\": {}, \"4xx\": {}, \"503\": {}, \"5xx\": {}, \
         \"transport_errors\": {}}}",
        answered as f64 / wall_s.max(1e-9),
        latency_json(&total.latencies_us),
        lane_json(&total.surrogate_us, total.lane_retries[0]),
        lane_json(&total.inline_us, total.lane_retries[1]),
        lane_json(&total.replay_us, total.lane_retries[2]),
        lane_json(&total.cold_us, total.lane_retries[3]),
        total.retries_unattributed,
        total.source_local,
        total.source_peer,
        total.source_sim,
        total.fidelity_tagged,
        total
            .error_bound_pct
            .map_or_else(|| "null".into(), |b| format!("{b:?}")),
        if unloaded_surrogate_us.is_empty() {
            "null".into()
        } else {
            latency_json(&unloaded_surrogate_us)
        },
        latency_json(&total.warmup_latencies_us),
        total.ok_2xx,
        total.client_4xx,
        total.backpressure_503,
        total.server_5xx,
        total.transport_errors,
    );
    if let Some(stats) = &cold_stats {
        let dedup: Vec<String> = stats
            .dedup
            .iter()
            .map(|(status, lane, retries)| {
                format!("{{\"status\": {status}, \"lane\": \"{lane}\", \"retries\": {retries}}}")
            })
            .collect();
        let _ = write!(
            json,
            ",\n  \"cold_grid_traffic\": {{\"batch_status\": {}, \"batch_wall_s\": {:.6}, \
             \"batch_retries\": {}, \"dedup_runs\": [{}]}}",
            stats.batch_status,
            stats.batch_wall_s,
            stats.batch_retries,
            dedup.join(", "),
        );
    }
    if cluster_mode {
        // Counters a node never touched are simply absent from its
        // `/metrics`, so absent reads as zero when summing.
        let scrape = |body: &Option<String>, name: &str| -> u64 {
            body.as_deref()
                .and_then(|b| metric_value(b, name))
                .unwrap_or(0)
        };
        let mut nodes = Vec::new();
        let mut runs_total = 0u64;
        let mut peer_hits_total = 0u64;
        for (target, body) in targets.iter().zip(&metrics_bodies) {
            let full_sims = scrape(body, "suite.full_sims");
            let captures = scrape(body, "suite.captures");
            // `runs_executed` mirrors the suite atomic: every full
            // simulation, whether it answered a run or captured a trace.
            let runs = full_sims + captures;
            let peer_hits = scrape(body, "trace_store.peer_hits");
            runs_total += runs;
            peer_hits_total += peer_hits;
            nodes.push(format!(
                "{{\"addr\": \"{target}\", \"reachable\": {}, \"runs_executed\": {runs}, \
                 \"full_sims\": {full_sims}, \"captures\": {captures}, \"replays\": {}, \
                 \"peer_hits\": {peer_hits}, \"peer_misses\": {}, \"peer_errors\": {}, \
                 \"store_hits\": {}}}",
                body.is_some(),
                scrape(body, "suite.replays"),
                scrape(body, "trace_store.peer_misses"),
                scrape(body, "trace_store.peer_errors"),
                scrape(body, "trace_store.hits"),
            ));
        }
        let _ = write!(
            json,
            ",\n  \"cluster_nodes\": [{}],\n  \
             \"cluster_totals\": {{\"runs_executed\": {runs_total}, \
             \"peer_hits\": {peer_hits_total}}}",
            nodes.join(", "),
        );
    }
    // `/metrics` omits counters that never incremented, so a missing key
    // in a successful scrape means zero; `null` is reserved for the probe
    // itself failing (server already gone, connect refused, ...).
    let metric = |name: &str| -> String {
        metrics_body.as_deref().map_or_else(
            || "null".into(),
            |body| metric_value(body, name).unwrap_or(0).to_string(),
        )
    };
    let _ = write!(
        json,
        ",\n  \"server\": {{\"dedup_attached\": {}, \"queue_depth_max\": \
         {{\"replay\": {}, \"cold\": {}}}, \"connections_open_max\": {}, \
         \"runs_executed\": {}, \"replays_derived\": {}, \
         \"surrogate_served\": {}, \"store_loads\": {}}}\n}}\n",
        metric("serve.dedup_attached"),
        metric("serve.lane.replay.queue_depth_max"),
        metric("serve.lane.cold.queue_depth_max"),
        metric("serve.connections.open_max"),
        server_stats.map_or_else(|| "null".into(), |(r, ..)| r.to_string()),
        server_stats.map_or_else(|| "null".into(), |(_, d, ..)| d.to_string()),
        server_stats.map_or_else(|| "null".into(), |(_, _, s, _)| s.to_string()),
        server_stats.map_or_else(|| "null".into(), |(.., l)| l.to_string()),
    );
    print!("{json}");
    if let Err(e) = std::fs::File::create(&out).and_then(|mut f| f.write_all(json.as_bytes())) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    if let Some((runs, replays, surro, loads)) = server_stats {
        eprintln!(
            "loadgen: suite tallies — {runs} full simulation(s), {replays} replay(s), \
             {surro} surrogate estimate(s), {loads} store load(s)"
        );
    }
    eprintln!("wrote {out}");
}

/// Sequential surrogate queries on one otherwise-idle connection: the
/// round trips of responses the server actually tagged
/// `X-Softwatt-Fidelity: surrogate`, sorted. Empty when the server has
/// no model installed (the requests fall through to the exact tiers) or
/// the connection fails — the report then shows `null`.
fn probe_unloaded_surrogate(target: std::net::SocketAddr) -> Vec<u64> {
    const PROBE_WARMUP: usize = 16;
    const PROBES: usize = 200;
    let body = "{\"benchmark\": \"jess\", \"cpu\": \"mxs\", \"fidelity\": \"surrogate\"}";
    let Ok(mut client) = Client::connect(target, TIMEOUT) else {
        return Vec::new();
    };
    let mut rtts = Vec::with_capacity(PROBES);
    for i in 0..PROBE_WARMUP + PROBES {
        let start = Instant::now();
        let Ok(resp) = client.request("POST", "/v1/run", body) else {
            return Vec::new();
        };
        let us = start.elapsed().as_micros() as u64;
        if resp.status != 200 || resp.header("x-softwatt-fidelity") != Some("surrogate") {
            return Vec::new();
        }
        if i >= PROBE_WARMUP {
            rtts.push(us);
        }
    }
    rtts.sort_unstable();
    rtts
}

/// Nearest-rank percentile of an already-sorted latency list.
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// `{"p50": …, "p90": …, "p99": …, "max": …}` for a sorted list.
fn latency_json(sorted: &[u64]) -> String {
    format!(
        "{{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        pct(sorted, 0.50),
        pct(sorted, 0.90),
        pct(sorted, 0.99),
        sorted.last().copied().unwrap_or(0),
    )
}

/// One lane's report entry: response count, the `503` bounces absorbed
/// before those responses landed, and the latency percentiles.
fn lane_json(sorted: &[u64], retries: u64) -> String {
    format!(
        "{{\"responses\": {}, \"retries\": {retries}, \"latency_us\": {}}}",
        sorted.len(),
        latency_json(sorted)
    )
}

/// Pulls one `"name": value` number out of the `/metrics` JSON body
/// (integer counters and `1.0`-style gauges both normalize to `u64`).
fn metric_value(body: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\": ");
    let at = body.find(&needle)? + needle.len();
    let raw: String = body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    raw.parse::<f64>().ok().map(|v| v as u64)
}

/// The deterministic request mix for request `i` on connection `conn`:
/// mostly single runs rotating over the benchmark/disk grid, with one
/// surrogate-tier slot in ten, and figure, health, and metrics probes
/// folded in. No randomness — reruns are reproducible and the memo hit
/// pattern is stable.
///
/// Warm-up figure requests compute the entire paper grid, so by the
/// measured phase every grid key resolves inline from the memo. To keep
/// the exact tiers exercised under load, two measured-only slots step
/// off the grid: slot 1 asks for mxs1 on non-conventional disks (the
/// grid captured an mxs1 trace per benchmark but only memoized the
/// conventional cell, so the first request per key is a replay), and
/// slot 8 asks for mipsy on benchmarks the grid never ran (no trace at
/// all, so the first request per key is a cold full simulation).
fn request_for(conn: usize, i: usize, measured: bool) -> (&'static str, String, String) {
    let n = conn * 7919 + i; // offset per connection so mixes interleave
    match n % 10 {
        0 => ("GET", "/healthz".into(), String::new()),
        5 => {
            let figures = ["fig6", "fig9", "table4", "validation"];
            let name = figures[(n / 10) % figures.len()];
            ("GET", format!("/v1/figures/{name}"), String::new())
        }
        9 => ("GET", "/metrics".into(), String::new()),
        1 if measured && OFF_GRID.load(Ordering::Relaxed) => {
            let benchmark = Benchmark::ALL[n % Benchmark::ALL.len()];
            let disks = [
                DiskSetup::IdleOnly,
                DiskSetup::Standby2s,
                DiskSetup::Standby4s,
            ];
            let disk = disks[(n / 10) % disks.len()];
            let body = format!(
                "{{\"benchmark\": \"{}\", \"cpu\": \"mxs1\", \"disk\": \"{}\"}}",
                benchmark.name(),
                disk.name()
            );
            ("POST", "/v1/run".into(), body)
        }
        8 if measured && OFF_GRID.load(Ordering::Relaxed) => {
            // compress stays reserved for the dedup probe (DEDUP_BODY)
            // and jess/mipsy is already warm from the grid.
            let cold = [
                Benchmark::Db,
                Benchmark::Javac,
                Benchmark::Mtrt,
                Benchmark::Jack,
            ];
            let benchmark = cold[n % cold.len()];
            let body = format!(
                "{{\"benchmark\": \"{}\", \"cpu\": \"mipsy\", \"disk\": \"idle\"}}",
                benchmark.name()
            );
            ("POST", "/v1/run".into(), body)
        }
        slot => {
            let benchmark = Benchmark::ALL[n % Benchmark::ALL.len()];
            let disk = [DiskSetup::Conventional, DiskSetup::IdleOnly][(n / 6) % 2];
            // Slot 7 posts a full inline spec when `--inline-spec` is on:
            // identical content every time, so the first request is the
            // only full simulation and the rest resolve by content hash.
            if slot == 7 && INLINE_SPEC.load(Ordering::Relaxed) {
                let body = format!(
                    "{{\"spec\": {}, \"disk\": \"{}\"}}",
                    inline_spec_json(),
                    disk.name()
                );
                return ("POST", "/v1/run".into(), body);
            }
            // Slot 3 opts into the surrogate tier. Against a calibrated
            // server it lands on the surrogate lane; otherwise it falls
            // through to the exact tiers and answers identically.
            let fidelity = if slot == 3 {
                ", \"fidelity\": \"surrogate\""
            } else {
                ""
            };
            let body = format!(
                "{{\"benchmark\": \"{}\", \"disk\": \"{}\"{fidelity}}}",
                benchmark.name(),
                disk.name()
            );
            ("POST", "/v1/run".into(), body)
        }
    }
}

/// A parsed response head (the mux driver's incremental HTTP/1.1 client
/// side; the blocking [`Client`] keeps its own parser).
struct RespHead {
    status: u16,
    /// Bytes up to and including the blank line.
    head_len: usize,
    /// `Content-Length` (0 when absent).
    body_len: usize,
    /// `X-Softwatt-Lane` value, when present.
    lane: Option<String>,
    /// `X-Softwatt-Source` value, when present (`local|peer|sim`).
    source: Option<String>,
    /// `X-Softwatt-Fidelity` value, when present.
    fidelity: Option<String>,
    /// `X-Softwatt-Error-Bound-Pct` value, when present.
    error_bound_pct: Option<f64>,
    /// `Retry-After` seconds, when present (on `503`s).
    retry_after: Option<u64>,
    /// `Connection: close` was sent.
    close: bool,
}

/// Parses a response head out of `buf`, or `None` while incomplete.
fn parse_head(buf: &[u8]) -> Option<RespHead> {
    let head_len = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_len]).ok()?;
    let mut lines = head.split("\r\n");
    let status = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let mut body_len = 0;
    let mut lane = None;
    let mut source = None;
    let mut fidelity = None;
    let mut error_bound_pct = None;
    let mut retry_after = None;
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            body_len = value.parse().ok()?;
        } else if name.eq_ignore_ascii_case("x-softwatt-lane") {
            lane = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("x-softwatt-source") {
            source = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("x-softwatt-fidelity") {
            fidelity = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("x-softwatt-error-bound-pct") {
            error_bound_pct = value.parse().ok();
        } else if name.eq_ignore_ascii_case("retry-after") {
            retry_after = value.parse().ok();
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        }
    }
    Some(RespHead {
        status,
        head_len,
        body_len,
        lane,
        source,
        fidelity,
        error_bound_pct,
        retry_after,
        close,
    })
}

/// Where a multiplexed connection is in the run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Sending its unrecorded warm-up mix.
    Warmup,
    /// Warm-up finished; idle until every connection gets here (the
    /// epoll-loop equivalent of the old thread barrier).
    Ready,
    /// Sending the measured mix.
    Measured,
    /// All requests answered (or the connection gave up).
    Done,
}

/// One closed-loop connection owned by the mux driver: at most one
/// request outstanding, reconnecting whenever the server closes on it.
/// With `--cluster` each connection is pinned to one node for its whole
/// life (`target`), so keep-alive and lane attribution stay per-node.
struct MuxConn {
    stream: Option<TcpStream>,
    target: SocketAddr,
    id: usize,
    phase: Phase,
    /// Next request index within the current phase.
    index: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    read_buf: Vec<u8>,
    sent_at: Instant,
    /// A request is in flight (written or being written).
    awaiting: bool,
    /// `503` bounces absorbed so far for the *current* request index.
    retries: u32,
    /// When set, the current index re-sends at this instant (backoff).
    retry_at: Option<Instant>,
    interest: u32,
}

/// The request `Client` would send, as one preformatted buffer.
fn format_request(method: &str, path: &str, body: &str) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: keep-alive\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

impl MuxConn {
    fn connect(target: SocketAddr, id: usize, phase: Phase, epoll: &Epoll) -> MuxConn {
        let stream = TcpStream::connect(target).ok().and_then(|s| {
            s.set_nodelay(true).ok()?;
            s.set_nonblocking(true).ok()?;
            epoll
                .add(s.as_raw_fd(), EPOLLIN | EPOLLRDHUP, id as u64)
                .ok()?;
            Some(s)
        });
        MuxConn {
            stream,
            target,
            id,
            phase,
            index: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            read_buf: Vec::new(),
            sent_at: Instant::now(),
            awaiting: false,
            retries: 0,
            retry_at: None,
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }

    /// Drops the current stream and dials a fresh one (the server closed
    /// on us, or the old socket broke).
    fn reconnect(&mut self, epoll: &Epoll) -> bool {
        if let Some(old) = self.stream.take() {
            epoll.delete(old.as_raw_fd());
        }
        self.read_buf.clear();
        self.write_buf.clear();
        self.write_pos = 0;
        self.awaiting = false;
        *self = MuxConn {
            id: self.id,
            phase: self.phase,
            index: self.index,
            retries: self.retries,
            retry_at: self.retry_at,
            ..MuxConn::connect(self.target, self.id, self.phase, epoll)
        };
        self.stream.is_some()
    }

    /// Loads the next request of the current phase into the write buffer
    /// and pushes as much of it as the socket takes right now.
    fn issue(&mut self, epoll: &Epoll) {
        let (method, path, body) = request_for(self.id, self.index, self.phase == Phase::Measured);
        self.write_buf = format_request(method, &path, &body);
        self.write_pos = 0;
        self.sent_at = Instant::now();
        self.awaiting = true;
        self.flush(epoll);
    }

    /// Writes pending request bytes; adjusts `EPOLLOUT` interest to match
    /// whether any remain.
    fn flush(&mut self, epoll: &Epoll) {
        let Some(stream) = self.stream.as_mut() else {
            return;
        };
        while self.write_pos < self.write_buf.len() {
            match stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => break,
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // the read side will surface the failure
            }
        }
        let want = if self.write_pos < self.write_buf.len() {
            EPOLLIN | EPOLLOUT | EPOLLRDHUP
        } else {
            EPOLLIN | EPOLLRDHUP
        };
        if want != self.interest {
            self.interest = want;
            let _ = epoll.modify(stream.as_raw_fd(), want, self.id as u64);
        }
    }

    /// Reads whatever the socket has. `Ok(true)` means the peer closed.
    fn fill(&mut self, scratch: &mut [u8]) -> io::Result<bool> {
        let Some(stream) = self.stream.as_mut() else {
            return Ok(true);
        };
        loop {
            match stream.read(scratch) {
                Ok(0) => return Ok(true),
                Ok(n) => self.read_buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Drives every connection through warm-up and the measured phase off one
/// epoll loop. Returns the tally, the measured wall-clock seconds, and —
/// with `--cold-grid` — what the cold side traffic saw. Connections
/// round-robin over `targets` (one entry except with `--cluster`); the
/// cold side traffic aims at the first node.
fn run_mux(
    targets: &[SocketAddr],
    connections: usize,
    requests: usize,
    warmup: usize,
    cold_grid: bool,
) -> (Tally, f64, Option<ColdGridStats>) {
    let epoll = Epoll::new().expect("epoll");
    let start_phase = if warmup > 0 {
        Phase::Warmup
    } else {
        Phase::Ready
    };
    let mut conns: Vec<MuxConn> = (0..connections)
        .map(|id| MuxConn::connect(targets[id % targets.len()], id, start_phase, &epoll))
        .collect();
    let mut tally = Tally::default();
    for conn in &mut conns {
        if conn.stream.is_none() {
            // Could not even dial: everything it would have sent is lost.
            tally.transport_errors += requests as u64;
            conn.phase = Phase::Done;
        } else if conn.phase == Phase::Warmup {
            conn.issue(&epoll);
        }
    }

    let mut measured_started: Option<Instant> = None;
    let mut cold_handle = None;
    let mut scratch = vec![0u8; 64 * 1024];
    let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
    let wall_s = loop {
        // The "barrier": once no connection is still warming up, start the
        // clock, launch the cold side traffic inside the measured window,
        // and release the measured mix everywhere at once.
        if measured_started.is_none() && conns.iter().all(|c| c.phase != Phase::Warmup) {
            measured_started = Some(Instant::now());
            if cold_grid {
                let cold_target = targets[0];
                cold_handle = Some(
                    std::thread::Builder::new()
                        .name("loadgen-cold-grid".into())
                        .spawn(move || run_cold_grid(cold_target))
                        .expect("spawn cold grid"),
                );
            }
            for conn in &mut conns {
                if conn.phase == Phase::Ready {
                    conn.phase = Phase::Measured;
                    conn.index = 0;
                    if conn.stream.is_some() || conn.reconnect(&epoll) {
                        conn.issue(&epoll);
                    } else {
                        tally.transport_errors += requests as u64;
                        conn.phase = Phase::Done;
                    }
                }
            }
        }
        if conns.iter().all(|c| c.phase == Phase::Done) {
            break measured_started.map_or(0.0, |s| s.elapsed().as_secs_f64());
        }

        let n = epoll.wait(&mut events, 100);
        for ev in events.iter().take(n) {
            let ev = *ev;
            let (token, ready) = (ev.data as usize, ev.events);
            let Some(conn) = conns.get_mut(token) else {
                continue;
            };
            if conn.phase == Phase::Done || !conn.awaiting {
                continue;
            }
            if ready & EPOLLOUT != 0 {
                conn.flush(&epoll);
            }
            let mut broken = ready & (EPOLLERR | EPOLLHUP) != 0;
            if ready & (EPOLLIN | EPOLLRDHUP) != 0 {
                match conn.fill(&mut scratch) {
                    Ok(eof) => broken |= eof,
                    Err(_) => broken = true,
                }
            }
            step(conn, &mut tally, broken, warmup, requests, &epoll);
        }

        // Stuck-request guard: a response overdue past the client timeout
        // counts as a transport error and the connection is replaced.
        let now = Instant::now();
        for conn in &mut conns {
            if conn.phase != Phase::Done
                && conn.awaiting
                && now.duration_since(conn.sent_at) > TIMEOUT
            {
                fail_request(conn, &mut tally, warmup, requests, &epoll);
            }
        }

        // Backoff expiry: re-send the held request index of any
        // connection whose retry window elapsed (redialing if the server
        // closed the bounced socket).
        for conn in &mut conns {
            if conn.phase == Phase::Done || conn.retry_at.is_none_or(|at| now < at) {
                continue;
            }
            conn.retry_at = None;
            if conn.stream.is_some() || conn.reconnect(&epoll) {
                conn.issue(&epoll);
            } else {
                fail_request(conn, &mut tally, warmup, requests, &epoll);
            }
        }
    };
    let cold_stats = cold_handle.map(|h| h.join().expect("cold grid panicked"));
    (tally, wall_s, cold_stats)
}

/// Consumes any complete response on `conn` (recording it), then issues
/// the next request or advances the phase; `broken` routes through the
/// transport-error path when no full response arrived first.
fn step(
    conn: &mut MuxConn,
    tally: &mut Tally,
    broken: bool,
    warmup: usize,
    requests: usize,
    epoll: &Epoll,
) {
    let complete =
        parse_head(&conn.read_buf).filter(|h| conn.read_buf.len() >= h.head_len + h.body_len);
    let Some(head) = complete else {
        if broken {
            fail_request(conn, tally, warmup, requests, epoll);
        }
        return;
    };
    conn.read_buf.drain(..head.head_len + head.body_len);
    conn.awaiting = false;
    let us = conn.sent_at.elapsed().as_micros() as u64;
    match conn.phase {
        Phase::Warmup => tally.warmup_latencies_us.push(us),
        Phase::Measured => {
            // In-place retry: a retryable `503` holds the request index
            // and re-sends after backoff instead of counting as an
            // answer, pacing off the server's `Retry-After` hint.
            if head.status == 503 && conn.retries < MAX_RETRIES {
                let seed = mix64(((conn.id as u64) << 32) ^ conn.index as u64);
                let delay = backoff_delay(conn.retries, head.retry_after, seed);
                conn.retries += 1;
                conn.retry_at = Some(Instant::now() + delay);
                if head.close {
                    if let Some(old) = conn.stream.take() {
                        epoll.delete(old.as_raw_fd());
                    }
                    conn.read_buf.clear();
                }
                return;
            }
            tally.latencies_us.push(us);
            let lane_idx = match head.lane.as_deref() {
                Some("surrogate") => {
                    tally.surrogate_us.push(us);
                    Some(0)
                }
                Some("inline") => {
                    tally.inline_us.push(us);
                    Some(1)
                }
                Some("replay") => {
                    tally.replay_us.push(us);
                    Some(2)
                }
                Some("cold") => {
                    tally.cold_us.push(us);
                    Some(3)
                }
                _ => None, // health/metrics probes and errors carry no lane
            };
            if conn.retries > 0 {
                match lane_idx {
                    Some(i) => tally.lane_retries[i] += u64::from(conn.retries),
                    None => tally.retries_unattributed += u64::from(conn.retries),
                }
                conn.retries = 0;
            }
            match head.source.as_deref() {
                Some("local") => tally.source_local += 1,
                Some("peer") => tally.source_peer += 1,
                Some("sim") => tally.source_sim += 1,
                _ => {}
            }
            if head.fidelity.is_some() {
                tally.fidelity_tagged += 1;
            }
            if let Some(bound) = head.error_bound_pct {
                tally.error_bound_pct =
                    Some(tally.error_bound_pct.map_or(bound, |b: f64| b.max(bound)));
            }
            match head.status {
                200..=299 => tally.ok_2xx += 1,
                503 => tally.backpressure_503 += 1,
                400..=499 => tally.client_4xx += 1,
                _ => tally.server_5xx += 1,
            }
        }
        Phase::Ready | Phase::Done => {}
    }
    advance(conn, tally, head.close, warmup, requests, epoll);
}

/// Moves `conn` to its next request (or next phase) after a response.
/// `closed` means the server sent `Connection: close`, so the socket is
/// spent regardless of what comes next.
fn advance(
    conn: &mut MuxConn,
    tally: &mut Tally,
    closed: bool,
    warmup: usize,
    requests: usize,
    epoll: &Epoll,
) {
    conn.index += 1;
    conn.retries = 0;
    conn.retry_at = None;
    let phase_len = if conn.phase == Phase::Warmup {
        warmup
    } else {
        requests
    };
    if closed {
        // Drop the spent socket now; whoever needs one next redials.
        if let Some(old) = conn.stream.take() {
            epoll.delete(old.as_raw_fd());
        }
        conn.read_buf.clear();
    }
    if conn.index >= phase_len {
        conn.phase = if conn.phase == Phase::Warmup {
            Phase::Ready
        } else {
            Phase::Done
        };
        return;
    }
    if conn.stream.is_some() || conn.reconnect(epoll) {
        conn.issue(epoll);
    } else if conn.phase == Phase::Measured {
        tally.transport_errors += (requests - conn.index) as u64;
        conn.phase = Phase::Done;
    } else {
        // Warm-up casualties are not counted; sit out until the barrier.
        conn.phase = Phase::Ready;
    }
}

/// The transport-error path: the socket broke (or the response timed
/// out) under an in-flight request. Warm-up losses are uncounted, like
/// the thread driver before; measured losses count one error and the
/// connection redials for the next request.
fn fail_request(
    conn: &mut MuxConn,
    tally: &mut Tally,
    warmup: usize,
    requests: usize,
    epoll: &Epoll,
) {
    if conn.phase == Phase::Measured {
        tally.transport_errors += 1;
        // Bounces absorbed before the transport gave out still happened;
        // no lane ever answered, so they land unattributed.
        tally.retries_unattributed += u64::from(conn.retries);
    }
    if let Some(old) = conn.stream.take() {
        epoll.delete(old.as_raw_fd());
    }
    conn.read_buf.clear();
    conn.awaiting = false;
    advance(conn, tally, false, warmup, requests, epoll);
}

/// The paper grid as a `/v1/batch` body, mirroring
/// `ExperimentSuite::paper_grid` (which needs a suite handle this side of
/// the wire does not have).
fn paper_grid_body() -> String {
    let mut queries = Vec::new();
    let mut push = |benchmark: Benchmark, cpu: CpuModel, disk: DiskSetup| {
        queries.push(format!(
            "{{\"benchmark\": \"{}\", \"cpu\": \"{}\", \"disk\": \"{}\"}}",
            benchmark.name(),
            cpu.name(),
            disk.name()
        ));
    };
    for &benchmark in Benchmark::ALL.iter() {
        for disk in DiskSetup::ALL {
            push(benchmark, CpuModel::Mxs, disk);
        }
        push(benchmark, CpuModel::Mxs, DiskSetup::SleepExt);
        push(benchmark, CpuModel::MxsSingleIssue, DiskSetup::Conventional);
    }
    push(Benchmark::Jess, CpuModel::Mipsy, DiskSetup::Conventional);
    format!("{{\"queries\": [{}], \"jobs\": 2}}", queries.join(", "))
}

/// Retries a request through `503` backpressure bounces (the honest
/// client response to `Retry-After`): capped exponential backoff paced
/// by the server's hint, deterministic jitter, bounded attempt count.
/// Returns the final response plus how many bounces were absorbed.
fn request_with_retries(
    client: &mut Client,
    method: &str,
    path: &str,
    body: &str,
    salt: u64,
) -> (u16, String, u32) {
    // Seed the jitter off what is being requested plus the caller's
    // salt, so the three dedup runs (identical path and body) still
    // spread out instead of thundering back in lockstep.
    let seed = mix64(path.len() as u64 ^ ((body.len() as u64) << 20) ^ (salt << 40));
    let mut retries = 0u32;
    loop {
        let resp = client.request(method, path, body).expect("request");
        if resp.status == 503 && retries < MAX_RETRIES {
            let hint = resp.header("retry-after").and_then(|v| v.parse().ok());
            std::thread::sleep(backoff_delay(retries, hint, seed));
            retries += 1;
            continue;
        }
        let lane = resp.header("x-softwatt-lane").unwrap_or("").to_string();
        return (resp.status, lane, retries);
    }
}

/// The `--cold-grid` side traffic: one full-grid cold batch, plus three
/// simultaneous runs of the same cold key that should collapse into one
/// in-flight job (`serve.dedup_attached`). Both retry through the `503`s
/// a saturated cold queue hands out, so the batch is genuinely admitted
/// and in flight even when the mix's own cold traffic got there first.
fn run_cold_grid(target: SocketAddr) -> ColdGridStats {
    let batch = std::thread::Builder::new()
        .name("loadgen-batch".into())
        .spawn(move || {
            let mut client = Client::connect(target, TIMEOUT).expect("batch connect");
            let started = Instant::now();
            let (status, _lane, retries) =
                request_with_retries(&mut client, "POST", "/v1/batch", &paper_grid_body(), 0);
            (status, started.elapsed().as_secs_f64(), retries)
        })
        .expect("spawn batch");
    // Let the batch contend for the cold worker first: the duplicate runs
    // then queue (one) and attach (the rest), maximizing the dedup window.
    std::thread::sleep(Duration::from_millis(100));
    let dedup_handles: Vec<_> = (0..DEDUP_CONNS)
        .map(|i| {
            std::thread::Builder::new()
                .name(format!("loadgen-dedup-{i}"))
                .spawn(move || {
                    let mut client = Client::connect(target, TIMEOUT).expect("dedup connect");
                    request_with_retries(&mut client, "POST", "/v1/run", dedup_body(), i as u64 + 1)
                })
                .expect("spawn dedup run")
        })
        .collect();
    let (batch_status, batch_wall_s, batch_retries) = batch.join().expect("batch panicked");
    let dedup = dedup_handles
        .into_iter()
        .map(|h| h.join().expect("dedup run panicked"))
        .collect();
    ColdGridStats {
        batch_status,
        batch_wall_s,
        batch_retries,
        dedup,
    }
}
