//! The Mipsy model: a MIPS R4000-like single-issue in-order pipeline with
//! blocking caches.
//!
//! The paper runs every benchmark on Mipsy first (to warm file caches, take
//! checkpoints, and collect memory-system statistics) because MXS does not
//! report detailed memory behavior. Mipsy has no branch predictor; taken
//! control transfers cost a fixed front-end bubble.

use softwatt_isa::{CpuEvent, InstrSource, OpClass};
use softwatt_mem::MemHierarchy;
use softwatt_stats::{StatsCollector, UnitEvent};

use crate::common::{record_execute_events, Cpu, CycleOutcome};
use crate::config::MipsyConfig;

/// The in-order CPU model. See the module docs.
///
/// # Examples
///
/// ```
/// use softwatt_cpu::{Cpu, MipsyConfig, MipsyCpu};
/// use softwatt_isa::{Instr, Reg, VecSource};
/// use softwatt_mem::{MemConfig, MemHierarchy};
/// use softwatt_stats::{Clocking, StatsCollector};
///
/// let mut cpu = MipsyCpu::new(MipsyConfig::default());
/// let mut mem = MemHierarchy::new(MemConfig::default());
/// let mut stats = StatsCollector::new(Clocking::default(), 1_000);
/// let mut src = VecSource::new(vec![Instr::nop(0), Instr::nop(4)]);
/// while !cpu.cycle(&mut src, &mut mem, &mut stats).program_exited {
///     stats.tick();
/// }
/// assert_eq!(cpu.committed_instructions(), 2);
/// ```
#[derive(Debug)]
pub struct MipsyCpu {
    config: MipsyConfig,
    stall_cycles: u32,
    committed: u64,
    exited: bool,
}

impl MipsyCpu {
    /// Creates a Mipsy CPU.
    pub fn new(config: MipsyConfig) -> MipsyCpu {
        MipsyCpu {
            config,
            stall_cycles: 0,
            committed: 0,
            exited: false,
        }
    }
}

impl Cpu for MipsyCpu {
    fn cycle(
        &mut self,
        frontend: &mut dyn InstrSource,
        mem: &mut MemHierarchy,
        stats: &mut StatsCollector,
    ) -> CycleOutcome {
        if self.exited {
            return CycleOutcome {
                program_exited: true,
                ..CycleOutcome::default()
            };
        }
        if self.stall_cycles > 0 {
            self.stall_cycles -= 1;
            return CycleOutcome::default();
        }

        let Some(instr) = frontend.next_instr(stats) else {
            if frontend.stalled() {
                // Transient stall (process blocked on I/O under analytic
                // idle handling): an empty cycle, resolved by the driver.
                return CycleOutcome::default();
            }
            self.exited = true;
            return CycleOutcome {
                program_exited: true,
                ..CycleOutcome::default()
            };
        };
        debug_assert!(instr.validate().is_ok());

        stats.record(UnitEvent::FetchCycle);
        stats.record(UnitEvent::DecodeOp);
        let fetch_stall = mem.fetch(instr.pc, stats);

        let mut event = None;
        let mut data_stall = 0;
        if let Some(addr) = instr.mem_addr {
            if !mem.translate(addr, stats) {
                // Software-managed TLB: raise the fault; the OS injects the
                // utlb handler next and refills. The data access proceeds
                // as if re-executed after the refill.
                event = Some(CpuEvent::TlbMiss { vaddr: addr });
            }
            let latency = mem.data_access(addr, instr.op == OpClass::Store, stats);
            data_stall = latency.saturating_sub(mem.config().l1_hit_cycles);
        }

        record_execute_events(&instr, stats);
        stats.record(UnitEvent::CommitInstr);

        let branch_stall = if instr.op.is_branch() && instr.taken {
            self.config.taken_branch_penalty
        } else {
            0
        };
        let exec_stall = instr.op.latency().saturating_sub(1);

        self.stall_cycles = fetch_stall + data_stall + branch_stall + exec_stall;
        self.committed += 1;

        if event.is_none() && instr.op == OpClass::Syscall {
            event = instr.syscall.map(CpuEvent::SyscallRetired);
        }

        CycleOutcome {
            committed: 1,
            event,
            program_exited: false,
        }
    }

    fn committed_instructions(&self) -> u64 {
        self.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softwatt_isa::{FileRef, Instr, Reg, SyscallKind, VecSource};
    use softwatt_mem::MemConfig;
    use softwatt_stats::Clocking;

    fn rig() -> (MipsyCpu, MemHierarchy, StatsCollector) {
        (
            MipsyCpu::new(MipsyConfig::default()),
            MemHierarchy::new(MemConfig::default()),
            StatsCollector::new(Clocking::default(), 1_000_000),
        )
    }

    fn run_to_exit(
        cpu: &mut MipsyCpu,
        src: &mut VecSource,
        mem: &mut MemHierarchy,
        stats: &mut StatsCollector,
    ) -> (u64, Vec<CpuEvent>) {
        let mut cycles = 0;
        let mut events = Vec::new();
        loop {
            let out = cpu.cycle(src, mem, stats);
            if out.program_exited {
                break;
            }
            if let Some(e) = out.event {
                events.push(e);
            }
            stats.tick();
            cycles += 1;
            assert!(cycles < 1_000_000, "runaway test");
        }
        (cycles, events)
    }

    #[test]
    fn straight_line_code_has_cpi_above_one_due_to_cold_misses() {
        let (mut cpu, mut mem, mut stats) = rig();
        // 256 hot-loop instructions in one cache line region.
        let mut src: VecSource = (0..256u64)
            .map(|i| Instr::alu((i % 16) * 4, Reg::int(1), None, None))
            .collect();
        let (cycles, _) = run_to_exit(&mut cpu, &mut src, &mut mem, &mut stats);
        assert_eq!(cpu.committed_instructions(), 256);
        assert!(cycles >= 256);
        assert!(
            cycles < 1000,
            "warm loop should be near CPI 1, got {cycles}"
        );
    }

    #[test]
    fn taken_branches_add_bubbles() {
        let (mut cpu, mut mem, mut stats) = rig();
        let n = 64u64;
        let mut straight: VecSource = (0..n)
            .map(|i| Instr::alu(i % 8 * 4, Reg::int(1), None, None))
            .collect();
        let (base, _) = run_to_exit(&mut cpu, &mut straight, &mut mem, &mut stats);

        let (mut cpu2, mut mem2, mut stats2) = rig();
        let mut branchy: VecSource = (0..n)
            .map(|i| Instr::branch(i % 8 * 4, None, true, 0))
            .collect();
        let (with_branches, _) = run_to_exit(&mut cpu2, &mut branchy, &mut mem2, &mut stats2);
        assert!(
            with_branches >= base + n / 2,
            "taken branches must cost bubbles: {with_branches} vs {base}"
        );
    }

    #[test]
    fn tlb_miss_raises_event() {
        let (mut cpu, mut mem, mut stats) = rig();
        let mut src = VecSource::new(vec![Instr::load(0, Reg::int(1), None, 0x0040_0000)]);
        let (_, events) = run_to_exit(&mut cpu, &mut src, &mut mem, &mut stats);
        assert_eq!(events, vec![CpuEvent::TlbMiss { vaddr: 0x0040_0000 }]);
    }

    #[test]
    fn kernel_address_does_not_fault() {
        let (mut cpu, mut mem, mut stats) = rig();
        let mut src = VecSource::new(vec![Instr::load(0, Reg::int(1), None, 0x8000_0100)]);
        let (_, events) = run_to_exit(&mut cpu, &mut src, &mut mem, &mut stats);
        assert!(events.is_empty());
    }

    #[test]
    fn syscall_raises_event() {
        let (mut cpu, mut mem, mut stats) = rig();
        let call = SyscallKind::Open { file: FileRef(3) };
        let mut src = VecSource::new(vec![Instr::syscall(0, call)]);
        let (_, events) = run_to_exit(&mut cpu, &mut src, &mut mem, &mut stats);
        assert_eq!(events, vec![CpuEvent::SyscallRetired(call)]);
    }

    #[test]
    fn dcache_miss_stalls_longer_than_hit() {
        let (mut cpu, mut mem, mut stats) = rig();
        // Two loads to the same kernel line: miss then hit.
        let mut src = VecSource::new(vec![
            Instr::load(0, Reg::int(1), None, 0x8000_0000),
            Instr::load(4, Reg::int(2), None, 0x8000_0008),
        ]);
        let (cycles, _) = run_to_exit(&mut cpu, &mut src, &mut mem, &mut stats);
        // First load pays L2+DRAM; second is 1-cycle.
        let cfg = MemConfig::default();
        assert!(cycles as u32 >= cfg.l2_hit_cycles + cfg.dram_cycles);
    }

    #[test]
    fn commit_events_counted() {
        let (mut cpu, mut mem, mut stats) = rig();
        let mut src: VecSource = (0..10u64).map(|i| Instr::nop(i * 4)).collect();
        run_to_exit(&mut cpu, &mut src, &mut mem, &mut stats);
        let t = stats.totals().combined();
        assert_eq!(t.get(UnitEvent::CommitInstr), 10);
        assert_eq!(t.get(UnitEvent::IcacheAccess), 10);
    }
}
