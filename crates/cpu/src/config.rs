//! CPU model configurations.

/// Configuration of the out-of-order MXS model. Defaults are the paper's
/// Table 1 values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MxsConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions decoded/renamed/dispatched per cycle.
    pub decode_width: u32,
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Instruction window (reorder buffer) entries.
    pub window_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Integer functional units.
    pub int_units: u32,
    /// Floating-point functional units.
    pub fp_units: u32,
    /// Cache ports for loads/stores per cycle.
    pub mem_ports: u32,
    /// Branch history table entries (2-bit counters).
    pub bht_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// Return address stack entries.
    pub ras_entries: usize,
    /// Front-end refill bubble after a mispredicted branch resolves.
    pub mispredict_penalty: u32,
    /// Fetch-buffer capacity in instructions (decoupling queue).
    pub fetch_buffer: usize,
}

impl Default for MxsConfig {
    fn default() -> Self {
        MxsConfig {
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            window_size: 64,
            lsq_size: 32,
            int_units: 2,
            fp_units: 2,
            mem_ports: 1,
            bht_entries: 1024,
            btb_entries: 1024,
            ras_entries: 32,
            mispredict_penalty: 4,
            fetch_buffer: 8,
        }
    }
}

impl MxsConfig {
    /// The single-issue configuration the paper uses in Figure 3: all
    /// pipeline widths reduced to one, other resources unchanged.
    pub fn single_issue() -> MxsConfig {
        MxsConfig {
            fetch_width: 1,
            decode_width: 1,
            issue_width: 1,
            commit_width: 1,
            fetch_buffer: 2,
            ..MxsConfig::default()
        }
    }

    /// Validates structural parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first nonsensical parameter (zero
    /// widths or empty structures).
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.fetch_width == 0
            || self.decode_width == 0
            || self.issue_width == 0
            || self.commit_width == 0
        {
            return Err("pipeline widths must be positive");
        }
        if self.window_size == 0 || self.lsq_size == 0 || self.fetch_buffer == 0 {
            return Err("window, LSQ, and fetch buffer must be non-empty");
        }
        if self.int_units == 0 || self.mem_ports == 0 {
            return Err("need at least one integer unit and one memory port");
        }
        if self.bht_entries == 0 || self.btb_entries == 0 || self.ras_entries == 0 {
            return Err("predictor structures must be non-empty");
        }
        Ok(())
    }
}

/// Configuration of the in-order Mipsy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MipsyConfig {
    /// Extra bubble cycles on taken control transfers (static prediction,
    /// delay-slot-less approximation of an R4000 front end).
    pub taken_branch_penalty: u32,
}

impl Default for MipsyConfig {
    fn default() -> Self {
        MipsyConfig {
            taken_branch_penalty: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = MxsConfig::default();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.window_size, 64);
        assert_eq!(c.lsq_size, 32);
        assert_eq!(c.int_units, 2);
        assert_eq!(c.fp_units, 2);
        assert_eq!(c.bht_entries, 1024);
        assert_eq!(c.btb_entries, 1024);
        assert_eq!(c.ras_entries, 32);
        c.validate().unwrap();
    }

    #[test]
    fn single_issue_narrows_widths_only() {
        let c = MxsConfig::single_issue();
        assert_eq!(c.fetch_width, 1);
        assert_eq!(c.issue_width, 1);
        assert_eq!(c.window_size, MxsConfig::default().window_size);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_zero_width() {
        let c = MxsConfig {
            issue_width: 0,
            ..MxsConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_window() {
        let c = MxsConfig {
            window_size: 0,
            ..MxsConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
