//! The CPU model trait and shared per-instruction event accounting.

use softwatt_isa::{CpuEvent, Instr, InstrSource, OpClass};
use softwatt_mem::MemHierarchy;
use softwatt_stats::{StatsCollector, UnitEvent};

/// Result of simulating one machine cycle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CycleOutcome {
    /// Instructions committed this cycle.
    pub committed: u32,
    /// Architectural event the OS must handle, if any (at most one per
    /// cycle; the machine serializes around them).
    pub event: Option<CpuEvent>,
    /// The instruction source reported end-of-program and the pipeline has
    /// drained.
    pub program_exited: bool,
}

/// A cycle-level CPU model.
///
/// The caller (the simulator main loop) invokes [`Cpu::cycle`] once per
/// machine cycle and then advances the [`StatsCollector`] clock itself, so
/// the OS can adjust the software [`softwatt_stats::Mode`] between cycles.
pub trait Cpu {
    /// Simulates one cycle: fetches from `frontend`, accesses `mem`,
    /// records events into `stats`.
    fn cycle(
        &mut self,
        frontend: &mut dyn InstrSource,
        mem: &mut MemHierarchy,
        stats: &mut StatsCollector,
    ) -> CycleOutcome;

    /// Instructions committed since construction.
    fn committed_instructions(&self) -> u64;

    /// Flushes any per-stage wall-clock time accumulated while
    /// [`softwatt_obs::stage_timing`] was on into obs counters
    /// (`<model>.stage.<name>_ns`). Default: no-op — models without stage
    /// instrumentation ignore it.
    fn flush_stage_timing(&self) {}
}

/// Records the register-file and functional-unit events common to both CPU
/// models for one executing instruction.
pub(crate) fn record_execute_events(instr: &Instr, stats: &mut StatsCollector) {
    let mut reads = 0;
    if instr.src1.is_some() {
        reads += 1;
    }
    if instr.src2.is_some() {
        reads += 1;
    }
    if reads > 0 {
        stats.record_n(UnitEvent::RegRead, reads);
    }
    if instr.dest.is_some() {
        stats.record(UnitEvent::RegWrite);
        stats.record(UnitEvent::ResultBus);
    }
    match instr.op {
        OpClass::IntAlu | OpClass::BranchCond | OpClass::Jump | OpClass::Call | OpClass::Return => {
            stats.record(UnitEvent::AluOp)
        }
        OpClass::IntMul | OpClass::IntDiv => stats.record(UnitEvent::MulOp),
        OpClass::FpAdd => stats.record(UnitEvent::FpAluOp),
        OpClass::FpMul | OpClass::FpDiv => stats.record(UnitEvent::FpMulOp),
        OpClass::Sync => {
            stats.record(UnitEvent::AluOp);
            stats.record(UnitEvent::SyncOp);
        }
        OpClass::Eret => stats.record(UnitEvent::AluOp),
        OpClass::Load | OpClass::Store | OpClass::Syscall | OpClass::Nop => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softwatt_isa::Reg;
    use softwatt_stats::Clocking;

    #[test]
    fn alu_records_reads_write_and_fu() {
        let mut stats = StatsCollector::new(Clocking::default(), 1000);
        let i = Instr::alu(0, Reg::int(1), Some(Reg::int(2)), Some(Reg::int(3)));
        record_execute_events(&i, &mut stats);
        let t = stats.totals().combined();
        assert_eq!(t.get(UnitEvent::RegRead), 2);
        assert_eq!(t.get(UnitEvent::RegWrite), 1);
        assert_eq!(t.get(UnitEvent::AluOp), 1);
        assert_eq!(t.get(UnitEvent::ResultBus), 1);
    }

    #[test]
    fn store_has_no_regwrite() {
        let mut stats = StatsCollector::new(Clocking::default(), 1000);
        let i = Instr::store(0, Some(Reg::int(1)), Some(Reg::int(29)), 0x100);
        record_execute_events(&i, &mut stats);
        let t = stats.totals().combined();
        assert_eq!(t.get(UnitEvent::RegWrite), 0);
        assert_eq!(t.get(UnitEvent::RegRead), 2);
    }

    #[test]
    fn sync_records_sync_op() {
        let mut stats = StatsCollector::new(Clocking::default(), 1000);
        record_execute_events(&Instr::sync(0, 0x100), &mut stats);
        let t = stats.totals().combined();
        assert_eq!(t.get(UnitEvent::SyncOp), 1);
        assert_eq!(t.get(UnitEvent::AluOp), 1);
    }

    #[test]
    fn fp_ops_use_fp_units() {
        let mut stats = StatsCollector::new(Clocking::default(), 1000);
        record_execute_events(
            &Instr::arith(
                OpClass::FpMul,
                0,
                Reg::fp(0),
                Some(Reg::fp(1)),
                Some(Reg::fp(2)),
            ),
            &mut stats,
        );
        let t = stats.totals().combined();
        assert_eq!(t.get(UnitEvent::FpMulOp), 1);
        assert_eq!(t.get(UnitEvent::AluOp), 0);
    }
}
