//! The MXS model: a MIPS R10000-like out-of-order superscalar.
//!
//! See the crate docs for the fidelity contract. Structure per cycle
//! (oldest work first, matching hardware ordering): commit → complete →
//! issue → dispatch/rename → fetch.
//!
//! Misprediction handling is *oracle-at-fetch*: the fetched instruction
//! carries its actual outcome, so the model knows at fetch time whether the
//! predictor would have gone wrong. Fetch then stalls until the branch
//! resolves plus the front-end refill penalty, and wrong-path energy is
//! charged as [`UnitEvent::WrongPathFetch`] events without simulating bogus
//! instructions (real instructions are never squashed, so synthetic
//! generators never need to replay).

use std::collections::VecDeque;

use softwatt_isa::{CpuEvent, Instr, InstrSource, OpClass, Reg};
use softwatt_mem::MemHierarchy;
use softwatt_stats::{StatsCollector, UnitEvent};

use crate::bpred::{BranchHistoryTable, BranchTargetBuffer, ReturnAddressStack};
use crate::common::{record_execute_events, Cpu, CycleOutcome};
use crate::config::MxsConfig;

#[derive(Debug, Clone, Copy, PartialEq)]
enum SlotState {
    Waiting,
    Issued { complete_at: u64 },
    Done,
}

#[derive(Debug, Clone)]
struct Slot {
    seq: u64,
    instr: Instr,
    state: SlotState,
    // Sequence numbers of in-window producers this instruction waits on.
    deps: [Option<u64>; 2],
    mispredicted: bool,
    in_lsq: bool,
    // TLB fault detected at fetch; raised as an event at commit.
    fault: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    instr: Instr,
    fault: Option<u64>,
}

/// The out-of-order CPU model. See the crate docs for an example.
#[derive(Debug)]
pub struct MxsCpu {
    config: MxsConfig,
    now: u64,
    bht: BranchHistoryTable,
    btb: BranchTargetBuffer,
    ras: ReturnAddressStack,
    fetch_buffer: VecDeque<Fetched>,
    window: VecDeque<Slot>,
    next_seq: u64,
    last_writer: [Option<u64>; Reg::COUNT],
    lsq_used: usize,
    fetch_stall_until: u64,
    // Fetch halted until this mispredicted branch (by seq) resolves.
    awaiting_branch: Option<u64>,
    // A serializing instruction is in flight; fetch halted.
    draining: bool,
    source_exhausted: bool,
    committed: u64,
    mispredicts: u64,
    branches: u64,
}

impl MxsCpu {
    /// Creates an MXS CPU.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MxsConfig::validate`].
    pub fn new(config: MxsConfig) -> MxsCpu {
        config.validate().expect("invalid MXS configuration");
        MxsCpu {
            config,
            now: 0,
            bht: BranchHistoryTable::new(config.bht_entries),
            btb: BranchTargetBuffer::new(config.btb_entries),
            ras: ReturnAddressStack::new(config.ras_entries),
            fetch_buffer: VecDeque::with_capacity(config.fetch_buffer),
            window: VecDeque::with_capacity(config.window_size),
            next_seq: 0,
            last_writer: [None; Reg::COUNT],
            lsq_used: 0,
            fetch_stall_until: 0,
            awaiting_branch: None,
            draining: false,
            source_exhausted: false,
            committed: 0,
            mispredicts: 0,
            branches: 0,
        }
    }

    /// Conditional branches seen and how many mispredicted (for tests and
    /// calibration reports).
    pub fn branch_stats(&self) -> (u64, u64) {
        (self.branches, self.mispredicts)
    }

    fn front_seq(&self) -> u64 {
        self.window.front().map_or(self.next_seq, |s| s.seq)
    }

    fn dep_satisfied(&self, dep: u64) -> bool {
        let front = self.front_seq();
        if dep < front {
            return true; // producer already committed
        }
        match self.window.get((dep - front) as usize) {
            Some(slot) => match slot.state {
                SlotState::Done => true,
                SlotState::Issued { complete_at } => complete_at <= self.now,
                SlotState::Waiting => false,
            },
            None => true,
        }
    }

    fn commit_stage(&mut self, stats: &mut StatsCollector) -> (u32, Option<CpuEvent>) {
        let mut committed = 0;
        let mut event = None;
        while committed < self.config.commit_width {
            let Some(front) = self.window.front() else {
                break;
            };
            if front.state != SlotState::Done {
                break;
            }
            let slot = self.window.pop_front().expect("front exists");
            stats.record(UnitEvent::CommitInstr);
            if slot.in_lsq {
                self.lsq_used -= 1;
            }
            let instr = slot.instr;
            if instr.op == OpClass::BranchCond {
                self.bht.update(instr.pc, instr.taken);
                stats.record(UnitEvent::BhtUpdate);
                if instr.taken {
                    self.btb.update(instr.pc, instr.target);
                    stats.record(UnitEvent::BtbUpdate);
                }
            } else if matches!(instr.op, OpClass::Jump | OpClass::Call) {
                self.btb.update(instr.pc, instr.target);
                stats.record(UnitEvent::BtbUpdate);
            }
            committed += 1;
            self.committed += 1;
            if let Some(vaddr) = slot.fault {
                event = Some(CpuEvent::TlbMiss { vaddr });
                self.draining = false;
                break;
            }
            match instr.op {
                OpClass::Syscall => {
                    event = instr.syscall.map(CpuEvent::SyscallRetired);
                    self.draining = false;
                    break;
                }
                OpClass::Eret => {
                    self.draining = false;
                    break;
                }
                _ => {}
            }
        }
        (committed, event)
    }

    fn complete_stage(&mut self, stats: &mut StatsCollector) {
        let now = self.now;
        let mut resolved_awaited = false;
        let awaiting = self.awaiting_branch;
        for slot in &mut self.window {
            if let SlotState::Issued { complete_at } = slot.state {
                if complete_at <= now {
                    slot.state = SlotState::Done;
                    if slot.instr.dest.is_some() {
                        // Tag broadcast wakes up window consumers.
                        stats.record(UnitEvent::WindowWakeup);
                    }
                    if slot.mispredicted {
                        stats.record(UnitEvent::BranchMispredict);
                        stats.record_n(
                            UnitEvent::WrongPathFetch,
                            u64::from(self.config.fetch_width * self.config.mispredict_penalty) / 2,
                        );
                        self.fetch_stall_until = self
                            .fetch_stall_until
                            .max(now + u64::from(self.config.mispredict_penalty));
                        if awaiting == Some(slot.seq) {
                            resolved_awaited = true;
                        }
                    }
                }
            }
        }
        if resolved_awaited {
            self.awaiting_branch = None;
        }
    }

    fn issue_stage(&mut self, mem: &mut MemHierarchy, stats: &mut StatsCollector) {
        let mut issued = 0;
        let mut int_used = 0;
        let mut fp_used = 0;
        let mut mem_used = 0;
        let now = self.now;

        let len = self.window.len();
        for idx in 0..len {
            if issued >= self.config.issue_width {
                break;
            }
            let (state, deps, op) = {
                let s = &self.window[idx];
                (s.state, s.deps, s.instr.op)
            };
            if state != SlotState::Waiting {
                continue;
            }
            let ready = deps.iter().flatten().all(|&d| self.dep_satisfied(d));
            if !ready {
                continue;
            }
            // Structural hazards.
            match op.fu() {
                softwatt_isa::FuKind::Int => {
                    if int_used >= self.config.int_units {
                        continue;
                    }
                }
                softwatt_isa::FuKind::Fp => {
                    if fp_used >= self.config.fp_units {
                        continue;
                    }
                }
                softwatt_isa::FuKind::Mem => {
                    if mem_used >= self.config.mem_ports {
                        continue;
                    }
                }
                softwatt_isa::FuKind::None => {}
            }

            // Execute.
            let instr = self.window[idx].instr;
            let mut latency = u64::from(instr.op.latency());
            if let Some(addr) = instr.mem_addr {
                let is_store = instr.op == OpClass::Store;
                let mem_latency = mem.data_access(addr, is_store, stats);
                stats.record(UnitEvent::LsqSearch);
                latency = if is_store {
                    // Stores retire through the write buffer.
                    u64::from(instr.op.latency())
                } else {
                    u64::from(mem_latency)
                };
            }
            record_execute_events(&instr, stats);
            stats.record(UnitEvent::WindowIssue);
            self.window[idx].state = SlotState::Issued {
                complete_at: now + latency,
            };
            match op.fu() {
                softwatt_isa::FuKind::Int => int_used += 1,
                softwatt_isa::FuKind::Fp => fp_used += 1,
                softwatt_isa::FuKind::Mem => mem_used += 1,
                softwatt_isa::FuKind::None => {}
            }
            issued += 1;
        }
    }

    fn dispatch_stage(&mut self, stats: &mut StatsCollector) {
        let mut dispatched = 0;
        while dispatched < self.config.decode_width {
            let Some(fetched) = self.fetch_buffer.front().copied() else {
                break;
            };
            let instr = fetched.instr;
            let serializes = instr.op.is_serializing() || fetched.fault.is_some();
            if self.window.len() >= self.config.window_size {
                break;
            }
            if instr.op.is_mem() && self.lsq_used >= self.config.lsq_size {
                break;
            }
            if serializes && !self.window.is_empty() {
                break; // serializers enter an empty window only
            }
            self.fetch_buffer.pop_front();
            stats.record(UnitEvent::DecodeOp);
            stats.record(UnitEvent::RenameAccess);
            stats.record(UnitEvent::WindowInsert);
            let mut deps = [None, None];
            if let Some(r) = instr.src1 {
                deps[0] = self.last_writer[r.index()];
            }
            if let Some(r) = instr.src2 {
                deps[1] = self.last_writer[r.index()];
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            if let Some(d) = instr.dest {
                self.last_writer[d.index()] = Some(seq);
            }
            let in_lsq = instr.op.is_mem();
            if in_lsq {
                self.lsq_used += 1;
                stats.record(UnitEvent::LsqInsert);
            }
            self.window.push_back(Slot {
                seq,
                instr,
                state: SlotState::Waiting,
                deps,
                mispredicted: false,
                in_lsq,
                fault: fetched.fault,
            });
            dispatched += 1;
            if serializes {
                break;
            }
        }
    }

    fn fetch_stage(
        &mut self,
        frontend: &mut dyn InstrSource,
        mem: &mut MemHierarchy,
        stats: &mut StatsCollector,
    ) {
        if self.source_exhausted
            || self.draining
            || self.awaiting_branch.is_some()
            || self.now < self.fetch_stall_until
        {
            return;
        }
        if self.fetch_buffer.len() >= self.config.fetch_buffer {
            return;
        }
        let mut fetched = 0;
        stats.record(UnitEvent::FetchCycle);
        while fetched < self.config.fetch_width
            && self.fetch_buffer.len() < self.config.fetch_buffer
        {
            let Some(instr) = frontend.next_instr(stats) else {
                // A stalled frontend (process blocked on I/O under analytic
                // idle handling) resumes later; only a true end-of-stream is
                // permanent.
                if !frontend.stalled() {
                    self.source_exhausted = true;
                }
                break;
            };
            debug_assert!(instr.validate().is_ok());
            let miss_latency = mem.fetch(instr.pc, stats);
            // Software-managed TLB: translate at fetch so the fault
            // serializes the pipeline before the handler runs, keeping
            // service attribution frames clean (see module docs).
            let mut fault = None;
            if let Some(addr) = instr.mem_addr {
                if !mem.translate(addr, stats) {
                    fault = Some(addr);
                }
            }
            let mispredicted = self.predict(&instr, stats);
            if mispredicted {
                // Remember which window seq this will get: it is dispatched
                // later, so track by a sentinel updated at dispatch. We can
                // compute it now: sequence numbers are assigned in dispatch
                // order, and the fetch buffer preserves order, so this
                // instruction's seq is next_seq + buffered instructions.
                self.awaiting_branch = Some(self.next_seq + self.fetch_buffer.len() as u64);
            }
            let serializing = instr.op.is_serializing() || fault.is_some();
            self.fetch_buffer.push_back(Fetched { instr, fault });
            fetched += 1;
            if mispredicted {
                // Mark the buffered instruction for mispredict accounting
                // at resolve time (the slot flag is set during dispatch via
                // awaiting_branch matching).
                break;
            }
            if serializing {
                self.draining = true;
                break;
            }
            if miss_latency > 0 {
                self.fetch_stall_until = self.now + u64::from(miss_latency);
                break;
            }
        }
    }

    /// Consults the predictor structures for `instr`; returns whether the
    /// front end would have gone down the wrong path.
    fn predict(&mut self, instr: &Instr, stats: &mut StatsCollector) -> bool {
        match instr.op {
            OpClass::BranchCond => {
                self.branches += 1;
                stats.record(UnitEvent::BhtLookup);
                let predicted_taken = self.bht.predict(instr.pc);
                let mut wrong = predicted_taken != instr.taken;
                if predicted_taken && instr.taken {
                    stats.record(UnitEvent::BtbLookup);
                    if self.btb.lookup(instr.pc) != Some(instr.target) {
                        wrong = true; // direction right, target unknown
                    }
                }
                if wrong {
                    self.mispredicts += 1;
                }
                wrong
            }
            OpClass::Jump => {
                stats.record(UnitEvent::BtbLookup);
                false // direct target computed in decode
            }
            OpClass::Call => {
                stats.record(UnitEvent::BtbLookup);
                stats.record(UnitEvent::RasAccess);
                self.ras.push(instr.pc.wrapping_add(4));
                false
            }
            OpClass::Return => {
                stats.record(UnitEvent::RasAccess);
                let predicted = self.ras.pop();
                let wrong = predicted != Some(instr.target);
                if wrong {
                    self.mispredicts += 1;
                    self.branches += 1;
                }
                wrong
            }
            _ => false,
        }
    }
}

impl Cpu for MxsCpu {
    fn cycle(
        &mut self,
        frontend: &mut dyn InstrSource,
        mem: &mut MemHierarchy,
        stats: &mut StatsCollector,
    ) -> CycleOutcome {
        let (committed, event) = self.commit_stage(stats);
        self.complete_stage(stats);
        self.issue_stage(mem, stats);
        // Propagate the awaited-branch flag onto its slot at dispatch time.
        self.dispatch_stage(stats);
        if let Some(seq) = self.awaiting_branch {
            let front = self.front_seq();
            if seq >= front {
                if let Some(slot) = self.window.get_mut((seq - front) as usize) {
                    slot.mispredicted = true;
                }
            }
        }
        // On an event cycle the OS has not yet switched streams (it handles
        // the event after this call returns), so fetching would wrongly
        // observe end-of-stream. Real machines pay a trap-redirect bubble
        // here anyway.
        if event.is_none() {
            self.fetch_stage(frontend, mem, stats);
        }

        let program_exited =
            self.source_exhausted && self.fetch_buffer.is_empty() && self.window.is_empty();
        self.now += 1;
        CycleOutcome {
            committed,
            event,
            program_exited,
        }
    }

    fn committed_instructions(&self) -> u64 {
        self.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softwatt_isa::{FileRef, SyscallKind, VecSource};
    use softwatt_mem::MemConfig;
    use softwatt_stats::Clocking;

    fn rig(config: MxsConfig) -> (MxsCpu, MemHierarchy, StatsCollector) {
        (
            MxsCpu::new(config),
            MemHierarchy::new(MemConfig::default()),
            StatsCollector::new(Clocking::default(), 1_000_000),
        )
    }

    fn run(
        cpu: &mut MxsCpu,
        src: &mut VecSource,
        mem: &mut MemHierarchy,
        stats: &mut StatsCollector,
    ) -> (u64, Vec<CpuEvent>) {
        let mut cycles = 0u64;
        let mut events = Vec::new();
        loop {
            let out = cpu.cycle(src, mem, stats);
            if let Some(e) = out.event {
                events.push(e);
            }
            stats.tick();
            cycles += 1;
            if out.program_exited {
                break;
            }
            assert!(cycles < 2_000_000, "runaway test");
        }
        (cycles, events)
    }

    /// Independent ALU ops in a tight, cache-resident loop.
    fn independent_alu(n: u64) -> VecSource {
        (0..n)
            .map(|i| Instr::alu((i % 16) * 4, Reg::int((i % 8) as u8 + 1), None, None))
            .collect()
    }

    /// A serial dependence chain: each op reads the previous op's result.
    fn dependent_chain(n: u64) -> VecSource {
        (0..n)
            .map(|i| Instr::alu((i % 16) * 4, Reg::int(1), Some(Reg::int(1)), None))
            .collect()
    }

    #[test]
    fn superscalar_exceeds_ipc_one_on_independent_code() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let n = 4000;
        let mut src = independent_alu(n);
        let (cycles, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        assert_eq!(cpu.committed_instructions(), n);
        let ipc = n as f64 / cycles as f64;
        assert!(
            ipc > 1.5,
            "independent ALU code should exceed IPC 1.5, got {ipc:.2}"
        );
    }

    #[test]
    fn dependence_chain_limits_ipc_to_one() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let n = 4000;
        let mut src = dependent_chain(n);
        let (cycles, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        let ipc = n as f64 / cycles as f64;
        assert!(ipc < 1.1, "serial chain cannot exceed IPC 1, got {ipc:.2}");
        assert!(ipc > 0.8, "chain should still approach IPC 1, got {ipc:.2}");
    }

    #[test]
    fn single_issue_config_caps_ipc_at_one() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::single_issue());
        let n = 4000;
        let mut src = independent_alu(n);
        let (cycles, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        assert!(
            cycles >= n,
            "single-issue cannot beat one instruction per cycle"
        );
    }

    #[test]
    fn int_units_bound_throughput() {
        // 2 INT units => at most 2 ALU ops issued per cycle even at width 4.
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let n = 4000;
        let mut src = independent_alu(n);
        let (cycles, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        let ipc = n as f64 / cycles as f64;
        assert!(ipc <= 2.05, "2 int units cap ALU IPC at 2, got {ipc:.2}");
    }

    #[test]
    fn well_predicted_loop_branches_are_cheap() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        // A loop back-edge always taken: BHT learns it after two updates.
        let n = 2000u64;
        let mut src: VecSource = (0..n)
            .flat_map(|_| {
                vec![
                    Instr::alu(0x100, Reg::int(1), None, None),
                    Instr::alu(0x104, Reg::int(2), None, None),
                    Instr::branch(0x108, Some(Reg::int(1)), true, 0x100),
                ]
            })
            .collect();
        let (_, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        let (branches, mispredicts) = cpu.branch_stats();
        assert_eq!(branches, n);
        assert!(
            (mispredicts as f64) < branches as f64 * 0.05,
            "stable branch should be learned: {mispredicts}/{branches}"
        );
    }

    #[test]
    fn random_branches_mispredict_often() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        // Alternating taken/not-taken defeats a 2-bit counter.
        let n = 1000u64;
        let mut src: VecSource = (0..n)
            .map(|i| Instr::branch(0x100, None, i % 2 == 0, 0x40))
            .collect();
        let (_, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        let (branches, mispredicts) = cpu.branch_stats();
        assert!(
            mispredicts as f64 > branches as f64 * 0.3,
            "alternating branch must mispredict frequently: {mispredicts}/{branches}"
        );
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let run_branchy = |taken_fn: fn(u64) -> bool| {
            let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
            let n = 2000u64;
            let mut src: VecSource = (0..n)
                .flat_map(|i| {
                    vec![
                        Instr::alu(0x100, Reg::int(1), None, None),
                        Instr::branch(0x108, Some(Reg::int(1)), taken_fn(i), 0x100),
                    ]
                })
                .collect();
            let (cycles, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
            cycles
        };
        let stable = run_branchy(|_| true);
        let alternating = run_branchy(|i| i % 2 == 0);
        assert!(
            alternating as f64 > stable as f64 * 1.5,
            "mispredicts must slow execution: {alternating} vs {stable}"
        );
    }

    #[test]
    fn syscall_serializes_and_raises_event() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let call = SyscallKind::Read {
            file: FileRef(1),
            offset: 0,
            bytes: 128,
        };
        let mut src = VecSource::new(vec![
            Instr::alu(0, Reg::int(1), None, None),
            Instr::syscall(4, call),
            Instr::alu(8, Reg::int(2), None, None),
        ]);
        let (_, events) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        assert_eq!(events, vec![CpuEvent::SyscallRetired(call)]);
        assert_eq!(cpu.committed_instructions(), 3);
    }

    #[test]
    fn tlb_miss_raised_from_user_load() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let mut src = VecSource::new(vec![Instr::load(0, Reg::int(1), None, 0x0030_0000)]);
        let (_, events) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        assert!(events.contains(&CpuEvent::TlbMiss { vaddr: 0x0030_0000 }));
    }

    #[test]
    fn loads_overlap_under_the_window() {
        // Independent loads to distinct cold lines: the window lets misses
        // overlap, unlike Mipsy's blocking caches.
        let n = 64u64;
        let make_loads = || -> VecSource {
            (0..n)
                .map(|i| {
                    Instr::load(
                        i * 4,
                        Reg::int((i % 8) as u8 + 1),
                        None,
                        0x8010_0000 + i * 64,
                    )
                })
                .collect()
        };
        let (mut mxs, mut mem1, mut stats1) = rig(MxsConfig::default());
        let mut src1 = make_loads();
        let (mxs_cycles, _) = run(&mut mxs, &mut src1, &mut mem1, &mut stats1);

        let mut mipsy = crate::MipsyCpu::new(crate::MipsyConfig::default());
        let mut mem2 = MemHierarchy::new(MemConfig::default());
        let mut stats2 = StatsCollector::new(Clocking::default(), 1_000_000);
        let mut src2 = make_loads();
        let mut mipsy_cycles = 0u64;
        loop {
            let out = mipsy.cycle(&mut src2, &mut mem2, &mut stats2);
            stats2.tick();
            mipsy_cycles += 1;
            if out.program_exited {
                break;
            }
        }
        assert!(
            mxs_cycles * 2 < mipsy_cycles,
            "OoO window must overlap misses: MXS {mxs_cycles} vs Mipsy {mipsy_cycles}"
        );
    }

    #[test]
    fn window_events_are_recorded() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let n = 100;
        let mut src = independent_alu(n);
        run(&mut cpu, &mut src, &mut mem, &mut stats);
        let t = stats.totals().combined();
        assert_eq!(t.get(UnitEvent::WindowInsert), n);
        assert_eq!(t.get(UnitEvent::WindowIssue), n);
        assert_eq!(t.get(UnitEvent::RenameAccess), n);
        assert_eq!(t.get(UnitEvent::CommitInstr), n);
        assert_eq!(t.get(UnitEvent::WindowWakeup), n, "every ALU op has a dest");
    }

    #[test]
    fn lsq_inserts_match_memory_ops() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let mut src = VecSource::new(vec![
            Instr::load(0, Reg::int(1), None, 0x8000_0000),
            Instr::store(4, Some(Reg::int(1)), None, 0x8000_0040),
            Instr::alu(8, Reg::int(2), None, None),
        ]);
        run(&mut cpu, &mut src, &mut mem, &mut stats);
        let t = stats.totals().combined();
        assert_eq!(t.get(UnitEvent::LsqInsert), 2);
        assert_eq!(t.get(UnitEvent::LsqSearch), 2);
    }

    #[test]
    fn program_exit_drains_pipeline() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let n = 10;
        let mut src = independent_alu(n);
        let (_, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        assert_eq!(
            cpu.committed_instructions(),
            n,
            "all instructions commit before exit"
        );
    }
}
