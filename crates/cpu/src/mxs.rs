//! The MXS model: a MIPS R10000-like out-of-order superscalar.
//!
//! See the crate docs for the fidelity contract. Structure per cycle
//! (oldest work first, matching hardware ordering): commit → complete →
//! issue → dispatch/rename → fetch.
//!
//! Misprediction handling is *oracle-at-fetch*: the fetched instruction
//! carries its actual outcome, so the model knows at fetch time whether the
//! predictor would have gone wrong. Fetch then stalls until the branch
//! resolves plus the front-end refill penalty, and wrong-path energy is
//! charged as [`UnitEvent::WrongPathFetch`] events without simulating bogus
//! instructions (real instructions are never squashed, so synthetic
//! generators never need to replay).

use std::collections::VecDeque;

use softwatt_isa::{CpuEvent, Instr, InstrSource, OpClass, Reg};
use softwatt_mem::MemHierarchy;
use softwatt_stats::{StatsCollector, UnitEvent};

use crate::bpred::{BranchHistoryTable, BranchTargetBuffer, ReturnAddressStack};
use crate::common::{record_execute_events, Cpu, CycleOutcome};
use crate::config::MxsConfig;

#[derive(Debug, Clone, Copy, PartialEq)]
enum SlotState {
    Waiting,
    Issued { complete_at: u64 },
    Done,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    instr: Instr,
    state: SlotState,
    mispredicted: bool,
    in_lsq: bool,
    // In-window producers this instruction still waits on; decremented by
    // the producer's completion wakeup. Ready to issue at zero.
    outstanding: u8,
    // TLB fault detected at fetch; raised as an event at commit.
    fault: Option<u64>,
}

impl Slot {
    /// Placeholder filling unoccupied ring entries.
    fn vacant() -> Slot {
        Slot {
            instr: Instr::nop(0),
            state: SlotState::Done,
            mispredicted: false,
            in_lsq: false,
            outstanding: 0,
            fault: None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    instr: Instr,
    fault: Option<u64>,
}

/// Dispatch-time sentinel for "no producer, or producer already observed
/// satisfied" (dependence satisfaction is monotone, so the observation can
/// be memoized).
const DEP_NONE: u64 = u64::MAX;

/// One issuable instruction in the issue stage's scan list: all register
/// dependences satisfied, held back only by issue bandwidth or a
/// functional-unit hazard. Carries the FU class inline so the structural
/// check never touches the slot ring.
#[derive(Debug, Clone, Copy)]
struct ReadyEntry {
    seq: u64,
    fu: softwatt_isa::FuKind,
}

/// The out-of-order CPU model. See the crate docs for an example.
///
/// # Hot-path data layout
///
/// The instruction window is a flat ring of [`Slot`]s keyed by sequence
/// number: the window is always the contiguous seq range
/// `[front, next_seq)`, and the slot for seq `s` lives at `s & seq_mask`
/// (ring capacity is the window size rounded up to a power of two, so live
/// slots never collide). On top of the ring, two compact index lists keep
/// the per-cycle stage work proportional to the instructions that can
/// actually change state — not to window occupancy:
///
/// * `ready`: seqs of issuable slots in age order (the issue stage's scan
///   and selection priority). Dispatched instructions with outstanding
///   producers are not listed anywhere — each registers in the producer's
///   `consumers` wakeup list and enters `ready` when its outstanding count
///   hits zero (event-driven wakeup, like real tag broadcast),
/// * `inflight`: `(seq, complete_at)` of issued-but-incomplete slots (the
///   complete stage's scan).
///
/// Commit walks `front` forward over `Done` slots. The lists partition the
/// window by state, so no stage rescans slots it cannot act on, and a
/// dependence-stalled window costs nothing per cycle.
#[derive(Debug)]
pub struct MxsCpu {
    config: MxsConfig,
    now: u64,
    bht: BranchHistoryTable,
    btb: BranchTargetBuffer,
    ras: ReturnAddressStack,
    fetch_buffer: VecDeque<Fetched>,
    slots: Box<[Slot]>,
    seq_mask: u64,
    front: u64,
    next_seq: u64,
    ready: Vec<ReadyEntry>,
    inflight: Vec<(u64, u64)>,
    // Completion wakeup lists, indexed like `slots`: consumers[i] holds the
    // seqs of dispatched instructions still waiting on the producer in slot
    // i (a consumer waiting on both operands from one producer appears
    // twice). Drained when the producer is marked `Done`.
    consumers: Box<[Vec<u64>]>,
    // Occupancy counters for the `--profile` harness (plain adds; cheap
    // enough to maintain unconditionally).
    issue_scans: u64,
    issue_scan_entries: u64,
    issue_skips: u64,
    last_writer: [Option<u64>; Reg::COUNT],
    lsq_used: usize,
    fetch_stall_until: u64,
    // Fetch halted until this mispredicted branch (by seq) resolves.
    awaiting_branch: Option<u64>,
    // A serializing instruction is in flight; fetch halted.
    draining: bool,
    source_exhausted: bool,
    committed: u64,
    mispredicts: u64,
    branches: u64,
    // Per-stage wall-clock accumulators (commit, complete, issue,
    // dispatch, fetch), filled only while `softwatt_obs::stage_timing()`
    // is on and flushed by [`Cpu::flush_stage_timing`].
    stage_ns: [u64; STAGE_NAMES.len()],
}

/// Obs counter names for the per-stage accumulators, in pipeline order.
const STAGE_NAMES: [&str; 5] = [
    "mxs.stage.commit_ns",
    "mxs.stage.complete_ns",
    "mxs.stage.issue_ns",
    "mxs.stage.dispatch_ns",
    "mxs.stage.fetch_ns",
];

/// Elapsed nanoseconds since `*t`, resetting `*t` to now.
#[inline]
fn lap(t: &mut std::time::Instant) -> u64 {
    let now = std::time::Instant::now();
    let ns = now.duration_since(*t).as_nanos() as u64;
    *t = now;
    ns
}

impl MxsCpu {
    /// Creates an MXS CPU.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MxsConfig::validate`].
    pub fn new(config: MxsConfig) -> MxsCpu {
        config.validate().expect("invalid MXS configuration");
        let ring = config.window_size.next_power_of_two();
        MxsCpu {
            config,
            now: 0,
            bht: BranchHistoryTable::new(config.bht_entries),
            btb: BranchTargetBuffer::new(config.btb_entries),
            ras: ReturnAddressStack::new(config.ras_entries),
            fetch_buffer: VecDeque::with_capacity(config.fetch_buffer),
            slots: vec![Slot::vacant(); ring].into_boxed_slice(),
            seq_mask: ring as u64 - 1,
            front: 0,
            next_seq: 0,
            ready: Vec::with_capacity(config.window_size),
            inflight: Vec::with_capacity(config.window_size),
            consumers: vec![Vec::new(); ring].into_boxed_slice(),
            issue_scans: 0,
            issue_scan_entries: 0,
            issue_skips: 0,
            last_writer: [None; Reg::COUNT],
            lsq_used: 0,
            fetch_stall_until: 0,
            awaiting_branch: None,
            draining: false,
            source_exhausted: false,
            committed: 0,
            mispredicts: 0,
            branches: 0,
            stage_ns: [0; STAGE_NAMES.len()],
        }
    }

    /// Conditional branches seen and how many mispredicted (for tests and
    /// calibration reports).
    pub fn branch_stats(&self) -> (u64, u64) {
        (self.branches, self.mispredicts)
    }

    #[inline]
    fn slot_index(&self, seq: u64) -> usize {
        (seq & self.seq_mask) as usize
    }

    fn window_len(&self) -> usize {
        (self.next_seq - self.front) as usize
    }

    fn dep_satisfied(&self, dep: u64) -> bool {
        if dep < self.front {
            return true; // producer already committed
        }
        debug_assert!(dep < self.next_seq, "dep points at an undispatched seq");
        match self.slots[self.slot_index(dep)].state {
            SlotState::Done => true,
            SlotState::Issued { complete_at } => complete_at <= self.now,
            SlotState::Waiting => false,
        }
    }

    fn commit_stage(&mut self, stats: &mut StatsCollector) -> (u32, Option<CpuEvent>) {
        let mut committed = 0;
        let mut event = None;
        while committed < self.config.commit_width {
            if self.front == self.next_seq {
                break;
            }
            let idx = self.slot_index(self.front);
            if self.slots[idx].state != SlotState::Done {
                break;
            }
            let slot = self.slots[idx];
            self.front += 1;
            if slot.in_lsq {
                self.lsq_used -= 1;
            }
            let instr = slot.instr;
            if instr.op == OpClass::BranchCond {
                self.bht.update(instr.pc, instr.taken);
                stats.record(UnitEvent::BhtUpdate);
                if instr.taken {
                    self.btb.update(instr.pc, instr.target);
                    stats.record(UnitEvent::BtbUpdate);
                }
            } else if matches!(instr.op, OpClass::Jump | OpClass::Call) {
                self.btb.update(instr.pc, instr.target);
                stats.record(UnitEvent::BtbUpdate);
            }
            committed += 1;
            self.committed += 1;
            if let Some(vaddr) = slot.fault {
                event = Some(CpuEvent::TlbMiss { vaddr });
                self.draining = false;
                break;
            }
            match instr.op {
                OpClass::Syscall => {
                    event = instr.syscall.map(CpuEvent::SyscallRetired);
                    self.draining = false;
                    break;
                }
                OpClass::Eret => {
                    self.draining = false;
                    break;
                }
                _ => {}
            }
        }
        // One batched record per cycle instead of one per instruction;
        // counts land in the same window and mode, so sums are identical.
        stats.record_n(UnitEvent::CommitInstr, u64::from(committed));
        (committed, event)
    }

    fn complete_stage(&mut self, stats: &mut StatsCollector) {
        let now = self.now;
        let mut resolved_awaited = false;
        let awaiting = self.awaiting_branch;
        // Scan only issued-but-incomplete slots; completed entries leave the
        // list. Events recorded here are order-independent within the cycle
        // (windows close only in `tick`), so swap_remove's reordering of the
        // scan is observationally identical to the old full-window walk.
        let mut i = 0;
        while i < self.inflight.len() {
            let (seq, complete_at) = self.inflight[i];
            if complete_at > now {
                i += 1;
                continue;
            }
            self.inflight.swap_remove(i);
            let idx = (seq & self.seq_mask) as usize;
            let slot = &mut self.slots[idx];
            slot.state = SlotState::Done;
            let mispredicted = slot.mispredicted;
            if slot.instr.dest.is_some() {
                // Tag broadcast wakes up window consumers.
                stats.record(UnitEvent::WindowWakeup);
            }
            // Wake registered consumers; those whose last outstanding
            // producer this was become issuable. `ready` is kept sorted by
            // seq so issue priority stays oldest-first.
            if !self.consumers[idx].is_empty() {
                let mut woken = std::mem::take(&mut self.consumers[idx]);
                for &c in &woken {
                    let cslot = &mut self.slots[(c & self.seq_mask) as usize];
                    cslot.outstanding -= 1;
                    if cslot.outstanding == 0 {
                        let entry = ReadyEntry {
                            seq: c,
                            fu: cslot.instr.op.fu(),
                        };
                        let pos = self.ready.partition_point(|e| e.seq < c);
                        self.ready.insert(pos, entry);
                    }
                }
                woken.clear();
                self.consumers[idx] = woken; // keep the allocation
            }
            if mispredicted {
                stats.record(UnitEvent::BranchMispredict);
                stats.record_n(
                    UnitEvent::WrongPathFetch,
                    u64::from(self.config.fetch_width * self.config.mispredict_penalty) / 2,
                );
                self.fetch_stall_until = self
                    .fetch_stall_until
                    .max(now + u64::from(self.config.mispredict_penalty));
                if awaiting == Some(seq) {
                    resolved_awaited = true;
                }
            }
        }
        if resolved_awaited {
            self.awaiting_branch = None;
        }
    }

    fn issue_stage(&mut self, mem: &mut MemHierarchy, stats: &mut StatsCollector) {
        // `ready` holds only issuable entries (dependences satisfied at
        // wakeup time), so an empty list means nothing can issue — the
        // common dependence-stall case costs one branch. Skipped cycles
        // issue nothing and record nothing, exactly like the scan they
        // elide.
        if self.ready.is_empty() {
            self.issue_skips += 1;
            return;
        }
        self.issue_scans += 1;
        self.issue_scan_entries += self.ready.len() as u64;
        let mut issued = 0;
        let mut int_used = 0;
        let mut fp_used = 0;
        let mut mem_used = 0;
        let now = self.now;

        // `ready` is sorted by seq, so scanning it front-to-back reproduces
        // the old oldest-first window walk over the same candidate set:
        // entries the old walk rejected for unsatisfied dependences never
        // touched the bandwidth or functional-unit counters, so dropping
        // them from the scan changes nothing observable. Issued entries are
        // compacted out in place (`kept` is the write cursor).
        let mut kept = 0;
        let ready_len = self.ready.len();
        for scan in 0..ready_len {
            if issued >= self.config.issue_width {
                // Issue bandwidth exhausted: the tail is untouched, shift
                // it down en bloc.
                self.ready.copy_within(scan..ready_len, kept);
                kept += ready_len - scan;
                break;
            }
            let entry = self.ready[scan];
            // Structural hazards are the only remaining blockers.
            let blocked = match entry.fu {
                softwatt_isa::FuKind::Int => int_used >= self.config.int_units,
                softwatt_isa::FuKind::Fp => fp_used >= self.config.fp_units,
                softwatt_isa::FuKind::Mem => mem_used >= self.config.mem_ports,
                softwatt_isa::FuKind::None => false,
            };
            if blocked {
                self.ready[kept] = entry;
                kept += 1;
                continue;
            }

            // Execute.
            let idx = (entry.seq & self.seq_mask) as usize;
            debug_assert_eq!(self.slots[idx].state, SlotState::Waiting);
            let instr = self.slots[idx].instr;
            let mut latency = u64::from(instr.op.latency());
            if let Some(addr) = instr.mem_addr {
                let is_store = instr.op == OpClass::Store;
                let mem_latency = mem.data_access(addr, is_store, stats);
                stats.record(UnitEvent::LsqSearch);
                latency = if is_store {
                    // Stores retire through the write buffer.
                    u64::from(instr.op.latency())
                } else {
                    u64::from(mem_latency)
                };
            }
            record_execute_events(&instr, stats);
            stats.record(UnitEvent::WindowIssue);
            let complete_at = now + latency;
            self.slots[idx].state = SlotState::Issued { complete_at };
            self.inflight.push((entry.seq, complete_at));
            match entry.fu {
                softwatt_isa::FuKind::Int => int_used += 1,
                softwatt_isa::FuKind::Fp => fp_used += 1,
                softwatt_isa::FuKind::Mem => mem_used += 1,
                softwatt_isa::FuKind::None => {}
            }
            issued += 1;
        }
        self.ready.truncate(kept);
    }

    fn dispatch_stage(&mut self, stats: &mut StatsCollector) {
        let mut dispatched = 0;
        while dispatched < self.config.decode_width {
            let Some(fetched) = self.fetch_buffer.front().copied() else {
                break;
            };
            let instr = fetched.instr;
            let serializes = instr.op.is_serializing() || fetched.fault.is_some();
            if self.window_len() >= self.config.window_size {
                break;
            }
            if instr.op.is_mem() && self.lsq_used >= self.config.lsq_size {
                break;
            }
            if serializes && self.front != self.next_seq {
                break; // serializers enter an empty window only
            }
            self.fetch_buffer.pop_front();
            let mut deps = [DEP_NONE, DEP_NONE];
            if let Some(r) = instr.src1 {
                if let Some(w) = self.last_writer[r.index()] {
                    deps[0] = w;
                }
            }
            if let Some(r) = instr.src2 {
                if let Some(w) = self.last_writer[r.index()] {
                    deps[1] = w;
                }
            }
            // Drop deps already satisfied at dispatch (sound to check once:
            // satisfaction is monotone — committed producers stay
            // committed, `Done` slots only recycle after their seq drops
            // below `front`). What remains needs a completion wakeup.
            for d in &mut deps {
                if *d != DEP_NONE && self.dep_satisfied(*d) {
                    *d = DEP_NONE;
                }
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            if let Some(d) = instr.dest {
                self.last_writer[d.index()] = Some(seq);
            }
            let in_lsq = instr.op.is_mem();
            if in_lsq {
                self.lsq_used += 1;
                stats.record(UnitEvent::LsqInsert);
            }
            let mut outstanding = 0u8;
            for d in deps {
                if d != DEP_NONE {
                    outstanding += 1;
                    self.consumers[(d & self.seq_mask) as usize].push(seq);
                }
            }
            self.slots[(seq & self.seq_mask) as usize] = Slot {
                instr,
                state: SlotState::Waiting,
                mispredicted: false,
                in_lsq,
                outstanding,
                fault: fetched.fault,
            };
            if outstanding == 0 {
                // Issuable immediately; newest seq, so a plain push keeps
                // `ready` sorted.
                self.ready.push(ReadyEntry {
                    seq,
                    fu: instr.op.fu(),
                });
            }
            dispatched += 1;
            if serializes {
                break;
            }
        }
        if dispatched > 0 {
            // Batched like commit: one record per event class per cycle.
            stats.record_n(UnitEvent::DecodeOp, u64::from(dispatched));
            stats.record_n(UnitEvent::RenameAccess, u64::from(dispatched));
            stats.record_n(UnitEvent::WindowInsert, u64::from(dispatched));
        }
    }

    fn fetch_stage(
        &mut self,
        frontend: &mut dyn InstrSource,
        mem: &mut MemHierarchy,
        stats: &mut StatsCollector,
    ) {
        if self.source_exhausted
            || self.draining
            || self.awaiting_branch.is_some()
            || self.now < self.fetch_stall_until
        {
            return;
        }
        if self.fetch_buffer.len() >= self.config.fetch_buffer {
            return;
        }
        let mut fetched = 0;
        stats.record(UnitEvent::FetchCycle);
        while fetched < self.config.fetch_width
            && self.fetch_buffer.len() < self.config.fetch_buffer
        {
            let Some(instr) = frontend.next_instr(stats) else {
                // A stalled frontend (process blocked on I/O under analytic
                // idle handling) resumes later; only a true end-of-stream is
                // permanent.
                if !frontend.stalled() {
                    self.source_exhausted = true;
                }
                break;
            };
            debug_assert!(instr.validate().is_ok());
            let miss_latency = mem.fetch(instr.pc, stats);
            // Software-managed TLB: translate at fetch so the fault
            // serializes the pipeline before the handler runs, keeping
            // service attribution frames clean (see module docs).
            let mut fault = None;
            if let Some(addr) = instr.mem_addr {
                if !mem.translate(addr, stats) {
                    fault = Some(addr);
                }
            }
            let mispredicted = self.predict(&instr, stats);
            if mispredicted {
                // Remember which window seq this will get: it is dispatched
                // later, so track by a sentinel updated at dispatch. We can
                // compute it now: sequence numbers are assigned in dispatch
                // order, and the fetch buffer preserves order, so this
                // instruction's seq is next_seq + buffered instructions.
                self.awaiting_branch = Some(self.next_seq + self.fetch_buffer.len() as u64);
            }
            let serializing = instr.op.is_serializing() || fault.is_some();
            self.fetch_buffer.push_back(Fetched { instr, fault });
            fetched += 1;
            if mispredicted {
                // Mark the buffered instruction for mispredict accounting
                // at resolve time (the slot flag is set during dispatch via
                // awaiting_branch matching).
                break;
            }
            if serializing {
                self.draining = true;
                break;
            }
            if miss_latency > 0 {
                self.fetch_stall_until = self.now + u64::from(miss_latency);
                break;
            }
        }
    }

    /// Propagates the awaited-branch flag onto its window slot once the
    /// seq has been dispatched.
    #[inline]
    fn mark_awaited_branch(&mut self) {
        if let Some(seq) = self.awaiting_branch {
            if seq >= self.front && seq < self.next_seq {
                self.slots[(seq & self.seq_mask) as usize].mispredicted = true;
            }
        }
    }

    /// Consults the predictor structures for `instr`; returns whether the
    /// front end would have gone down the wrong path.
    fn predict(&mut self, instr: &Instr, stats: &mut StatsCollector) -> bool {
        match instr.op {
            OpClass::BranchCond => {
                self.branches += 1;
                stats.record(UnitEvent::BhtLookup);
                let predicted_taken = self.bht.predict(instr.pc);
                let mut wrong = predicted_taken != instr.taken;
                if predicted_taken && instr.taken {
                    stats.record(UnitEvent::BtbLookup);
                    if self.btb.lookup(instr.pc) != Some(instr.target) {
                        wrong = true; // direction right, target unknown
                    }
                }
                if wrong {
                    self.mispredicts += 1;
                }
                wrong
            }
            OpClass::Jump => {
                stats.record(UnitEvent::BtbLookup);
                false // direct target computed in decode
            }
            OpClass::Call => {
                stats.record(UnitEvent::BtbLookup);
                stats.record(UnitEvent::RasAccess);
                self.ras.push(instr.pc.wrapping_add(4));
                false
            }
            OpClass::Return => {
                stats.record(UnitEvent::RasAccess);
                let predicted = self.ras.pop();
                let wrong = predicted != Some(instr.target);
                if wrong {
                    self.mispredicts += 1;
                    self.branches += 1;
                }
                wrong
            }
            _ => false,
        }
    }
}

impl Cpu for MxsCpu {
    fn cycle(
        &mut self,
        frontend: &mut dyn InstrSource,
        mem: &mut MemHierarchy,
        stats: &mut StatsCollector,
    ) -> CycleOutcome {
        // On an event cycle the OS has not yet switched streams (it handles
        // the event after this call returns), so fetching would wrongly
        // observe end-of-stream. Real machines pay a trap-redirect bubble
        // here anyway. The awaited-branch flag is propagated onto its slot
        // after dispatch, once the seq exists in the window.
        let (committed, event) = if softwatt_obs::stage_timing() {
            let mut t = std::time::Instant::now();
            let (committed, event) = self.commit_stage(stats);
            self.stage_ns[0] += lap(&mut t);
            self.complete_stage(stats);
            self.stage_ns[1] += lap(&mut t);
            self.issue_stage(mem, stats);
            self.stage_ns[2] += lap(&mut t);
            self.dispatch_stage(stats);
            self.mark_awaited_branch();
            self.stage_ns[3] += lap(&mut t);
            if event.is_none() {
                self.fetch_stage(frontend, mem, stats);
                self.stage_ns[4] += lap(&mut t);
            }
            (committed, event)
        } else {
            let (committed, event) = self.commit_stage(stats);
            self.complete_stage(stats);
            self.issue_stage(mem, stats);
            self.dispatch_stage(stats);
            self.mark_awaited_branch();
            if event.is_none() {
                self.fetch_stage(frontend, mem, stats);
            }
            (committed, event)
        };

        let program_exited =
            self.source_exhausted && self.fetch_buffer.is_empty() && self.front == self.next_seq;
        self.now += 1;
        CycleOutcome {
            committed,
            event,
            program_exited,
        }
    }

    fn committed_instructions(&self) -> u64 {
        self.committed
    }

    fn flush_stage_timing(&self) {
        for (name, &ns) in STAGE_NAMES.iter().zip(self.stage_ns.iter()) {
            if ns > 0 {
                softwatt_obs::count(name, ns);
            }
        }
        softwatt_obs::count("mxs.issue.scans", self.issue_scans);
        softwatt_obs::count("mxs.issue.scan_entries", self.issue_scan_entries);
        softwatt_obs::count("mxs.issue.skipped_cycles", self.issue_skips);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softwatt_isa::{FileRef, SyscallKind, VecSource};
    use softwatt_mem::MemConfig;
    use softwatt_stats::Clocking;

    fn rig(config: MxsConfig) -> (MxsCpu, MemHierarchy, StatsCollector) {
        (
            MxsCpu::new(config),
            MemHierarchy::new(MemConfig::default()),
            StatsCollector::new(Clocking::default(), 1_000_000),
        )
    }

    fn run(
        cpu: &mut MxsCpu,
        src: &mut VecSource,
        mem: &mut MemHierarchy,
        stats: &mut StatsCollector,
    ) -> (u64, Vec<CpuEvent>) {
        let mut cycles = 0u64;
        let mut events = Vec::new();
        loop {
            let out = cpu.cycle(src, mem, stats);
            if let Some(e) = out.event {
                events.push(e);
            }
            stats.tick();
            cycles += 1;
            if out.program_exited {
                break;
            }
            assert!(cycles < 2_000_000, "runaway test");
        }
        (cycles, events)
    }

    /// Independent ALU ops in a tight, cache-resident loop.
    fn independent_alu(n: u64) -> VecSource {
        (0..n)
            .map(|i| Instr::alu((i % 16) * 4, Reg::int((i % 8) as u8 + 1), None, None))
            .collect()
    }

    /// A serial dependence chain: each op reads the previous op's result.
    fn dependent_chain(n: u64) -> VecSource {
        (0..n)
            .map(|i| Instr::alu((i % 16) * 4, Reg::int(1), Some(Reg::int(1)), None))
            .collect()
    }

    #[test]
    fn superscalar_exceeds_ipc_one_on_independent_code() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let n = 4000;
        let mut src = independent_alu(n);
        let (cycles, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        assert_eq!(cpu.committed_instructions(), n);
        let ipc = n as f64 / cycles as f64;
        assert!(
            ipc > 1.5,
            "independent ALU code should exceed IPC 1.5, got {ipc:.2}"
        );
    }

    #[test]
    fn dependence_chain_limits_ipc_to_one() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let n = 4000;
        let mut src = dependent_chain(n);
        let (cycles, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        let ipc = n as f64 / cycles as f64;
        assert!(ipc < 1.1, "serial chain cannot exceed IPC 1, got {ipc:.2}");
        assert!(ipc > 0.8, "chain should still approach IPC 1, got {ipc:.2}");
    }

    #[test]
    fn single_issue_config_caps_ipc_at_one() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::single_issue());
        let n = 4000;
        let mut src = independent_alu(n);
        let (cycles, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        assert!(
            cycles >= n,
            "single-issue cannot beat one instruction per cycle"
        );
    }

    #[test]
    fn int_units_bound_throughput() {
        // 2 INT units => at most 2 ALU ops issued per cycle even at width 4.
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let n = 4000;
        let mut src = independent_alu(n);
        let (cycles, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        let ipc = n as f64 / cycles as f64;
        assert!(ipc <= 2.05, "2 int units cap ALU IPC at 2, got {ipc:.2}");
    }

    #[test]
    fn well_predicted_loop_branches_are_cheap() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        // A loop back-edge always taken: BHT learns it after two updates.
        let n = 2000u64;
        let mut src: VecSource = (0..n)
            .flat_map(|_| {
                vec![
                    Instr::alu(0x100, Reg::int(1), None, None),
                    Instr::alu(0x104, Reg::int(2), None, None),
                    Instr::branch(0x108, Some(Reg::int(1)), true, 0x100),
                ]
            })
            .collect();
        let (_, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        let (branches, mispredicts) = cpu.branch_stats();
        assert_eq!(branches, n);
        assert!(
            (mispredicts as f64) < branches as f64 * 0.05,
            "stable branch should be learned: {mispredicts}/{branches}"
        );
    }

    #[test]
    fn random_branches_mispredict_often() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        // Alternating taken/not-taken defeats a 2-bit counter.
        let n = 1000u64;
        let mut src: VecSource = (0..n)
            .map(|i| Instr::branch(0x100, None, i % 2 == 0, 0x40))
            .collect();
        let (_, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        let (branches, mispredicts) = cpu.branch_stats();
        assert!(
            mispredicts as f64 > branches as f64 * 0.3,
            "alternating branch must mispredict frequently: {mispredicts}/{branches}"
        );
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let run_branchy = |taken_fn: fn(u64) -> bool| {
            let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
            let n = 2000u64;
            let mut src: VecSource = (0..n)
                .flat_map(|i| {
                    vec![
                        Instr::alu(0x100, Reg::int(1), None, None),
                        Instr::branch(0x108, Some(Reg::int(1)), taken_fn(i), 0x100),
                    ]
                })
                .collect();
            let (cycles, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
            cycles
        };
        let stable = run_branchy(|_| true);
        let alternating = run_branchy(|i| i % 2 == 0);
        assert!(
            alternating as f64 > stable as f64 * 1.5,
            "mispredicts must slow execution: {alternating} vs {stable}"
        );
    }

    #[test]
    fn syscall_serializes_and_raises_event() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let call = SyscallKind::Read {
            file: FileRef(1),
            offset: 0,
            bytes: 128,
        };
        let mut src = VecSource::new(vec![
            Instr::alu(0, Reg::int(1), None, None),
            Instr::syscall(4, call),
            Instr::alu(8, Reg::int(2), None, None),
        ]);
        let (_, events) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        assert_eq!(events, vec![CpuEvent::SyscallRetired(call)]);
        assert_eq!(cpu.committed_instructions(), 3);
    }

    #[test]
    fn tlb_miss_raised_from_user_load() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let mut src = VecSource::new(vec![Instr::load(0, Reg::int(1), None, 0x0030_0000)]);
        let (_, events) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        assert!(events.contains(&CpuEvent::TlbMiss { vaddr: 0x0030_0000 }));
    }

    #[test]
    fn loads_overlap_under_the_window() {
        // Independent loads to distinct cold lines: the window lets misses
        // overlap, unlike Mipsy's blocking caches.
        let n = 64u64;
        let make_loads = || -> VecSource {
            (0..n)
                .map(|i| {
                    Instr::load(
                        i * 4,
                        Reg::int((i % 8) as u8 + 1),
                        None,
                        0x8010_0000 + i * 64,
                    )
                })
                .collect()
        };
        let (mut mxs, mut mem1, mut stats1) = rig(MxsConfig::default());
        let mut src1 = make_loads();
        let (mxs_cycles, _) = run(&mut mxs, &mut src1, &mut mem1, &mut stats1);

        let mut mipsy = crate::MipsyCpu::new(crate::MipsyConfig::default());
        let mut mem2 = MemHierarchy::new(MemConfig::default());
        let mut stats2 = StatsCollector::new(Clocking::default(), 1_000_000);
        let mut src2 = make_loads();
        let mut mipsy_cycles = 0u64;
        loop {
            let out = mipsy.cycle(&mut src2, &mut mem2, &mut stats2);
            stats2.tick();
            mipsy_cycles += 1;
            if out.program_exited {
                break;
            }
        }
        assert!(
            mxs_cycles * 2 < mipsy_cycles,
            "OoO window must overlap misses: MXS {mxs_cycles} vs Mipsy {mipsy_cycles}"
        );
    }

    #[test]
    fn window_events_are_recorded() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let n = 100;
        let mut src = independent_alu(n);
        run(&mut cpu, &mut src, &mut mem, &mut stats);
        let t = stats.totals().combined();
        assert_eq!(t.get(UnitEvent::WindowInsert), n);
        assert_eq!(t.get(UnitEvent::WindowIssue), n);
        assert_eq!(t.get(UnitEvent::RenameAccess), n);
        assert_eq!(t.get(UnitEvent::CommitInstr), n);
        assert_eq!(t.get(UnitEvent::WindowWakeup), n, "every ALU op has a dest");
    }

    #[test]
    fn lsq_inserts_match_memory_ops() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let mut src = VecSource::new(vec![
            Instr::load(0, Reg::int(1), None, 0x8000_0000),
            Instr::store(4, Some(Reg::int(1)), None, 0x8000_0040),
            Instr::alu(8, Reg::int(2), None, None),
        ]);
        run(&mut cpu, &mut src, &mut mem, &mut stats);
        let t = stats.totals().combined();
        assert_eq!(t.get(UnitEvent::LsqInsert), 2);
        assert_eq!(t.get(UnitEvent::LsqSearch), 2);
    }

    #[test]
    fn program_exit_drains_pipeline() {
        let (mut cpu, mut mem, mut stats) = rig(MxsConfig::default());
        let n = 10;
        let mut src = independent_alu(n);
        let (_, _) = run(&mut cpu, &mut src, &mut mem, &mut stats);
        assert_eq!(
            cpu.committed_instructions(),
            n,
            "all instructions commit before exit"
        );
    }
}
