//! Branch prediction structures: BHT (2-bit counters), BTB, and RAS.

/// A table of 2-bit saturating counters indexed by PC (the paper's
/// 1024-entry branch history table).
///
/// # Examples
///
/// ```
/// use softwatt_cpu::bpred::BranchHistoryTable;
///
/// let mut bht = BranchHistoryTable::new(16);
/// // Counters start weakly-not-taken; training flips the prediction.
/// assert!(!bht.predict(0x40));
/// bht.update(0x40, true);
/// bht.update(0x40, true);
/// assert!(bht.predict(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct BranchHistoryTable {
    counters: Vec<u8>,
}

impl BranchHistoryTable {
    /// Creates a table of `entries` counters initialized weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive power of two.
    pub fn new(entries: usize) -> BranchHistoryTable {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "BHT entries must be a positive power of two"
        );
        BranchHistoryTable {
            counters: vec![1; entries],
        }
    }

    #[inline]
    fn slot(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicted direction for the branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.slot(pc)] >= 2
    }

    /// Trains the counter with the actual outcome.
    #[inline]
    pub fn update(&mut self, pc: u64, taken: bool) {
        let slot = self.slot(pc);
        let c = &mut self.counters[slot];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// A direct-mapped branch target buffer.
#[derive(Debug, Clone)]
pub struct BranchTargetBuffer {
    entries: Vec<Option<(u64, u64)>>, // (pc, target)
}

impl BranchTargetBuffer {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive power of two.
    pub fn new(entries: usize) -> BranchTargetBuffer {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "BTB entries must be a positive power of two"
        );
        BranchTargetBuffer {
            entries: vec![None; entries],
        }
    }

    #[inline]
    fn slot(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Predicted target for the branch at `pc`, if cached.
    #[inline]
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[self.slot(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Records the actual target for `pc`.
    #[inline]
    pub fn update(&mut self, pc: u64, target: u64) {
        let slot = self.slot(pc);
        self.entries[slot] = Some((pc, target));
    }
}

/// A return-address stack (circular, overwrite-on-overflow, as in real
/// hardware).
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> ReturnAddressStack {
        assert!(entries > 0, "RAS must have at least one entry");
        ReturnAddressStack {
            entries: vec![0; entries],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address (a call retired).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = addr;
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return address, or `None` if empty/overflowed
    /// away.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bht_learns_biased_branch() {
        let mut bht = BranchHistoryTable::new(64);
        for _ in 0..4 {
            bht.update(0x100, true);
        }
        assert!(bht.predict(0x100));
        // One not-taken does not flip a saturated counter.
        bht.update(0x100, false);
        assert!(bht.predict(0x100));
        bht.update(0x100, false);
        bht.update(0x100, false);
        assert!(!bht.predict(0x100));
    }

    #[test]
    fn bht_aliasing_maps_to_same_slot() {
        let mut bht = BranchHistoryTable::new(4);
        // pcs 0x0 and 0x40 alias in a 4-entry table ((pc>>2) & 3).
        for _ in 0..3 {
            bht.update(0x0, true);
        }
        assert!(bht.predict(0x40));
    }

    #[test]
    fn btb_hit_requires_exact_pc() {
        let mut btb = BranchTargetBuffer::new(16);
        btb.update(0x80, 0x2000);
        assert_eq!(btb.lookup(0x80), Some(0x2000));
        // Aliasing pc misses on the tag.
        assert_eq!(btb.lookup(0x80 + 16 * 4), None);
    }

    #[test]
    fn btb_replacement_overwrites() {
        let mut btb = BranchTargetBuffer::new(4);
        btb.update(0x10, 0x100);
        btb.update(0x10 + 16, 0x200); // same slot
        assert_eq!(btb.lookup(0x10), None);
        assert_eq!(btb.lookup(0x10 + 16), Some(0x200));
    }

    #[test]
    fn ras_is_lifo() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bht_rejects_non_power_of_two() {
        let _ = BranchHistoryTable::new(3);
    }
}
