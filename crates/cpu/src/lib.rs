//! CPU timing models for the SoftWatt full-system simulator.
//!
//! SimOS offered three CPU models; the paper used two of them and so do we:
//!
//! - [`MipsyCpu`]: a MIPS R4000-like single-issue in-order pipeline with
//!   blocking caches. The paper uses Mipsy for memory-system profiles
//!   (Figure 3) because MXS does not report detailed memory statistics.
//! - [`MxsCpu`]: a MIPS R10000-like out-of-order superscalar with the
//!   paper's Table 1 resources — 4-wide fetch/decode/issue/commit, a
//!   64-entry instruction window, a 32-entry load/store queue, a 1024-entry
//!   branch history table, a 1024-entry BTB, a 32-entry return-address
//!   stack, and 2 integer + 2 floating-point units. A single-issue
//!   configuration ([`MxsConfig::single_issue`]) reproduces the paper's
//!   third Figure 3 panel.
//!
//! Both models pull instructions from an [`softwatt_isa::InstrSource`]
//! (implemented by the OS model), drive the [`softwatt_mem::MemHierarchy`],
//! record [`softwatt_stats::UnitEvent`]s for the power post-processor, and
//! raise [`softwatt_isa::CpuEvent`]s (system calls, TLB misses) that the OS
//! handles by switching instruction streams.
//!
//! # Timing-model fidelity
//!
//! The MXS model is a *window-based* out-of-order approximation: it tracks
//! true data dependences through architectural registers (renaming is
//! modeled for energy, not for timing — there are no false-dependence
//! stalls, as in an ideally-renamed machine), true structural hazards
//! (window/LSQ/FU/port occupancy), branch misprediction bubbles with
//! predictor state machines, and non-blocking cache misses that overlap
//! under the window. Wrong-path work is charged as energy
//! ([`softwatt_stats::UnitEvent::WrongPathFetch`]) without simulating bogus
//! instructions. This reproduces the IPC/power *differences* between user,
//! kernel, sync and idle code that the paper's analyses rest on.
//!
//! # Examples
//!
//! ```
//! use softwatt_cpu::{Cpu, MxsConfig, MxsCpu};
//! use softwatt_isa::{Instr, Reg, VecSource};
//! use softwatt_mem::{MemConfig, MemHierarchy};
//! use softwatt_stats::{Clocking, StatsCollector};
//!
//! let mut cpu = MxsCpu::new(MxsConfig::default());
//! let mut mem = MemHierarchy::new(MemConfig::default());
//! let mut stats = StatsCollector::new(Clocking::default(), 10_000);
//! let mut src = VecSource::new(vec![Instr::alu(0, Reg::int(1), None, None); 8]);
//!
//! let mut committed = 0;
//! while committed < 8 {
//!     let out = cpu.cycle(&mut src, &mut mem, &mut stats);
//!     committed += out.committed as u64;
//!     stats.tick();
//! }
//! ```

pub mod bpred;
pub mod config;
pub mod mipsy;
pub mod mxs;

mod common;

pub use common::{Cpu, CycleOutcome};
pub use config::{MipsyConfig, MxsConfig};
pub use mipsy::MipsyCpu;
pub use mxs::MxsCpu;

// Re-exported for doc examples and downstream convenience.
pub use softwatt_isa::stream::VecSource;
