//! Microarchitectural behavior tests for the MXS model: structural
//! resources must bind exactly where the R10000-style design says they do.

use softwatt_cpu::{Cpu, MipsyConfig, MipsyCpu, MxsConfig, MxsCpu};
use softwatt_isa::{Instr, OpClass, Reg, VecSource};
use softwatt_mem::{MemConfig, MemHierarchy};
use softwatt_stats::{Clocking, StatsCollector, UnitEvent};

fn run_mxs(config: MxsConfig, instrs: Vec<Instr>) -> (u64, StatsCollector) {
    let mut cpu = MxsCpu::new(config);
    let mut mem = MemHierarchy::new(MemConfig::default());
    let mut stats = StatsCollector::new(Clocking::default(), 10_000_000);
    let mut src = VecSource::new(instrs);
    let mut cycles = 0u64;
    loop {
        let out = cpu.cycle(&mut src, &mut mem, &mut stats);
        stats.tick();
        cycles += 1;
        if out.program_exited {
            break;
        }
        assert!(cycles < 5_000_000, "runaway");
    }
    (cycles, stats)
}

/// Independent loads to distinct cold lines in kernel space (no TLB).
fn cold_loads(n: u64) -> Vec<Instr> {
    (0..n)
        .map(|i| {
            Instr::load(
                (i % 16) * 4,
                Reg::int((i % 8) as u8 + 1),
                None,
                0x9f00_0000 + i * 256,
            )
        })
        .collect()
}

fn independent_alu(n: u64) -> Vec<Instr> {
    (0..n)
        .map(|i| Instr::alu((i % 16) * 4, Reg::int((i % 8) as u8 + 1), None, None))
        .collect()
}

#[test]
fn larger_window_overlaps_more_misses() {
    let narrow = MxsConfig {
        window_size: 4,
        lsq_size: 4,
        fetch_buffer: 4,
        ..MxsConfig::default()
    };
    let (cycles_narrow, _) = run_mxs(narrow, cold_loads(256));
    let (cycles_wide, _) = run_mxs(MxsConfig::default(), cold_loads(256));
    assert!(
        cycles_wide * 2 < cycles_narrow,
        "64-entry window must overlap DRAM misses far better: {cycles_wide} vs {cycles_narrow}"
    );
}

#[test]
fn commit_width_bounds_ipc() {
    let two_wide_commit = MxsConfig {
        commit_width: 2,
        int_units: 4,
        issue_width: 4,
        ..MxsConfig::default()
    };
    let n = 4000;
    let (cycles, _) = run_mxs(two_wide_commit, independent_alu(n));
    let ipc = n as f64 / cycles as f64;
    assert!(ipc <= 2.02, "commit width 2 caps IPC at 2, got {ipc:.2}");
}

#[test]
fn int_units_bound_alu_throughput() {
    let one_alu = MxsConfig {
        int_units: 1,
        ..MxsConfig::default()
    };
    let n = 4000;
    let (cycles, _) = run_mxs(one_alu, independent_alu(n));
    let ipc = n as f64 / cycles as f64;
    assert!(ipc <= 1.02, "1 int unit caps ALU IPC at 1, got {ipc:.2}");
}

#[test]
fn mem_ports_bound_load_throughput() {
    // Warm, independent loads: with 1 port, IPC of a pure load stream <= 1.
    let warm_loads: Vec<Instr> = (0..2000u64)
        .map(|i| {
            Instr::load(
                (i % 16) * 4,
                Reg::int((i % 8) as u8 + 1),
                None,
                0x9f00_0000 + (i % 64) * 8,
            )
        })
        .collect();
    let (cycles, _) = run_mxs(MxsConfig::default(), warm_loads);
    assert!(
        cycles >= 2000,
        "1 memory port serializes a pure load stream"
    );
}

#[test]
fn return_address_stack_predicts_matched_pairs() {
    // call/return pairs with matched targets: the RAS should predict every
    // return, so the run is only marginally slower than straight ALU code.
    let mut instrs = Vec::new();
    for i in 0..1000u64 {
        let ret_addr = 0x100 + i % 32 * 16 + 4;
        instrs.push(Instr::call(0x100 + (i % 32) * 16, 0x8000));
        instrs.push(Instr::alu(0x8000, Reg::int(1), None, None));
        instrs.push(Instr::ret(0x8004, ret_addr));
        instrs.push(Instr::alu(ret_addr, Reg::int(2), None, None));
    }
    let mut cpu = MxsCpu::new(MxsConfig::default());
    let mut mem = MemHierarchy::new(MemConfig::default());
    let mut stats = StatsCollector::new(Clocking::default(), 10_000_000);
    let mut src = VecSource::new(instrs);
    loop {
        let out = cpu.cycle(&mut src, &mut mem, &mut stats);
        stats.tick();
        if out.program_exited {
            break;
        }
    }
    // Predicted returns are invisible to branch_stats (only mispredicted
    // returns count); zero mispredicts plus the expected RAS traffic means
    // every return was RAS-predicted.
    let (_, mispredicts) = cpu.branch_stats();
    assert_eq!(
        mispredicts, 0,
        "matched call/return pairs must be RAS-predicted"
    );
    let ras = stats.totals().combined().get(UnitEvent::RasAccess);
    assert_eq!(ras, 2000, "one push per call plus one pop per return");
}

#[test]
fn mismatched_returns_mispredict() {
    // Returns to targets that never match the RAS (no calls at all).
    let instrs: Vec<Instr> = (0..500u64)
        .map(|i| Instr::ret((i % 8) * 4, 0xdead_0000 + i * 4))
        .collect();
    let mut cpu = MxsCpu::new(MxsConfig::default());
    let mut mem = MemHierarchy::new(MemConfig::default());
    let mut stats = StatsCollector::new(Clocking::default(), 10_000_000);
    let mut src = VecSource::new(instrs);
    loop {
        let out = cpu.cycle(&mut src, &mut mem, &mut stats);
        stats.tick();
        if out.program_exited {
            break;
        }
    }
    let (branches, mispredicts) = cpu.branch_stats();
    assert_eq!(
        mispredicts, branches,
        "returns without calls cannot be predicted"
    );
}

#[test]
fn serializing_instructions_drain_the_pipeline() {
    // N erets interleaved with ALU work: each eret costs a full drain, so
    // the run is much slower than the same instruction count of plain ALU.
    let mut with_erets = Vec::new();
    for i in 0..200u64 {
        with_erets.extend(independent_alu(8).into_iter().map(|mut x| {
            x.pc += i * 64;
            x
        }));
        with_erets.push(Instr::eret(0x9000 + i * 4));
    }
    let plain = independent_alu(200 * 9);
    let (cycles_eret, _) = run_mxs(MxsConfig::default(), with_erets);
    let (cycles_plain, _) = run_mxs(MxsConfig::default(), plain);
    assert!(
        cycles_eret as f64 > 1.5 * cycles_plain as f64,
        "erets must serialize: {cycles_eret} vs {cycles_plain}"
    );
}

#[test]
fn wrong_path_energy_charged_on_mispredicts() {
    // Alternating branch defeats the BHT; wrong-path fetch events follow.
    let instrs: Vec<Instr> = (0..400u64)
        .map(|i| Instr::branch(0x100, None, i % 2 == 0, 0x40))
        .collect();
    let (_, stats) = run_mxs(MxsConfig::default(), instrs);
    let t = stats.totals().combined();
    assert!(t.get(UnitEvent::BranchMispredict) > 50);
    assert!(
        t.get(UnitEvent::WrongPathFetch) >= t.get(UnitEvent::BranchMispredict),
        "each mispredict charges wrong-path fetch energy"
    );
}

#[test]
fn predictor_events_track_branch_mix() {
    let n = 1000u64;
    let mut instrs = Vec::new();
    for i in 0..n {
        instrs.push(Instr::branch(0x100 + (i % 4) * 4, None, true, 0x100));
        instrs.push(Instr::alu(0x200, Reg::int(1), None, None));
    }
    let (_, stats) = run_mxs(MxsConfig::default(), instrs);
    let t = stats.totals().combined();
    assert_eq!(t.get(UnitEvent::BhtLookup), n);
    assert_eq!(t.get(UnitEvent::BhtUpdate), n);
    assert!(
        t.get(UnitEvent::BtbUpdate) >= n,
        "taken branches update the BTB"
    );
}

#[test]
fn mipsy_total_latency_is_sum_of_parts() {
    // One cold load: Mipsy pays fetch miss + L2 + DRAM in sequence.
    let cfg = MemConfig::default();
    let mut cpu = MipsyCpu::new(MipsyConfig::default());
    let mut mem = MemHierarchy::new(cfg);
    let mut stats = StatsCollector::new(Clocking::default(), 1_000_000);
    let mut src = VecSource::new(vec![Instr::load(0x100, Reg::int(1), None, 0x9e00_0000)]);
    let mut cycles = 0u64;
    loop {
        let out = cpu.cycle(&mut src, &mut mem, &mut stats);
        stats.tick();
        cycles += 1;
        if out.program_exited {
            break;
        }
    }
    let ifetch_miss = cfg.l2_hit_cycles + cfg.dram_cycles;
    let data_miss = cfg.l2_hit_cycles + cfg.dram_cycles + cfg.l1_hit_cycles;
    assert!(
        cycles as u32 >= ifetch_miss + data_miss,
        "blocking pipeline pays both misses in sequence: {cycles}"
    );
}

#[test]
fn fp_code_exercises_fp_units_only() {
    let instrs: Vec<Instr> = (0..500u64)
        .map(|i| {
            Instr::arith(
                if i % 2 == 0 {
                    OpClass::FpAdd
                } else {
                    OpClass::FpMul
                },
                (i % 16) * 4,
                Reg::fp((i % 8) as u8),
                Some(Reg::fp(((i + 1) % 8) as u8)),
                None,
            )
        })
        .collect();
    let (_, stats) = run_mxs(MxsConfig::default(), instrs);
    let t = stats.totals().combined();
    assert_eq!(t.get(UnitEvent::FpAluOp) + t.get(UnitEvent::FpMulOp), 500);
    assert_eq!(t.get(UnitEvent::AluOp), 0);
}
